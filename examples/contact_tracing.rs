//! Societal contact tracing (§3 "Applications"): identify *superspreading*
//! places and times from privately shared trajectories.
//!
//! The health agency never sees real trajectories — each "resident"
//! perturbs their own day locally under ε-LDP — yet hour-level hotspots
//! (where crowds gathered) survive aggregation, so the agency can issue
//! location-specific advisories.
//!
//! Run with: `cargo run --release -p trajshare-bench --example contact_tracing`

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_bench::runner::run_method;
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::{MechanismConfig, NGramMechanism};
use trajshare_model::TrajectorySet;
use trajshare_query::{ahd, extract_hotspots, HotspotScope};

fn main() {
    let _rng = StdRng::seed_from_u64(1);
    // A campus population with three big gatherings baked in (§6.1.3).
    let cfg = ScenarioConfig {
        num_pois: 262,
        num_trajectories: 400,
        speed_kmh: None,
        traj_len: None,
        seed: 13,
    };
    let (dataset, real) = build_scenario(Scenario::Campus, &cfg);
    println!("{} residents shared their day", real.len());

    // Each resident runs the mechanism locally; the agency collects only
    // perturbed trajectories.
    let mech = NGramMechanism::build(&dataset, &MechanismConfig::default());
    let run = run_method(&mech, &real, 13, 8);
    let shared = TrajectorySet::new(run.perturbed);

    // Agency-side analytics: where and when did crowds form?
    let eta = 12; // alert threshold: unique visitors per venue-hour
    let real_hotspots = extract_hotspots(&dataset, &real, HotspotScope::Poi, eta);
    let shared_hotspots = extract_hotspots(&dataset, &shared, HotspotScope::Poi, eta);

    println!("\nsuperspreading candidates in the REAL data (ground truth):");
    for h in &real_hotspots {
        let poi = dataset.pois.get(trajshare_model::PoiId(h.key));
        println!(
            "  {}  {:02}:00-{:02}:00  peak {} visitors",
            poi.name, h.start_hour, h.end_hour, h.peak
        );
    }
    println!("\nsuperspreading candidates in the SHARED (ε-LDP) data:");
    for h in &shared_hotspots {
        let poi = dataset.pois.get(trajshare_model::PoiId(h.key));
        println!(
            "  {}  {:02}:00-{:02}:00  peak {} visitors",
            poi.name, h.start_hour, h.end_hour, h.peak
        );
    }
    match ahd(&real_hotspots, &shared_hotspots) {
        Some(a) => println!("\naverage hotspot distance (AHD): {a:.2} hours"),
        None => println!("\nno comparable hotspots (try more residents or lower η)"),
    }

    // Category-level advisory, robust even when POI-level signal is noisy
    // (§7.3: "advise people who have recently visited sports stadia").
    let cat_real = extract_hotspots(&dataset, &real, HotspotScope::Category(3), eta);
    let cat_shared = extract_hotspots(&dataset, &shared, HotspotScope::Category(3), eta);
    println!("\ncategory-level crowding (shared data):");
    for h in &cat_shared {
        println!(
            "  {}  {:02}:00-{:02}:00  peak {}",
            dataset
                .hierarchy
                .node(trajshare_hierarchy::CategoryId(h.key))
                .name,
            h.start_hour,
            h.end_hour,
            h.peak
        );
    }
    if let Some(a) = ahd(&cat_real, &cat_shared) {
        println!("category-level AHD: {a:.2} hours");
    }
}

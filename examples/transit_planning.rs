//! Public-transport planning (§3: "if a city council can identify popular
//! trip chains among residents, they can improve the public transport
//! infrastructure that links these popular places").
//!
//! We mine the most frequent origin→destination *cell* pairs (trip chains
//! at the 4×4-grid level) from the real data and from the privately shared
//! data, and report how much of the council's top-k ranking survives.
//!
//! Run with: `cargo run --release -p trajshare-bench --example transit_planning`

use std::collections::HashMap;
use trajshare_bench::runner::run_method;
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::{MechanismConfig, NGramMechanism};
use trajshare_geo::UniformGrid;
use trajshare_model::{Dataset, Trajectory};

/// Counts origin→destination cell transitions across a trajectory set.
fn trip_chains(
    dataset: &Dataset,
    grid: &UniformGrid,
    set: &[Trajectory],
) -> HashMap<(u32, u32), usize> {
    let mut counts = HashMap::new();
    for t in set {
        for w in t.points().windows(2) {
            let a = grid.cell_of(dataset.pois.get(w[0].poi).location).0;
            let b = grid.cell_of(dataset.pois.get(w[1].poi).location).0;
            if a != b {
                *counts.entry((a, b)).or_insert(0) += 1;
            }
        }
    }
    counts
}

fn top_k(counts: &HashMap<(u32, u32), usize>, k: usize) -> Vec<(u32, u32)> {
    let mut v: Vec<_> = counts.iter().collect();
    v.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    v.into_iter().take(k).map(|(&pair, _)| pair).collect()
}

fn main() {
    let cfg = ScenarioConfig {
        num_pois: 400,
        num_trajectories: 250,
        speed_kmh: None,
        traj_len: None,
        seed: 31,
    };
    let (dataset, real) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    println!("{} residents, {} POIs", real.len(), dataset.pois.len());

    let mech = NGramMechanism::build(&dataset, &MechanismConfig::default());
    let run = run_method(&mech, &real, 31, 8);

    let grid = UniformGrid::new(*dataset.pois.bbox(), 4);
    let real_chains = trip_chains(&dataset, &grid, real.all());
    let shared_chains = trip_chains(&dataset, &grid, &run.perturbed);

    let k = 8;
    let top_real = top_k(&real_chains, k);
    let top_shared = top_k(&shared_chains, k);

    println!("\ntop {k} trip chains (cell→cell) in the REAL data:");
    for &(a, b) in &top_real {
        println!("  cell {a:2} → cell {b:2}   {} trips", real_chains[&(a, b)]);
    }
    println!("\ntop {k} trip chains in the SHARED (ε-LDP) data:");
    for &(a, b) in &top_shared {
        println!(
            "  cell {a:2} → cell {b:2}   {} trips",
            shared_chains[&(a, b)]
        );
    }

    let overlap = top_real.iter().filter(|p| top_shared.contains(p)).count();
    println!(
        "\ntop-{k} overlap: {overlap}/{k} — the council would route {overlap} of its {k} \
         bus corridors identically from private data"
    );
}

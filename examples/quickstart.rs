//! Quickstart: build a small city, perturb one user's trajectory under
//! ε-LDP, and inspect the result.
//!
//! Run with: `cargo run --release -p trajshare-bench --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_core::{Mechanism, MechanismConfig, NGramMechanism};
use trajshare_datagen::{CityConfig, SyntheticCity};
use trajshare_hierarchy::builders::foursquare;
use trajshare_model::Trajectory;

fn main() {
    // 1. Public knowledge: a city of 300 POIs with categories, opening
    //    hours and popularity (in production this comes from map data).
    let mut rng = StdRng::seed_from_u64(42);
    let city = SyntheticCity::generate(
        &CityConfig {
            num_pois: 300,
            ..Default::default()
        },
        foursquare(),
        &mut rng,
    );
    let dataset = &city.dataset;
    println!(
        "city: {} POIs, {} categories",
        dataset.pois.len(),
        dataset.hierarchy.len()
    );

    // 2. One-time public pre-processing: STC decomposition + W₂ formation.
    let config = MechanismConfig::default(); // ε = 5, n = 2, paper defaults
    let mech = NGramMechanism::build(dataset, &config);
    println!(
        "decomposition: {} STC regions, {} feasible bigrams",
        mech.regions().len(),
        mech.graph().num_bigrams()
    );

    // 3. A user's real day: café → office → restaurant → park.
    let real = Trajectory::from_pairs(&[(12, 50), (47, 55), (103, 74), (200, 80)]);
    println!("\nreal trajectory:");
    print_trajectory(dataset, &real);

    // 4. Perturb under ε-LDP. All randomness is caller-controlled.
    let out = mech.perturb(&real, &mut rng);
    println!("\nperturbed trajectory (ε = {}):", config.epsilon);
    print_trajectory(dataset, &out.trajectory);

    println!(
        "\nstage timings: perturb {:?}, reconstruction {:?} (+{:?} prep), poi-level {:?}",
        out.timings.perturb,
        out.timings.optimal_reconstruct,
        out.timings.reconstruct_prep,
        out.timings.other
    );
}

fn print_trajectory(dataset: &trajshare_model::Dataset, t: &Trajectory) {
    for pt in t.points() {
        let poi = dataset.pois.get(pt.poi);
        println!(
            "  {} @ {}  [{}]",
            poi.name,
            dataset.time.format(pt.t),
            dataset.hierarchy.path_name(poi.category)
        );
    }
}

//! Event detection on campus data with a method comparison — a miniature
//! Table 4: do the three induced events (§6.1.3) survive each perturbation
//! method?
//!
//! Run with: `cargo run --release -p trajshare-bench --example campus_events`

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_bench::runner::{build_methods, run_method};
use trajshare_core::MechanismConfig;
use trajshare_datagen::{generate_campus, CampusConfig};
use trajshare_model::TrajectorySet;
use trajshare_query::{ahd, extract_hotspots, HotspotScope};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let data = generate_campus(
        &CampusConfig {
            num_trajectories: 500,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "campus: {} buildings, {} trajectories (events: residence 8-10pm, \
         stadium 2-4pm, academic 9-11am)",
        data.dataset.pois.len(),
        data.trajectories.len()
    );

    let eta = 12;
    let real_hotspots = extract_hotspots(&data.dataset, &data.trajectories, HotspotScope::Poi, eta);
    println!("\nground-truth hotspots:");
    for h in &real_hotspots {
        let poi = data.dataset.pois.get(trajshare_model::PoiId(h.key));
        println!(
            "  {:28} {:02}:00-{:02}:00 peak {}",
            poi.name, h.start_hour, h.end_hour, h.peak
        );
    }

    println!("\nmethod comparison (AHD in hours; lower = events better preserved):");
    let methods = build_methods(&data.dataset, &MechanismConfig::default());
    for mech in &methods {
        let run = run_method(mech.as_ref(), &data.trajectories, 99, 8);
        let shared = TrajectorySet::new(run.perturbed);
        let shared_hotspots = extract_hotspots(&data.dataset, &shared, HotspotScope::Poi, eta);
        let score = ahd(&real_hotspots, &shared_hotspots);
        let stadium_found = shared_hotspots
            .iter()
            .any(|h| h.key == data.stadium_a.0 && h.start_hour >= 12 && h.end_hour <= 18);
        println!(
            "  {:12} AHD = {:8}   stadium event recovered: {}   ({} hotspots)",
            mech.name(),
            score.map_or("—".into(), |a| format!("{a:.2}")),
            if stadium_found { "yes" } else { "no " },
            shared_hotspots.len()
        );
    }
}

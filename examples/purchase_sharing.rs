//! The §8 generalization: "consider sharing shopping habits (e.g., credit
//! card transactions). Here, P represents the set of purchasable products
//! ... The reachability constraint remains to ensure that adjacent stores
//! in τ are reachable in the real world ... Online stores would always be
//! 'reachable' given their non-physical presence."
//!
//! The framework carries over unchanged: "POIs" become store+product
//! combinations, the category hierarchy becomes a product taxonomy, and
//! opening hours become store trading hours. We model online stores by
//! co-locating them at the city center and giving them 24/7 hours (with the
//! walking-speed reachability they are effectively always reachable from
//! anywhere within a typical inter-purchase gap).
//!
//! Run with: `cargo run --release -p trajshare-bench --example purchase_sharing`

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_core::{Mechanism, MechanismConfig, NGramMechanism};
use trajshare_geo::GeoPoint;
use trajshare_hierarchy::CategoryHierarchy;
use trajshare_model::{Dataset, OpeningHours, Poi, PoiId, TimeDomain, Trajectory};

/// Builds a product taxonomy (the "category hierarchy" of the purchase
/// domain).
fn product_taxonomy() -> CategoryHierarchy {
    let mut h = CategoryHierarchy::new();
    let spec: &[(&str, &[(&str, &[&str])])] = &[
        (
            "Groceries",
            &[
                ("Fresh", &["Produce", "Bakery", "Dairy"]),
                ("Pantry", &["Canned Goods", "Snacks"]),
            ],
        ),
        (
            "Electronics",
            &[
                ("Computing", &["Laptop", "Phone", "Accessories"]),
                ("Home", &["TV", "Audio"]),
            ],
        ),
        (
            "Clothing",
            &[
                ("Footwear", &["Sneakers", "Boots"]),
                ("Apparel", &["Shirts", "Jackets"]),
            ],
        ),
        ("Vehicles", &[("Cars", &["New Car", "Used Car"])]),
    ];
    for (root, mids) in spec {
        let r = h.add_root(*root);
        for (mid, leaves) in *mids {
            let m = h.add_child(r, *mid);
            for leaf in *leaves {
                h.add_child(m, *leaf);
            }
        }
    }
    h
}

fn main() {
    let taxonomy = product_taxonomy();
    let leaves = taxonomy.leaves();
    let center = GeoPoint::new(40.73, -73.99);
    let mut rng = StdRng::seed_from_u64(5);

    // "Stores": physical stores scattered across town, online stores at the
    // center with 24/7 availability. Each (store, product-category) pair is
    // one purchasable item — a "POI" of the purchase domain.
    let mut pois = Vec::new();
    let mut id = 0u32;
    use rand::Rng;
    for store in 0..30 {
        let online = store < 6;
        let loc = if online {
            center
        } else {
            center.offset_m(
                (rng.random::<f64>() - 0.5) * 6000.0,
                (rng.random::<f64>() - 0.5) * 6000.0,
            )
        };
        let hours = if online {
            OpeningHours::always()
        } else {
            OpeningHours::between(9, 21)
        };
        // Each store stocks a few product categories.
        for k in 0..4 {
            let product = leaves[(store * 3 + k) % leaves.len()];
            let kind = if online { "online" } else { "store" };
            pois.push(
                Poi::new(
                    PoiId(id),
                    format!("{kind}-{store}/{}", taxonomy.node(product).name),
                    loc,
                    product,
                )
                .with_opening(hours),
            );
            id += 1;
        }
    }
    let dataset = Dataset::new(
        pois,
        taxonomy,
        TimeDomain::new(30),
        Some(8.0),
        trajshare_geo::DistanceMetric::Haversine,
    );

    // A day of purchases: groceries in the morning, sneakers at noon,
    // a laptop from an online store in the evening.
    let day = Trajectory::from_pairs(&[(4, 20), (61, 26), (2, 40)]);
    println!("real purchase history:");
    print_purchases(&dataset, &day);

    let mech = NGramMechanism::build(&dataset, &MechanismConfig::default());
    println!(
        "\npurchase-domain decomposition: {} store-time-product regions, {} feasible bigrams",
        mech.regions().len(),
        mech.graph().num_bigrams()
    );
    let out = mech.perturb(&day, &mut rng);
    println!("\nshared (ε-LDP) purchase history:");
    print_purchases(&dataset, &out.trajectory);

    println!(
        "\nnote: the impossible combinations of §8 ('purchasing a car from a \
         florist') are excluded for free — region membership only ever pairs \
         stores with products they stock."
    );
}

fn print_purchases(dataset: &Dataset, t: &Trajectory) {
    for pt in t.points() {
        let poi = dataset.pois.get(pt.poi);
        println!(
            "  {} @ {}  [{}]",
            poi.name,
            dataset.time.format(pt.t),
            dataset.hierarchy.path_name(poi.category)
        );
    }
}

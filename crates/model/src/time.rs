//! The quantized time domain.
//!
//! §4: "We quantize the time domain into a series of timesteps t, the size
//! of which is controlled by the time granularity g_t." The experiments use
//! a single generic day with `g_t = 10` minutes, i.e. 144 timesteps; STC
//! regions use coarser [`TimeInterval`]s (one hour by default).

use serde::{Deserialize, Serialize};

/// Minutes in one day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;

/// Index of a timestep within the day (`0 .. TimeDomain::num_timesteps()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Timestep(pub u16);

impl Timestep {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The quantized day: timesteps of `g_t` minutes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeDomain {
    gt_minutes: u32,
}

impl TimeDomain {
    /// Creates a domain with granularity `g_t` (minutes). Panics unless
    /// `g_t` divides the day evenly and is positive.
    pub fn new(gt_minutes: u32) -> Self {
        assert!(gt_minutes > 0, "g_t must be positive");
        assert!(
            MINUTES_PER_DAY.is_multiple_of(gt_minutes),
            "g_t = {gt_minutes} must divide {MINUTES_PER_DAY} minutes"
        );
        Self { gt_minutes }
    }

    /// The granularity `g_t` in minutes.
    #[inline]
    pub fn gt_minutes(&self) -> u32 {
        self.gt_minutes
    }

    /// `|T|` — number of timesteps in the day.
    #[inline]
    pub fn num_timesteps(&self) -> usize {
        (MINUTES_PER_DAY / self.gt_minutes) as usize
    }

    /// Start minute-of-day of a timestep.
    #[inline]
    pub fn minute_of(&self, t: Timestep) -> u32 {
        t.0 as u32 * self.gt_minutes
    }

    /// The timestep containing `minute` (clamped into the day).
    #[inline]
    pub fn timestep_at(&self, minute: u32) -> Timestep {
        let m = minute.min(MINUTES_PER_DAY - 1);
        Timestep((m / self.gt_minutes) as u16)
    }

    /// Absolute gap between two timesteps, in minutes.
    #[inline]
    pub fn gap_minutes(&self, a: Timestep, b: Timestep) -> u32 {
        (a.0 as i32 - b.0 as i32).unsigned_abs() * self.gt_minutes
    }

    /// Iterator over all timesteps.
    pub fn timesteps(&self) -> impl Iterator<Item = Timestep> {
        (0..self.num_timesteps() as u16).map(Timestep)
    }

    /// Formats a timestep as `HH:MM` for display.
    pub fn format(&self, t: Timestep) -> String {
        let m = self.minute_of(t);
        format!("{:02}:{:02}", m / 60, m % 60)
    }
}

/// A coarse, half-open time interval `[start_min, end_min)` within the day.
/// Used for STC-region time dimensions (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimeInterval {
    pub start_min: u32,
    pub end_min: u32,
}

impl TimeInterval {
    /// Creates an interval; panics if empty/inverted or past midnight.
    pub fn new(start_min: u32, end_min: u32) -> Self {
        assert!(
            start_min < end_min,
            "empty interval [{start_min}, {end_min})"
        );
        assert!(end_min <= MINUTES_PER_DAY, "interval exceeds the day");
        Self { start_min, end_min }
    }

    /// Builds the `count` equal intervals that tile the day.
    pub fn tiling(count: u32) -> Vec<TimeInterval> {
        assert!(count > 0 && MINUTES_PER_DAY.is_multiple_of(count));
        let w = MINUTES_PER_DAY / count;
        (0..count)
            .map(|i| TimeInterval::new(i * w, (i + 1) * w))
            .collect()
    }

    /// Whether the timestep's start minute falls in the interval.
    #[inline]
    pub fn contains(&self, domain: &TimeDomain, t: Timestep) -> bool {
        let m = domain.minute_of(t);
        m >= self.start_min && m < self.end_min
    }

    /// Center of the interval in minutes (§5.10: merged time regions use
    /// interval centroids).
    #[inline]
    pub fn center_min(&self) -> f64 {
        (self.start_min + self.end_min) as f64 / 2.0
    }

    /// Width in minutes.
    #[inline]
    pub fn width_min(&self) -> u32 {
        self.end_min - self.start_min
    }

    /// The union of two touching-or-overlapping intervals, or `None` when
    /// they are disjoint (used by time-dimension merging).
    pub fn merge(&self, other: &TimeInterval) -> Option<TimeInterval> {
        if self.end_min < other.start_min || other.end_min < self.start_min {
            return None;
        }
        Some(TimeInterval::new(
            self.start_min.min(other.start_min),
            self.end_min.max(other.end_min),
        ))
    }

    /// Time distance between interval centers, in minutes, capped at 12 h
    /// (§5.10: "no time distance is greater than 12 hours").
    pub fn center_distance_capped_min(&self, other: &TimeInterval) -> f64 {
        let d = (self.center_min() - other.center_min()).abs();
        d.min(12.0 * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_paper_domain_has_144_steps() {
        let d = TimeDomain::new(10);
        assert_eq!(d.num_timesteps(), 144);
        assert_eq!(d.minute_of(Timestep(0)), 0);
        assert_eq!(d.minute_of(Timestep(143)), 1430);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_dividing_granularity_rejected() {
        let _ = TimeDomain::new(7);
    }

    #[test]
    fn timestep_at_rounds_down_and_clamps() {
        let d = TimeDomain::new(10);
        assert_eq!(d.timestep_at(0), Timestep(0));
        assert_eq!(d.timestep_at(9), Timestep(0));
        assert_eq!(d.timestep_at(10), Timestep(1));
        assert_eq!(d.timestep_at(5000), Timestep(143));
    }

    #[test]
    fn gap_is_symmetric() {
        let d = TimeDomain::new(10);
        assert_eq!(d.gap_minutes(Timestep(3), Timestep(9)), 60);
        assert_eq!(d.gap_minutes(Timestep(9), Timestep(3)), 60);
        assert_eq!(d.gap_minutes(Timestep(5), Timestep(5)), 0);
    }

    #[test]
    fn format_renders_hhmm() {
        let d = TimeDomain::new(10);
        assert_eq!(d.format(Timestep(65)), "10:50");
    }

    #[test]
    fn tiling_covers_day_without_overlap() {
        let tiles = TimeInterval::tiling(24);
        assert_eq!(tiles.len(), 24);
        assert_eq!(tiles[0].start_min, 0);
        assert_eq!(tiles[23].end_min, MINUTES_PER_DAY);
        for w in tiles.windows(2) {
            assert_eq!(w[0].end_min, w[1].start_min);
        }
    }

    #[test]
    fn contains_uses_half_open_bounds() {
        let d = TimeDomain::new(10);
        let iv = TimeInterval::new(600, 660); // 10:00-11:00
        assert!(iv.contains(&d, d.timestep_at(600)));
        assert!(iv.contains(&d, d.timestep_at(650)));
        assert!(!iv.contains(&d, d.timestep_at(660)));
        assert!(!iv.contains(&d, d.timestep_at(599)));
    }

    #[test]
    fn merge_adjacent_and_reject_disjoint() {
        let a = TimeInterval::new(60, 120);
        let b = TimeInterval::new(120, 180);
        let c = TimeInterval::new(300, 360);
        assert_eq!(a.merge(&b), Some(TimeInterval::new(60, 180)));
        assert_eq!(b.merge(&a), Some(TimeInterval::new(60, 180)));
        assert_eq!(a.merge(&c), None);
    }

    #[test]
    fn center_distance_capped_at_12_hours() {
        let a = TimeInterval::new(0, 60); // center 00:30
        let b = TimeInterval::new(23 * 60, 24 * 60); // center 23:30
        assert_eq!(a.center_distance_capped_min(&b), 12.0 * 60.0);
        let c = TimeInterval::new(120, 240); // center 03:00
        let d = TimeInterval::new(300, 420); // center 06:00
        assert_eq!(c.center_distance_capped_min(&d), 180.0);
    }

    #[test]
    fn paper_example_merged_interval_distance() {
        // §5.10: regions covering 2-4pm and 5-7pm -> |3pm - 6pm| = 3 hours.
        let a = TimeInterval::new(14 * 60, 16 * 60);
        let b = TimeInterval::new(17 * 60, 19 * 60);
        assert_eq!(a.center_distance_capped_min(&b), 180.0);
    }
}

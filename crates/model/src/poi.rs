//! Points of interest.

use crate::opening::OpeningHours;
use serde::{Deserialize, Serialize};
use trajshare_geo::GeoPoint;
use trajshare_hierarchy::CategoryId;

/// Index of a POI within its [`crate::PoiTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PoiId(pub u32);

impl PoiId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A point of interest with its public attributes (§4: location, category,
/// popularity, opening hours — all user-independent external knowledge).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Poi {
    pub id: PoiId,
    pub name: String,
    pub location: GeoPoint,
    /// Leaf category in the dataset's hierarchy.
    pub category: CategoryId,
    /// Relative popularity weight (> 0); drives merging decisions and the
    /// synthetic generators. Not consumed by the privacy mechanism itself.
    pub popularity: f64,
    pub opening: OpeningHours,
}

impl Poi {
    /// Convenience constructor with always-open hours and unit popularity.
    pub fn new(
        id: PoiId,
        name: impl Into<String>,
        location: GeoPoint,
        category: CategoryId,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            location,
            category,
            popularity: 1.0,
            opening: OpeningHours::always(),
        }
    }

    /// Builder-style popularity setter.
    pub fn with_popularity(mut self, popularity: f64) -> Self {
        assert!(popularity > 0.0, "popularity must be positive");
        self.popularity = popularity;
        self
    }

    /// Builder-style opening-hours setter.
    pub fn with_opening(mut self, opening: OpeningHours) -> Self {
        self.opening = opening;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let p = Poi::new(
            PoiId(3),
            "Central Park",
            GeoPoint::new(40.78, -73.96),
            CategoryId(2),
        )
        .with_popularity(7.5)
        .with_opening(OpeningHours::between(6, 22));
        assert_eq!(p.id, PoiId(3));
        assert_eq!(p.popularity, 7.5);
        assert!(p.opening.is_open_hour(6));
        assert!(!p.opening.is_open_hour(23));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_popularity_rejected() {
        let _ =
            Poi::new(PoiId(0), "x", GeoPoint::new(40.0, -74.0), CategoryId(0)).with_popularity(0.0);
    }
}

//! Domain model for `trajshare`.
//!
//! Implements the paper's §4 definitions: POIs with location, category,
//! popularity and opening hours ([`Poi`]); the quantized time domain with
//! granularity `g_t` ([`TimeDomain`]); trajectories as time-ordered
//! (POI, timestep) sequences ([`Trajectory`]); and the reachability
//! constraint of Definition 4.1 ([`ReachabilityOracle`]).
//!
//! A [`Dataset`] bundles the POI table with the public external knowledge
//! (category hierarchy + distance, travel speed, distance metric) that the
//! mechanism and every baseline consume.

pub mod dataset;
pub mod io;
pub mod opening;
pub mod poi;
pub mod reachability;
pub mod time;
pub mod trajectory;

pub use dataset::{Dataset, PoiTable};
pub use io::{format_pois, format_trajectories, parse_pois, parse_trajectories, ParseError};
pub use opening::OpeningHours;
pub use poi::{Poi, PoiId};
pub use reachability::{ReachabilityOracle, TravelSpeed};
pub use time::{TimeDomain, TimeInterval, Timestep};
pub use trajectory::{Trajectory, TrajectoryPoint, TrajectorySet, ValidationError};

//! POI tables and the dataset bundle.

use crate::poi::{Poi, PoiId};
use crate::time::TimeDomain;
use trajshare_geo::{BoundingBox, DistanceMetric, GeoPoint, UniformGrid};
use trajshare_hierarchy::{CategoryDistance, CategoryHierarchy};

/// Side length (cells) of the internal bucket grid used for radius queries.
const BUCKET_GRID: u32 = 32;

/// An immutable POI table with a bucket-grid spatial index.
#[derive(Debug, Clone)]
pub struct PoiTable {
    pois: Vec<Poi>,
    bbox: BoundingBox,
    grid: UniformGrid,
    /// `buckets[cell]` = POI indices in that cell.
    buckets: Vec<Vec<u32>>,
}

impl PoiTable {
    /// Builds the table and index. Panics on an empty POI list or ids that
    /// do not match their positions (ids must be dense `0..n`).
    pub fn new(pois: Vec<Poi>) -> Self {
        assert!(!pois.is_empty(), "a POI table cannot be empty");
        for (i, p) in pois.iter().enumerate() {
            assert_eq!(p.id.index(), i, "POI ids must be dense and in order");
        }
        let points: Vec<GeoPoint> = pois.iter().map(|p| p.location).collect();
        // Inflate slightly so boundary POIs are interior to the grid.
        let bbox = BoundingBox::covering(&points)
            .expect("non-empty")
            .inflate(1e-4);
        let grid = UniformGrid::new(bbox, BUCKET_GRID);
        let mut buckets = vec![Vec::new(); grid.num_cells() as usize];
        for (i, p) in pois.iter().enumerate() {
            buckets[grid.cell_of(p.location).0 as usize].push(i as u32);
        }
        Self {
            pois,
            bbox,
            grid,
            buckets,
        }
    }

    /// Number of POIs (`|P|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the table is empty (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// The POI for an id. Panics if out of range.
    #[inline]
    pub fn get(&self, id: PoiId) -> &Poi {
        &self.pois[id.index()]
    }

    /// All POIs in id order.
    #[inline]
    pub fn all(&self) -> &[Poi] {
        &self.pois
    }

    /// Iterator over ids.
    pub fn ids(&self) -> impl Iterator<Item = PoiId> {
        (0..self.pois.len() as u32).map(PoiId)
    }

    /// Covering bounding box (slightly inflated).
    #[inline]
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// POIs within `radius_m` of `center` under `metric`.
    ///
    /// Scans only the bucket cells whose boxes can intersect the radius.
    pub fn within_radius(
        &self,
        center: GeoPoint,
        radius_m: f64,
        metric: DistanceMetric,
    ) -> Vec<PoiId> {
        let mut out = Vec::new();
        if radius_m < 0.0 {
            return out;
        }
        // Conservative degree margin: 1 deg lat ~ 111 km; lon shrinks with
        // latitude, so use the cos at the box center and guard small values.
        let lat_margin = radius_m / 111_000.0;
        let cosl = self.bbox.center().lat.to_radians().cos().max(0.1);
        let lon_margin = radius_m / (111_000.0 * cosl);
        let query = BoundingBox {
            min_lat: center.lat - lat_margin,
            max_lat: center.lat + lat_margin,
            min_lon: center.lon - lon_margin,
            max_lon: center.lon + lon_margin,
        };
        for cell in self.grid.cells() {
            if !self.grid.cell_bbox(cell).intersects(&query) {
                continue;
            }
            for &i in &self.buckets[cell.0 as usize] {
                let p = &self.pois[i as usize];
                if p.location.distance_m(&center, metric) <= radius_m {
                    out.push(PoiId(i));
                }
            }
        }
        out
    }

    /// The POI nearest to `point`, with its distance in meters.
    pub fn nearest(&self, point: GeoPoint, metric: DistanceMetric) -> (PoiId, f64) {
        let mut best = (PoiId(0), f64::INFINITY);
        for (i, p) in self.pois.iter().enumerate() {
            let d = p.location.distance_m(&point, metric);
            if d < best.1 {
                best = (PoiId(i as u32), d);
            }
        }
        best
    }
}

/// Everything public that the mechanism consumes: POIs, category knowledge,
/// the time domain, the assumed travel speed, and the distance metric.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub pois: PoiTable,
    pub hierarchy: CategoryHierarchy,
    pub category_distance: CategoryDistance,
    pub time: TimeDomain,
    /// Assumed travel speed (§6.2: 8 km/h for city data, 4 km/h campus);
    /// `None` disables the reachability constraint (θ = ∞).
    pub speed_kmh: Option<f64>,
    pub metric: DistanceMetric,
}

impl Dataset {
    /// Bundles the parts; builds the category-distance matrix.
    pub fn new(
        pois: Vec<Poi>,
        hierarchy: CategoryHierarchy,
        time: TimeDomain,
        speed_kmh: Option<f64>,
        metric: DistanceMetric,
    ) -> Self {
        if let Some(s) = speed_kmh {
            assert!(s > 0.0, "travel speed must be positive");
        }
        let category_distance = CategoryDistance::build(&hierarchy);
        Self {
            pois: PoiTable::new(pois),
            hierarchy,
            category_distance,
            time,
            speed_kmh,
            metric,
        }
    }

    /// Physical distance between two POIs in meters.
    #[inline]
    pub fn poi_distance_m(&self, a: PoiId, b: PoiId) -> f64 {
        self.pois
            .get(a)
            .location
            .distance_m(&self.pois.get(b).location, self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opening::OpeningHours;
    use trajshare_hierarchy::builders::campus;

    fn sample_pois(n: usize) -> Vec<Poi> {
        let origin = GeoPoint::new(40.7, -74.0);
        (0..n)
            .map(|i| {
                let p = origin.offset_m((i % 10) as f64 * 300.0, (i / 10) as f64 * 300.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("poi{i}"),
                    p,
                    trajshare_hierarchy::CategoryId(2),
                )
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_rejected() {
        let _ = PoiTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn out_of_order_ids_rejected() {
        let mut pois = sample_pois(3);
        pois.swap(0, 2);
        let _ = PoiTable::new(pois);
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let table = PoiTable::new(sample_pois(100));
        let center = table.get(PoiId(34)).location;
        let r = 650.0;
        let mut fast = table.within_radius(center, r, DistanceMetric::Haversine);
        fast.sort();
        let mut slow: Vec<PoiId> = table
            .ids()
            .filter(|&id| table.get(id).location.haversine_m(&center) <= r)
            .collect();
        slow.sort();
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }

    #[test]
    fn radius_zero_returns_only_colocated() {
        let table = PoiTable::new(sample_pois(20));
        let center = table.get(PoiId(5)).location;
        let hits = table.within_radius(center, 0.5, DistanceMetric::Haversine);
        assert_eq!(hits, vec![PoiId(5)]);
    }

    #[test]
    fn negative_radius_is_empty() {
        let table = PoiTable::new(sample_pois(5));
        assert!(table
            .within_radius(
                table.get(PoiId(0)).location,
                -1.0,
                DistanceMetric::Haversine
            )
            .is_empty());
    }

    #[test]
    fn nearest_finds_self() {
        let table = PoiTable::new(sample_pois(30));
        let (id, d) = table.nearest(table.get(PoiId(17)).location, DistanceMetric::Haversine);
        assert_eq!(id, PoiId(17));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn dataset_distance_and_category_matrix() {
        let h = campus();
        let leaves = h.leaves();
        let mut pois = sample_pois(4);
        for (i, p) in pois.iter_mut().enumerate() {
            p.category = leaves[i % leaves.len()];
            p.opening = OpeningHours::always();
        }
        let ds = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        assert!(ds.poi_distance_m(PoiId(0), PoiId(1)) > 0.0);
        assert_eq!(ds.poi_distance_m(PoiId(2), PoiId(2)), 0.0);
        assert_eq!(ds.category_distance.max_distance(), 10.0);
    }
}

//! Opening hours as public external knowledge.
//!
//! The paper assigns opening hours per broad category ("we manually specify
//! opening hours for each broad category... However, the mechanism is
//! designed to allow POI-specific opening hours", §6.1.1). We model hours as
//! a 24-bit mask over the day's hours, which supports both styles and
//! wrap-past-midnight venues (bars, clubs).

use crate::time::{TimeDomain, Timestep};
use serde::{Deserialize, Serialize};

/// A set of open hours within the generic day (bit `h` = open during hour
/// `h`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpeningHours {
    mask: u32,
}

impl OpeningHours {
    /// Open around the clock.
    pub const fn always() -> Self {
        Self {
            mask: (1 << 24) - 1,
        }
    }

    /// Never open (useful for tests; real POIs should not use this).
    pub const fn never() -> Self {
        Self { mask: 0 }
    }

    /// Open from `start_hour` (inclusive) to `end_hour` (exclusive), both in
    /// `0..=24`. If `start_hour >= end_hour`, the range wraps past midnight
    /// (e.g. `between(18, 2)` = 6pm–2am).
    pub fn between(start_hour: u32, end_hour: u32) -> Self {
        assert!(
            start_hour <= 24 && end_hour <= 24,
            "hours must be within 0..=24"
        );
        let mut mask = 0u32;
        if start_hour < end_hour {
            for h in start_hour..end_hour {
                mask |= 1 << h;
            }
        } else {
            for h in start_hour..24 {
                mask |= 1 << h;
            }
            for h in 0..end_hour {
                mask |= 1 << h;
            }
        }
        Self { mask }
    }

    /// Builds from an explicit list of open hours.
    pub fn from_hours(hours: &[u32]) -> Self {
        let mut mask = 0u32;
        for &h in hours {
            assert!(h < 24, "hour {h} out of range");
            mask |= 1 << h;
        }
        Self { mask }
    }

    /// Whether the venue is open during hour `h`.
    #[inline]
    pub fn is_open_hour(&self, h: u32) -> bool {
        debug_assert!(h < 24);
        self.mask & (1 << h) != 0
    }

    /// Whether the venue is open at minute-of-day `m`.
    #[inline]
    pub fn is_open_minute(&self, m: u32) -> bool {
        self.is_open_hour((m / 60).min(23))
    }

    /// Whether the venue is open at a timestep.
    #[inline]
    pub fn is_open_at(&self, domain: &TimeDomain, t: Timestep) -> bool {
        self.is_open_minute(domain.minute_of(t))
    }

    /// Whether the venue is open at any point within `[start_min, end_min)`.
    pub fn overlaps_interval(&self, start_min: u32, end_min: u32) -> bool {
        let first = start_min / 60;
        let last = (end_min.saturating_sub(1)) / 60;
        (first..=last.min(23)).any(|h| self.is_open_hour(h))
    }

    /// Number of open hours.
    pub fn open_hours_count(&self) -> u32 {
        self.mask.count_ones()
    }
}

impl Default for OpeningHours {
    fn default() -> Self {
        Self::always()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_open_everywhere() {
        let o = OpeningHours::always();
        for h in 0..24 {
            assert!(o.is_open_hour(h));
        }
        assert_eq!(o.open_hours_count(), 24);
    }

    #[test]
    fn simple_range() {
        let o = OpeningHours::between(9, 17);
        assert!(!o.is_open_hour(8));
        assert!(o.is_open_hour(9));
        assert!(o.is_open_hour(16));
        assert!(!o.is_open_hour(17));
        assert_eq!(o.open_hours_count(), 8);
    }

    #[test]
    fn wrapping_range_covers_midnight() {
        let o = OpeningHours::between(18, 2); // nightlife
        assert!(o.is_open_hour(18));
        assert!(o.is_open_hour(23));
        assert!(o.is_open_hour(0));
        assert!(o.is_open_hour(1));
        assert!(!o.is_open_hour(2));
        assert!(!o.is_open_hour(12));
    }

    #[test]
    fn minute_and_timestep_queries() {
        let d = TimeDomain::new(10);
        let o = OpeningHours::between(10, 11);
        assert!(o.is_open_minute(10 * 60));
        assert!(o.is_open_minute(10 * 60 + 59));
        assert!(!o.is_open_minute(11 * 60));
        assert!(o.is_open_at(&d, d.timestep_at(10 * 60 + 30)));
        assert!(!o.is_open_at(&d, d.timestep_at(9 * 60 + 50)));
    }

    #[test]
    fn interval_overlap() {
        let o = OpeningHours::between(10, 12);
        assert!(o.overlaps_interval(11 * 60, 13 * 60));
        assert!(o.overlaps_interval(9 * 60, 10 * 60 + 1));
        assert!(!o.overlaps_interval(12 * 60, 14 * 60));
        assert!(!o.overlaps_interval(0, 10 * 60));
    }

    #[test]
    fn from_hours_list() {
        let o = OpeningHours::from_hours(&[0, 23, 12]);
        assert!(o.is_open_hour(0) && o.is_open_hour(12) && o.is_open_hour(23));
        assert_eq!(o.open_hours_count(), 3);
    }

    #[test]
    fn never_is_closed() {
        let o = OpeningHours::never();
        assert_eq!(o.open_hours_count(), 0);
        assert!(!o.overlaps_interval(0, 24 * 60));
    }
}

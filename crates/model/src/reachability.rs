//! The reachability constraint (Definition 4.1).
//!
//! A POI `p_b` is reachable from `p_a` over a gap of `Δt` minutes when
//! `d_s(p_a, p_b) ≤ θ(Δt)` with `θ(Δt) = speed × Δt`. The constraint can be
//! disabled (θ = ∞), matching the "Inf" travel-speed setting of §7.2.4.

use crate::dataset::Dataset;
use crate::poi::PoiId;
use crate::time::Timestep;
use serde::{Deserialize, Serialize};

/// Assumed travel speed, or unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TravelSpeed {
    /// Kilometers per hour; must be positive.
    Kmh(f64),
    /// θ = ∞ — every POI pair is reachable.
    Unlimited,
}

impl TravelSpeed {
    /// Maximum distance coverable in `minutes`, in meters.
    #[inline]
    pub fn threshold_m(&self, minutes: f64) -> f64 {
        match *self {
            TravelSpeed::Kmh(kmh) => kmh * 1000.0 / 60.0 * minutes,
            TravelSpeed::Unlimited => f64::INFINITY,
        }
    }
}

/// Reachability oracle over a dataset.
#[derive(Debug, Clone, Copy)]
pub struct ReachabilityOracle<'a> {
    dataset: &'a Dataset,
    speed: TravelSpeed,
}

impl<'a> ReachabilityOracle<'a> {
    /// Builds the oracle from the dataset's configured speed.
    pub fn new(dataset: &'a Dataset) -> Self {
        let speed = match dataset.speed_kmh {
            Some(kmh) => TravelSpeed::Kmh(kmh),
            None => TravelSpeed::Unlimited,
        };
        Self { dataset, speed }
    }

    /// Overrides the speed (used by the travel-speed sweeps of §7.2.4).
    pub fn with_speed(dataset: &'a Dataset, speed: TravelSpeed) -> Self {
        Self { dataset, speed }
    }

    /// The configured speed.
    #[inline]
    pub fn speed(&self) -> TravelSpeed {
        self.speed
    }

    /// θ(Δt) in meters for a gap in minutes.
    #[inline]
    pub fn threshold_m(&self, minutes: f64) -> f64 {
        self.speed.threshold_m(minutes)
    }

    /// Definition 4.1: whether `to` is reachable from `from` in `minutes`.
    #[inline]
    pub fn is_reachable_m(&self, from: PoiId, to: PoiId, minutes: f64) -> bool {
        match self.speed {
            TravelSpeed::Unlimited => true,
            _ => self.dataset.poi_distance_m(from, to) <= self.threshold_m(minutes),
        }
    }

    /// Reachability between two trajectory points (uses the time-domain
    /// gap between their timesteps).
    #[inline]
    pub fn is_reachable(&self, from: (PoiId, Timestep), to: (PoiId, Timestep)) -> bool {
        let minutes = self.dataset.time.gap_minutes(from.1, to.1) as f64;
        self.is_reachable_m(from.0, to.0, minutes)
    }

    /// All POIs reachable from `from` within `minutes` (including itself).
    pub fn reachable_set(&self, from: PoiId, minutes: f64) -> Vec<PoiId> {
        match self.speed {
            TravelSpeed::Unlimited => self.dataset.pois.ids().collect(),
            _ => {
                let r = self.threshold_m(minutes);
                self.dataset.pois.within_radius(
                    self.dataset.pois.get(from).location,
                    r,
                    self.dataset.metric,
                )
            }
        }
    }

    /// Fraction of POI pairs reachable within one timestep — the paper's
    /// `μ` (§5.1). Computed by sampling when the table is large.
    pub fn mu_estimate(&self, max_pairs: usize) -> f64 {
        let n = self.dataset.pois.len();
        let gt = self.dataset.time.gt_minutes() as f64;
        if matches!(self.speed, TravelSpeed::Unlimited) {
            return 1.0;
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        let stride = ((n * n) / max_pairs.max(1)).max(1);
        let mut k = 0usize;
        for i in 0..n {
            for j in 0..n {
                if k.is_multiple_of(stride) {
                    total += 1;
                    if self.is_reachable_m(PoiId(i as u32), PoiId(j as u32), gt) {
                        hits += 1;
                    }
                }
                k += 1;
            }
        }
        hits as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::poi::Poi;
    use crate::time::TimeDomain;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;

    /// POIs spaced 500 m apart along a line.
    fn line_dataset(speed: Option<f64>) -> Dataset {
        let origin = GeoPoint::new(40.7, -74.0);
        let h = campus();
        let leaf = h.leaves()[0];
        let pois: Vec<Poi> = (0..10)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m(i as f64 * 500.0, 0.0),
                    leaf,
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            speed,
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn threshold_scales_linearly() {
        let s = TravelSpeed::Kmh(8.0);
        assert!((s.threshold_m(60.0) - 8000.0).abs() < 1e-9);
        assert!((s.threshold_m(10.0) - 8000.0 / 6.0).abs() < 1e-9);
        assert_eq!(TravelSpeed::Unlimited.threshold_m(1.0), f64::INFINITY);
    }

    #[test]
    fn reachability_with_8kmh_over_10min_is_1333m() {
        // 8 km/h over 10 min = 1333 m -> neighbors at 500 m and 1000 m are
        // reachable, 1500 m is not.
        let ds = line_dataset(Some(8.0));
        let o = ReachabilityOracle::new(&ds);
        assert!(o.is_reachable_m(PoiId(0), PoiId(1), 10.0));
        assert!(o.is_reachable_m(PoiId(0), PoiId(2), 10.0));
        assert!(!o.is_reachable_m(PoiId(0), PoiId(3), 10.0));
    }

    #[test]
    fn unlimited_speed_reaches_everything() {
        let ds = line_dataset(None);
        let o = ReachabilityOracle::new(&ds);
        assert!(o.is_reachable_m(PoiId(0), PoiId(9), 0.0));
        assert_eq!(o.reachable_set(PoiId(0), 0.0).len(), 10);
        assert_eq!(o.mu_estimate(1000), 1.0);
    }

    #[test]
    fn reachable_set_matches_definition() {
        let ds = line_dataset(Some(8.0));
        let o = ReachabilityOracle::new(&ds);
        let mut set = o.reachable_set(PoiId(5), 10.0);
        set.sort();
        // 1333 m covers indices 3..=7 around 5.
        assert_eq!(set, vec![PoiId(3), PoiId(4), PoiId(5), PoiId(6), PoiId(7)]);
    }

    #[test]
    fn timestep_based_reachability() {
        let ds = line_dataset(Some(8.0));
        let o = ReachabilityOracle::new(&ds);
        use crate::time::Timestep;
        // Gap of 3 timesteps = 30 min -> 4 km reach; POI 0 -> POI 8 (4 km) ok.
        assert!(o.is_reachable((PoiId(0), Timestep(0)), (PoiId(8), Timestep(3))));
        // Gap of 1 timestep -> only 1333 m.
        assert!(!o.is_reachable((PoiId(0), Timestep(0)), (PoiId(8), Timestep(1))));
    }

    #[test]
    fn mu_estimate_between_zero_and_one() {
        let ds = line_dataset(Some(8.0));
        let o = ReachabilityOracle::new(&ds);
        let mu = o.mu_estimate(10_000);
        assert!(mu > 0.0 && mu < 1.0, "mu = {mu}");
    }

    #[test]
    fn speed_override_changes_answer() {
        let ds = line_dataset(Some(8.0));
        let slow = ReachabilityOracle::with_speed(&ds, TravelSpeed::Kmh(1.0));
        assert!(!slow.is_reachable_m(PoiId(0), PoiId(1), 10.0));
        let fast = ReachabilityOracle::with_speed(&ds, TravelSpeed::Kmh(100.0));
        assert!(fast.is_reachable_m(PoiId(0), PoiId(9), 10.0));
    }
}

//! Trajectories and trajectory sets.
//!
//! §4: a trajectory is a time-ordered sequence of (POI, timestep) pairs with
//! strictly increasing timesteps. §6.2 filters input sets so that every
//! trajectory satisfies reachability and visits POIs only while they are
//! open; [`Trajectory::validate`] implements those checks and
//! [`TrajectorySet::filter_valid`] the filtering.

use crate::dataset::Dataset;
use crate::poi::PoiId;
use crate::reachability::ReachabilityOracle;
use crate::time::Timestep;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One visit: a POI at a timestep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    pub poi: PoiId,
    pub t: Timestep,
}

/// A user's trajectory for the day.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TrajectoryPoint>,
}

/// Why a trajectory failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// Fewer than two points.
    TooShort,
    /// `t_{i+1} > t_i` violated at index `i`.
    NonIncreasingTime { index: usize },
    /// Reachability (Definition 4.1) violated between `index` and `index+1`.
    Unreachable { index: usize },
    /// The POI at `index` is closed at its visit time.
    Closed { index: usize },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooShort => write!(f, "trajectory has fewer than two points"),
            Self::NonIncreasingTime { index } => {
                write!(f, "timesteps not strictly increasing at index {index}")
            }
            Self::Unreachable { index } => {
                write!(
                    f,
                    "reachability violated between indices {index} and {}",
                    index + 1
                )
            }
            Self::Closed { index } => write!(f, "POI at index {index} visited while closed"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Trajectory {
    /// Creates a trajectory from points (no validation; see [`validate`]).
    ///
    /// [`validate`]: Trajectory::validate
    pub fn new(points: Vec<TrajectoryPoint>) -> Self {
        Self { points }
    }

    /// Builds from `(poi_index, timestep_index)` pairs — test convenience.
    pub fn from_pairs(pairs: &[(u32, u16)]) -> Self {
        Self {
            points: pairs
                .iter()
                .map(|&(p, t)| TrajectoryPoint {
                    poi: PoiId(p),
                    t: Timestep(t),
                })
                .collect(),
        }
    }

    /// `|τ|` — number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points in order.
    #[inline]
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// The `i`-th point. Panics if out of range.
    #[inline]
    pub fn point(&self, i: usize) -> TrajectoryPoint {
        self.points[i]
    }

    /// The fragment `τ(a, b)` (0-based, inclusive), per §4 notation.
    pub fn fragment(&self, a: usize, b: usize) -> &[TrajectoryPoint] {
        &self.points[a..=b]
    }

    /// Checks monotone time, reachability and opening hours against a
    /// dataset. Returns the first violation found.
    pub fn validate(&self, dataset: &Dataset) -> Result<(), ValidationError> {
        if self.points.len() < 2 {
            return Err(ValidationError::TooShort);
        }
        let oracle = ReachabilityOracle::new(dataset);
        for (i, pt) in self.points.iter().enumerate() {
            if !dataset
                .pois
                .get(pt.poi)
                .opening
                .is_open_at(&dataset.time, pt.t)
            {
                return Err(ValidationError::Closed { index: i });
            }
        }
        for i in 0..self.points.len() - 1 {
            let (a, b) = (self.points[i], self.points[i + 1]);
            if b.t <= a.t {
                return Err(ValidationError::NonIncreasingTime { index: i });
            }
            if !oracle.is_reachable((a.poi, a.t), (b.poi, b.t)) {
                return Err(ValidationError::Unreachable { index: i });
            }
        }
        Ok(())
    }
}

/// A collection of trajectories (`T` in the paper).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrajectorySet {
    trajectories: Vec<Trajectory>,
}

impl TrajectorySet {
    pub fn new(trajectories: Vec<Trajectory>) -> Self {
        Self { trajectories }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    #[inline]
    pub fn all(&self) -> &[Trajectory] {
        &self.trajectories
    }

    pub fn push(&mut self, t: Trajectory) {
        self.trajectories.push(t);
    }

    /// §6.2 filtering: keeps only trajectories that validate.
    pub fn filter_valid(&self, dataset: &Dataset) -> TrajectorySet {
        TrajectorySet {
            trajectories: self
                .trajectories
                .iter()
                .filter(|t| t.validate(dataset).is_ok())
                .cloned()
                .collect(),
        }
    }

    /// Mean trajectory length.
    pub fn mean_len(&self) -> f64 {
        if self.trajectories.is_empty() {
            return 0.0;
        }
        self.trajectories.iter().map(|t| t.len()).sum::<usize>() as f64
            / self.trajectories.len() as f64
    }
}

impl FromIterator<Trajectory> for TrajectorySet {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Self {
        Self {
            trajectories: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opening::OpeningHours;
    use crate::poi::Poi;
    use crate::time::TimeDomain;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;

    /// 10 POIs 500 m apart; POI 9 is only open 9-10am.
    fn dataset() -> Dataset {
        let origin = GeoPoint::new(40.7, -74.0);
        let h = campus();
        let leaf = h.leaves()[0];
        let mut pois: Vec<Poi> = (0..10)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m(i as f64 * 500.0, 0.0),
                    leaf,
                )
            })
            .collect();
        pois[9].opening = OpeningHours::between(9, 10);
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn valid_trajectory_passes() {
        let ds = dataset();
        // 500 m hops with 10-min gaps (1333 m budget) — fine.
        let t = Trajectory::from_pairs(&[(0, 60), (1, 61), (2, 62)]);
        assert_eq!(t.validate(&ds), Ok(()));
    }

    #[test]
    fn too_short_rejected() {
        let ds = dataset();
        assert_eq!(
            Trajectory::from_pairs(&[(0, 60)]).validate(&ds),
            Err(ValidationError::TooShort)
        );
    }

    #[test]
    fn non_increasing_time_rejected() {
        let ds = dataset();
        let t = Trajectory::from_pairs(&[(0, 60), (1, 60)]);
        assert_eq!(
            t.validate(&ds),
            Err(ValidationError::NonIncreasingTime { index: 0 })
        );
        let t = Trajectory::from_pairs(&[(0, 60), (1, 59)]);
        assert_eq!(
            t.validate(&ds),
            Err(ValidationError::NonIncreasingTime { index: 0 })
        );
    }

    #[test]
    fn unreachable_hop_rejected() {
        let ds = dataset();
        // POI 0 -> POI 8 is 4 km in 10 minutes at 8 km/h (1333 m): illegal.
        let t = Trajectory::from_pairs(&[(0, 60), (8, 61)]);
        assert_eq!(
            t.validate(&ds),
            Err(ValidationError::Unreachable { index: 0 })
        );
    }

    #[test]
    fn closed_poi_rejected() {
        let ds = dataset();
        // POI 9 closed at 20:00 (timestep 120).
        let t = Trajectory::from_pairs(&[(8, 119), (9, 120)]);
        assert_eq!(t.validate(&ds), Err(ValidationError::Closed { index: 1 }));
        // But fine at 09:30 (timestep 57) coming from POI 8.
        let t = Trajectory::from_pairs(&[(8, 56), (9, 57)]);
        assert_eq!(t.validate(&ds), Ok(()));
    }

    #[test]
    fn fragment_slices_inclusive() {
        let t = Trajectory::from_pairs(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let f = t.fragment(1, 2);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].poi, PoiId(1));
        assert_eq!(f[1].poi, PoiId(2));
    }

    #[test]
    fn filter_valid_drops_bad_trajectories() {
        let ds = dataset();
        let set = TrajectorySet::new(vec![
            Trajectory::from_pairs(&[(0, 60), (1, 61)]),
            Trajectory::from_pairs(&[(0, 60), (8, 61)]), // unreachable
            Trajectory::from_pairs(&[(2, 70), (3, 72)]),
        ]);
        let kept = set.filter_valid(&ds);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn mean_len_computation() {
        let set = TrajectorySet::new(vec![
            Trajectory::from_pairs(&[(0, 1), (1, 2)]),
            Trajectory::from_pairs(&[(0, 1), (1, 2), (2, 3), (3, 4)]),
        ]);
        assert_eq!(set.mean_len(), 3.0);
        assert_eq!(TrajectorySet::default().mean_len(), 0.0);
    }

    #[test]
    fn display_of_validation_errors() {
        let e = ValidationError::Unreachable { index: 2 };
        assert!(e.to_string().contains("2 and 3"));
    }
}

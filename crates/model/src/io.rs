//! Plain-text import/export so real POI tables and trajectory logs can be
//! loaded without extra dependencies.
//!
//! Formats (header line required, `#` comments ignored):
//!
//! * POIs: `id,name,lat,lon,category,popularity,open_start_h,open_end_h`
//!   (`open_start_h == open_end_h == 0` means always open),
//! * Trajectories: `user,poi_id,timestep` rows, grouped by `user` in file
//!   order; timesteps are indices into the dataset's
//!   [`TimeDomain`](crate::TimeDomain).

use crate::opening::OpeningHours;
use crate::poi::{Poi, PoiId};
use crate::time::Timestep;
use crate::trajectory::{Trajectory, TrajectoryPoint, TrajectorySet};
use std::fmt;
use trajshare_geo::GeoPoint;
use trajshare_hierarchy::CategoryId;

/// Errors from parsing the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a POI table from CSV text. Ids must be dense `0..n` (any order in
/// the file).
pub fn parse_pois(text: &str) -> Result<Vec<Poi>, ParseError> {
    let mut rows = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || (lineno == 0 && line.starts_with("id,")) {
            continue;
        }
        let f: Vec<&str> = line.split(',').map(str::trim).collect();
        if f.len() != 8 {
            return Err(err(
                lineno + 1,
                format!("expected 8 fields, got {}", f.len()),
            ));
        }
        let parse_f64 = |s: &str, what: &str| -> Result<f64, ParseError> {
            s.parse()
                .map_err(|_| err(lineno + 1, format!("bad {what}: {s:?}")))
        };
        let id: u32 = f[0]
            .parse()
            .map_err(|_| err(lineno + 1, format!("bad id: {:?}", f[0])))?;
        let lat = parse_f64(f[2], "lat")?;
        let lon = parse_f64(f[3], "lon")?;
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(err(
                lineno + 1,
                format!("coordinates out of range: {lat},{lon}"),
            ));
        }
        let category: u32 = f[4]
            .parse()
            .map_err(|_| err(lineno + 1, format!("bad category: {:?}", f[4])))?;
        let popularity = parse_f64(f[5], "popularity")?;
        if popularity <= 0.0 {
            return Err(err(lineno + 1, "popularity must be positive"));
        }
        let (o_start, o_end): (u32, u32) = (
            f[6].parse()
                .map_err(|_| err(lineno + 1, "bad open_start_h"))?,
            f[7].parse()
                .map_err(|_| err(lineno + 1, "bad open_end_h"))?,
        );
        if o_start > 24 || o_end > 24 {
            return Err(err(lineno + 1, "opening hours must be within 0..=24"));
        }
        let opening = if o_start == 0 && o_end == 0 {
            OpeningHours::always()
        } else {
            OpeningHours::between(o_start, o_end)
        };
        rows.push(
            Poi::new(
                PoiId(id),
                f[1].to_string(),
                GeoPoint::new(lat, lon),
                CategoryId(category),
            )
            .with_popularity(popularity)
            .with_opening(opening),
        );
    }
    rows.sort_by_key(|p| p.id);
    for (i, p) in rows.iter().enumerate() {
        if p.id.index() != i {
            return Err(err(
                0,
                format!("POI ids must be dense 0..n; missing or duplicate id {i}"),
            ));
        }
    }
    Ok(rows)
}

/// Serializes a POI table to the CSV format accepted by [`parse_pois`].
pub fn format_pois(pois: &[Poi]) -> String {
    let mut out = String::from("id,name,lat,lon,category,popularity,open_start_h,open_end_h\n");
    for p in pois {
        // Reconstruct an hour range when the mask is contiguous; fall back
        // to always-open encoding otherwise.
        let (s, e) = hour_range(&p.opening);
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            p.id.0,
            p.name.replace(',', ";"),
            p.location.lat,
            p.location.lon,
            p.category.0,
            p.popularity,
            s,
            e
        ));
    }
    out
}

/// Best-effort (start, end) hours for a mask; (0, 0) = always open.
fn hour_range(o: &OpeningHours) -> (u32, u32) {
    if o.open_hours_count() == 24 {
        return (0, 0);
    }
    let open: Vec<u32> = (0..24).filter(|&h| o.is_open_hour(h)).collect();
    if open.is_empty() {
        return (0, 0);
    }
    // Detect a contiguous (possibly wrapping) run.
    let start = *open
        .iter()
        .find(|&&h| !o.is_open_hour((h + 23) % 24))
        .unwrap_or(&open[0]);
    let end = (start + open.len() as u32) % 24;
    (start, if end == 0 { 24 } else { end })
}

/// Parses trajectories from `user,poi_id,timestep` CSV.
pub fn parse_trajectories(text: &str) -> Result<TrajectorySet, ParseError> {
    let mut current_user: Option<&str> = None;
    let mut current: Vec<TrajectoryPoint> = Vec::new();
    let mut set = TrajectorySet::default();
    let mut flush = |points: &mut Vec<TrajectoryPoint>| {
        if !points.is_empty() {
            set.push(Trajectory::new(std::mem::take(points)));
        }
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || (lineno == 0 && line.starts_with("user,")) {
            continue;
        }
        let f: Vec<&str> = line.split(',').map(str::trim).collect();
        if f.len() != 3 {
            return Err(err(
                lineno + 1,
                format!("expected 3 fields, got {}", f.len()),
            ));
        }
        let poi: u32 = f[1]
            .parse()
            .map_err(|_| err(lineno + 1, format!("bad poi_id: {:?}", f[1])))?;
        let t: u16 = f[2]
            .parse()
            .map_err(|_| err(lineno + 1, format!("bad timestep: {:?}", f[2])))?;
        if current_user != Some(f[0]) {
            flush(&mut current);
            current_user = Some(f[0]);
        }
        current.push(TrajectoryPoint {
            poi: PoiId(poi),
            t: Timestep(t),
        });
    }
    flush(&mut current);
    Ok(set)
}

/// Serializes a trajectory set to the CSV format accepted by
/// [`parse_trajectories`]. Users are numbered by position.
pub fn format_trajectories(set: &TrajectorySet) -> String {
    let mut out = String::from("user,poi_id,timestep\n");
    for (u, t) in set.all().iter().enumerate() {
        for pt in t.points() {
            out.push_str(&format!("{u},{},{}\n", pt.poi.0, pt.t.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const POI_CSV: &str = "\
id,name,lat,lon,category,popularity,open_start_h,open_end_h
0,Central Park,40.78,-73.96,2,5.0,0,0
# a comment
2,Late Bar,40.73,-73.99,4,1.5,18,2
1,Cafe Uno,40.74,-74.00,3,2.0,7,19
";

    #[test]
    fn parse_pois_roundtrip() {
        let pois = parse_pois(POI_CSV).unwrap();
        assert_eq!(pois.len(), 3);
        assert_eq!(pois[0].name, "Central Park");
        assert!(pois[0].opening.is_open_hour(3), "0,0 means always open");
        assert!(pois[2].opening.is_open_hour(1), "bar wraps midnight");
        assert!(!pois[2].opening.is_open_hour(12));
        let text = format_pois(&pois);
        let again = parse_pois(&text).unwrap();
        for (a, b) in pois.iter().zip(&again) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.opening, b.opening, "{}", a.name);
            assert_eq!(a.category, b.category);
        }
    }

    #[test]
    fn parse_pois_rejects_gaps_and_bad_rows() {
        let missing = "id,name,lat,lon,category,popularity,open_start_h,open_end_h\n0,a,40,-74,0,1,0,0\n2,b,40,-74,0,1,0,0\n";
        assert!(parse_pois(missing).unwrap_err().message.contains("dense"));
        let short = "0,a,40,-74,0,1,0\n";
        assert!(parse_pois(short).unwrap_err().message.contains("8 fields"));
        let bad_lat = "0,a,95,-74,0,1,0,0\n";
        assert!(parse_pois(bad_lat)
            .unwrap_err()
            .message
            .contains("out of range"));
        let bad_pop = "0,a,40,-74,0,0,0,0\n";
        assert!(parse_pois(bad_pop)
            .unwrap_err()
            .message
            .contains("positive"));
    }

    #[test]
    fn parse_trajectories_groups_by_user() {
        let csv = "user,poi_id,timestep\nu1,0,10\nu1,3,20\nu2,5,15\nu2,6,25\nu2,7,35\n";
        let set = parse_trajectories(csv).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.all()[0].len(), 2);
        assert_eq!(set.all()[1].len(), 3);
        assert_eq!(set.all()[1].point(2).t, Timestep(35));
    }

    #[test]
    fn trajectories_roundtrip() {
        let set = TrajectorySet::new(vec![
            Trajectory::from_pairs(&[(0, 10), (3, 20)]),
            Trajectory::from_pairs(&[(5, 15), (6, 25)]),
        ]);
        let text = format_trajectories(&set);
        let again = parse_trajectories(&text).unwrap();
        assert_eq!(set.all(), again.all());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let csv = "user,poi_id,timestep\nu1,0,10\nu1,banana,20\n";
        let e = parse_trajectories(csv).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn interleaved_users_start_new_trajectories() {
        // File order defines grouping; a user reappearing later is a new
        // trajectory (documented behaviour for sorted-by-time logs).
        let csv = "u1,0,10\nu2,1,11\nu1,2,12\n";
        let set = parse_trajectories(csv).unwrap();
        assert_eq!(set.len(), 3);
    }
}

//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The repository only ever serializes (to JSON, through `serde_json`), so
//! [`Serialize`] is a direct JSON writer and [`Deserialize`] a marker trait
//! the derive implements. Swapping back to real serde is a manifest change.

// Lets the generated `impl ::serde::Serialize` paths resolve when the
// derive is used inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Direct-to-JSON serialization. The derive macro generates field-by-field
/// implementations; primitives and containers are implemented here.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn json_write(&self, out: &mut String);
}

/// Marker trait; derived alongside [`Serialize`]. Nothing in this workspace
/// deserializes, so it carries no methods.
pub trait Deserialize {}

/// Escapes and writes a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )+};
}
impl_serialize_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                if self.is_finite() {
                    // `{}` prints the shortest representation that
                    // round-trips; for finite floats that is valid JSON.
                    out.push_str(&format!("{}", self));
                } else {
                    // JSON has no NaN/Infinity; match serde_json's behavior
                    // of refusing — here we degrade to null.
                    out.push_str("null");
                }
            }
        }
    )+};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn json_write(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for char {
    fn json_write(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl Serialize for str {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String) {
        match self {
            Some(v) => v.json_write(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_write(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String) {
        self.as_slice().json_write(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String) {
        self.as_slice().json_write(out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn json_write(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.json_write(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn json_write(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.json_write(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.json_write(&mut s);
        s
    }

    #[test]
    fn primitives_and_containers() {
        assert_eq!(to_json(&3u32), "3");
        assert_eq!(to_json(&-4i64), "-4");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&"a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(to_json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(7u8)), "7");
        assert_eq!(to_json(&Option::<u8>::None), "null");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
    }

    #[derive(super::Serialize, super::Deserialize)]
    struct Named {
        a: u32,
        b: String,
        c: Vec<f64>,
    }

    #[derive(super::Serialize, super::Deserialize)]
    struct Newtype(u32);

    #[derive(super::Serialize, super::Deserialize)]
    struct Pair(u32, String);

    #[derive(super::Serialize, super::Deserialize)]
    enum Mixed {
        Unit,
        One(f64),
        Two(u8, u8),
    }

    #[test]
    fn derived_named_struct() {
        let v = Named {
            a: 1,
            b: "x".into(),
            c: vec![0.5],
        };
        assert_eq!(to_json(&v), r#"{"a":1,"b":"x","c":[0.5]}"#);
    }

    #[test]
    fn derived_tuple_structs() {
        assert_eq!(to_json(&Newtype(9)), "9");
        assert_eq!(to_json(&Pair(9, "y".into())), r#"[9,"y"]"#);
    }

    #[test]
    fn derived_enum_variants() {
        assert_eq!(to_json(&Mixed::Unit), "\"Unit\"");
        assert_eq!(to_json(&Mixed::One(2.5)), r#"{"One":2.5}"#);
        assert_eq!(to_json(&Mixed::Two(1, 2)), r#"{"Two":[1,2]}"#);
    }
}

//! `#[derive(Serialize, Deserialize)]` stand-ins built directly on
//! `proc_macro` (no `syn`/`quote` — the registry is unreachable in this
//! build environment).
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, tuple structs (newtype and general), and enums with
//! unit or tuple variants. Generic types are rejected with a clear error.
//!
//! `Serialize` generates a field-by-field JSON writer; `Deserialize`
//! generates a marker impl (nothing in the workspace deserializes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<(String, usize)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => generate_serialize(&p).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => format!("impl ::serde::Deserialize for {} {{}}", p.name)
            .parse()
            .unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {:?}", other)),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {:?}", other)),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the offline serde_derive stub does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Parsed {
                name,
                shape: Shape::Tuple(count_top_level_items(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Parsed {
                name,
                shape: Shape::Tuple(0),
            }),
            other => Err(format!("unsupported struct body for `{name}`: {:?}", other)),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unsupported enum body for `{name}`: {:?}", other)),
        },
        k => Err(format!("cannot derive for `{k}`")),
    }
}

/// Splits a token stream at top-level commas (angle-bracket depth aware,
/// groups are opaque single tokens so only `<`/`>` need tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                parts.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Skips leading attributes and visibility within one field/variant item;
/// returns the index of the first "real" token.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> usize {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for item in split_top_level(stream) {
        let i = skip_attrs_and_vis(&item);
        match item.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => continue, // trailing comma
            other => return Err(format!("unsupported field item: {:?}", other)),
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    for item in split_top_level(stream) {
        let i = skip_attrs_and_vis(&item);
        let name = match item.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("unsupported variant item: {:?}", other)),
        };
        let arity = match item.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                count_top_level_items(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "the offline serde_derive stub does not support struct variant `{name}`"
                ));
            }
            _ => 0, // unit variant (possibly with `= discriminant`)
        };
        variants.push((name, arity));
    }
    Ok(variants)
}

fn generate_serialize(p: &Parsed) -> String {
    let body = match &p.shape {
        Shape::Named(fields) => {
            let mut b = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::json_write(&self.{f}, out);\n"
                ));
            }
            b.push_str("out.push('}');");
            b
        }
        Shape::Tuple(0) => String::from("out.push_str(\"null\");"),
        Shape::Tuple(1) => String::from("::serde::Serialize::json_write(&self.0, out);"),
        Shape::Tuple(n) => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "::serde::Serialize::json_write(&self.{i}, out);\n"
                ));
            }
            b.push_str("out.push(']');");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (name, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!(
                        "Self::{name} => out.push_str(\"\\\"{name}\\\"\"),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "Self::{name}(f0) => {{ out.push_str(\"{{\\\"{name}\\\":\"); \
                         ::serde::Serialize::json_write(f0, out); out.push('}}'); }}\n"
                    )),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut inner = String::new();
                        for (i, b) in binders.iter().enumerate() {
                            if i > 0 {
                                inner.push_str("out.push(',');");
                            }
                            inner.push_str(&format!("::serde::Serialize::json_write({b}, out);"));
                        }
                        arms.push_str(&format!(
                            "Self::{name}({}) => {{ out.push_str(\"{{\\\"{name}\\\":[\"); \
                             {inner} out.push_str(\"]}}\"); }}\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn json_write(&self, out: &mut ::std::string::String) {{\n{}\n}}\n}}",
        p.name, body
    )
}

//! Offline stand-in for the `crossbeam::thread::scope` API on top of
//! `std::thread::scope` (which did not exist when crossbeam introduced
//! scoped threads, but does now).
//!
//! Semantics difference: if a spawned thread panics, `std::thread::scope`
//! resumes the panic on the owning thread rather than returning `Err` —
//! every caller in this workspace immediately `.expect()`s the result, so
//! the observable behavior (a panic with the worker's payload) is the same.

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so spawned
    /// closures can themselves spawn.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (as in
        /// crossbeam), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = Scope { inner: self.inner };
            self.inner.spawn(move || f(&child))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_borrowed_slots() {
        let mut results: Vec<Option<usize>> = vec![None; 8];
        super::thread::scope(|scope| {
            for (i, chunk) in results.chunks_mut(3).enumerate() {
                scope.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(i * 3 + j);
                    }
                });
            }
        })
        .expect("workers joined");
        let filled: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(filled, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_via_passed_scope() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}

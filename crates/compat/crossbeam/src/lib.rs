//! Offline stand-in for the `crossbeam` API subset this workspace uses:
//! `crossbeam::thread::scope` (on top of `std::thread::scope`) and
//! bounded MPMC `crossbeam::channel`s (on a `Mutex<VecDeque>` + two
//! condvars — far less clever than crossbeam's lock-free ring, but with
//! identical blocking/disconnection semantics for the capacities the
//! ingestion service runs at).
//!
//! Semantics difference in `thread::scope`: if a spawned thread panics,
//! `std::thread::scope` resumes the panic on the owning thread rather
//! than returning `Err` — every caller in this workspace immediately
//! `.expect()`s the result, so the observable behavior (a panic with the
//! worker's payload) is the same.

pub mod channel {
    //! Bounded multi-producer multi-consumer channels with blocking
    //! `send`/`recv`, non-blocking `try_*` variants, and timeouts —
    //! mirroring the `crossbeam-channel` API surface the service uses
    //! for its accept → worker hand-off (the bounded queue is the
    //! backpressure mechanism: a full queue refuses new connections).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded channel holding at most `cap` in-flight items.
    /// Zero-capacity rendezvous channels are not supported (nothing in
    /// this workspace uses them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// The sending half; clonable for multiple producers.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half; clonable for multiple consumers.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// `send` on a channel with no receivers left; carries the item back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why `try_send` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity — the caller should shed load.
        Full(T),
        /// No receivers remain.
        Disconnected(T),
    }

    /// `recv` on a channel that is empty with no senders left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why `try_recv` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty (senders still connected).
        Empty,
        /// Empty and no senders remain.
        Disconnected,
    }

    /// Why `recv_timeout` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No item arrived within the timeout.
        Timeout,
        /// Empty and no senders remain.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake every blocked receiver so it can observe the
                // disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until there is room (backpressure) or every receiver is
        /// gone.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(item));
                }
                if st.queue.len() < self.0.cap {
                    st.queue.push_back(item);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).unwrap();
            }
        }

        /// Non-blocking send: fails fast on a full queue, which is the
        /// accept-loop's signal to shed the connection.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if st.queue.len() >= self.0.cap {
                return Err(TrySendError::Full(item));
            }
            st.queue.push_back(item);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(item) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        /// Like `recv`, bounded by `timeout` — the worker loop's poll
        /// interval for shutdown flags.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(item) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) =
                    self.0.not_empty.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(item) = st.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(item);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Items currently queued (snapshot; racy by nature).
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is momentarily empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so spawned
    /// closures can themselves spawn.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (as in
        /// crossbeam), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = Scope { inner: self.inner };
            self.inner.spawn(move || f(&child))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_channel_passes_items_across_threads() {
        let (tx, rx) = bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        // All senders gone + drained queue → disconnected.
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_reports_backpressure() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<&'static str>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send("late").unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok("late"));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn multi_consumer_workers_share_one_queue() {
        let (tx, rx) = bounded::<usize>(8);
        let counters: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = counters.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn scoped_threads_fill_borrowed_slots() {
        let mut results: Vec<Option<usize>> = vec![None; 8];
        super::thread::scope(|scope| {
            for (i, chunk) in results.chunks_mut(3).enumerate() {
                scope.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(i * 3 + j);
                    }
                });
            }
        })
        .expect("workers joined");
        let filled: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(filled, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_via_passed_scope() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}

//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, a seedable
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream's ChaCha12, but the
//! workspace only relies on *seeded determinism*, which this preserves.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::random`] can produce uniformly.
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
    u128 => next_u64, i128 => next_u64);

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via the widening-multiply method
/// (bias ≤ span/2⁶⁴ — negligible for every span in this workspace).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(span, rng) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(span, rng) as i128) as $t
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )+};
}
impl_sample_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including unsized trait objects via `&mut R`).
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`f64`/`f32` in `[0, 1)`).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    #[inline]
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 exactly as the reference implementation
    /// recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing, as in upstream `rand::seq`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // `&mut R` is `Sized`, so the generic method is callable
                // even when `R` itself is a trait object.
                let j = super::uniform_below(i as u64 + 1, &mut *rng) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_below(self.len() as u64, &mut *rng) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_land_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn range_sampling_respects_bounds_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.random_range(3..=7u32);
            assert!((3..=7).contains(&v));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn trait_object_rng_supports_generic_helpers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let via_reborrow: f64 = (*rng).random();
            via_reborrow
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = draw(dyn_rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle fixing everything is ~impossible"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

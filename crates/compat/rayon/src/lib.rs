//! Offline stand-in for the `rayon` parallel-iterator subset this
//! workspace uses: `par_iter()` / `par_chunks()` with `map` + `collect` /
//! `reduce`, executed on `std::thread::scope` workers over contiguous
//! index segments.
//!
//! Semantics notes (both match how the workspace calls these APIs):
//!
//! * `collect` preserves input order (each worker owns a contiguous
//!   segment; segments are concatenated in order),
//! * `reduce` combines per-worker accumulators in an unspecified grouping,
//!   so the operator must be associative — and, because segment boundaries
//!   depend on the worker count, *commutative* too for results to be
//!   machine-independent. The aggregation counters this workspace reduces
//!   are element-wise `u64` sums, which qualify.

/// Worker count: the machine's available parallelism, at most `jobs`.
fn workers_for(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(jobs).max(1)
}

/// Splits `0..n` into `w` contiguous near-equal segments.
fn segments(n: usize, w: usize) -> Vec<(usize, usize)> {
    let base = n / w;
    let extra = n % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for k in 0..w {
        let len = base + usize::from(k < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Runs `produce(i)` for every `i in 0..n` across worker threads and
/// returns the results in index order.
fn parallel_collect<U, F>(n: usize, produce: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let w = workers_for(n);
    if w <= 1 {
        return (0..n).map(produce).collect();
    }
    let segs = segments(n, w);
    let produce = &produce;
    let mut out: Vec<Vec<U>> = Vec::with_capacity(w);
    std::thread::scope(|scope| {
        let handles: Vec<_> = segs
            .iter()
            .map(|&(a, b)| scope.spawn(move || (a..b).map(produce).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Runs `produce(i)` for every `i in 0..n` across worker threads, folding
/// each worker's results with `op` from `identity()`, then folding the
/// per-worker accumulators.
fn parallel_reduce<U, F, ID, OP>(n: usize, produce: F, identity: ID, op: OP) -> U
where
    U: Send,
    F: Fn(usize) -> U + Sync,
    ID: Fn() -> U + Sync,
    OP: Fn(U, U) -> U + Sync,
{
    let w = workers_for(n);
    if w <= 1 {
        return (0..n).map(produce).fold(identity(), &op);
    }
    let segs = segments(n, w);
    let produce = &produce;
    let identity = &identity;
    let op = &op;
    let mut accs: Vec<U> = Vec::with_capacity(w);
    std::thread::scope(|scope| {
        let handles: Vec<_> = segs
            .iter()
            .map(|&(a, b)| scope.spawn(move || (a..b).map(produce).fold(identity(), op)))
            .collect();
        for h in handles {
            accs.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    accs.into_iter().fold(identity(), op)
}

/// Extension methods on slices (reachable from `Vec` through deref).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks (last may be shorter).
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;

    /// Parallel iterator over elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { data: self, size }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

pub struct ParChunks<'a, T> {
    data: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
    {
        ParChunksMap {
            data: self.data,
            size: self.size,
            f,
        }
    }

    pub fn count(self) -> usize {
        self.data.chunks(self.size).count()
    }
}

pub struct ParChunksMap<'a, T, F> {
    data: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T: Sync, F> ParChunksMap<'a, T, F> {
    fn chunk(&self, i: usize) -> &'a [T] {
        let a = i * self.size;
        let b = (a + self.size).min(self.data.len());
        &self.data[a..b]
    }

    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.size)
    }

    pub fn reduce<U, ID, OP>(self, identity: ID, op: OP) -> U
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        let n = self.num_chunks();
        parallel_reduce(n, |i| (self.f)(self.chunk(i)), identity, op)
    }

    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a [T]) -> U + Sync,
        C: FromIterator<U>,
    {
        let n = self.num_chunks();
        parallel_collect(n, |i| (self.f)(self.chunk(i)))
            .into_iter()
            .collect()
    }
}

pub struct ParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParIterMap { data: self.data, f }
    }
}

pub struct ParIterMap<'a, T, F> {
    data: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParIterMap<'a, T, F> {
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromIterator<U>,
    {
        parallel_collect(self.data.len(), |i| (self.f)(&self.data[i]))
            .into_iter()
            .collect()
    }

    pub fn reduce<U, ID, OP>(self, identity: ID, op: OP) -> U
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        parallel_reduce(self.data.len(), |i| (self.f)(&self.data[i]), identity, op)
    }
}

/// Runs `body(i, &mut items[i])` for every element across worker
/// threads. `items` is consumed as pre-split exclusive borrows, so the
/// closure only needs `Sync`.
fn parallel_for_each_mut<T, F>(items: Vec<&mut T>, body: F)
where
    T: ?Sized + Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let w = workers_for(n);
    if w <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            body(i, item);
        }
        return;
    }
    let segs = segments(n, w);
    let body = &body;
    let mut items = items;
    std::thread::scope(|scope| {
        // Peel workers off the back so indices stay aligned with `segs`.
        for &(a, _) in segs.iter().rev() {
            let tail: Vec<&mut T> = items.drain(a..).collect();
            scope.spawn(move || {
                for (off, item) in tail.into_iter().enumerate() {
                    body(a + off, item);
                }
            });
        }
    });
}

/// Mutable extension methods on slices (the subset of rayon's
/// `ParallelSliceMut` this workspace uses).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `size`-element mutable chunks (last may be
    /// shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;

    /// Parallel iterator over mutable elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { data: self, size }
    }

    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self }
    }
}

pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Matches rayon's `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            data: self.data,
            size: self.size,
        }
    }

    /// Runs `body` on every chunk across worker threads.
    pub fn for_each<F>(self, body: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| body(chunk));
    }
}

pub struct EnumerateChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Runs `body((chunk_index, chunk))` on every chunk across workers.
    pub fn for_each<F>(self, body: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<&mut [T]> = self.data.chunks_mut(self.size).collect();
        parallel_for_each_mut(chunks, |i, chunk| body((i, chunk)));
    }
}

pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Matches rayon's `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> EnumerateIterMut<'a, T> {
        EnumerateIterMut { data: self.data }
    }

    /// Runs `body` on every element across worker threads.
    pub fn for_each<F>(self, body: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, item)| body(item));
    }
}

pub struct EnumerateIterMut<'a, T> {
    data: &'a mut [T],
}

impl<T: Send> EnumerateIterMut<'_, T> {
    /// Runs `body((index, &mut element))` on every element across workers.
    pub fn for_each<F>(self, body: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let items: Vec<&mut T> = self.data.iter_mut().collect();
        parallel_for_each_mut(items, |i, item| body((i, item)));
    }
}

pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_reduce_sums_like_serial() {
        let data: Vec<u64> = (0..10_000).collect();
        let serial: u64 = data.iter().sum();
        let parallel = data
            .par_chunks(97)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn par_iter_collect_preserves_order() {
        let data: Vec<u32> = (0..5000).collect();
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 5000);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u32);
        }
    }

    #[test]
    fn vectorwise_merge_reduce() {
        // The aggregation-counter shape: element-wise u64 vector sums.
        let reports: Vec<usize> = (0..1000).map(|i| i % 7).collect();
        let hist = reports
            .par_chunks(64)
            .map(|chunk| {
                let mut h = vec![0u64; 7];
                for &r in chunk {
                    h[r] += 1;
                }
                h
            })
            .reduce(
                || vec![0u64; 7],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(hist.iter().sum::<u64>(), 1000);
        assert_eq!(hist[0], 143);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_every_chunk() {
        let mut data = vec![0u64; 10_000];
        data.par_chunks_mut(97).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 97 + j) as u64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
        // Plain for_each, and the ragged last chunk.
        let mut ragged = vec![1u64; 101];
        ragged.par_chunks_mut(10).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v *= 3;
            }
        });
        assert!(ragged.iter().all(|&v| v == 3));
    }

    #[test]
    fn par_iter_mut_enumerate_indices_align() {
        let mut data = vec![0u32; 4999];
        data.par_iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as u32 * 2);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 2 * i as u32);
        }
        let mut empty: Vec<u32> = Vec::new();
        empty.par_iter_mut().for_each(|v| *v = 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_input_yields_identity() {
        let data: Vec<u64> = Vec::new();
        let r = data
            .par_chunks(8)
            .map(|c| c.len() as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 0);
        let v: Vec<u64> = data.par_iter().map(|&x| x).collect();
        assert!(v.is_empty());
    }
}

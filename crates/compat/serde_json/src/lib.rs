//! Offline stand-in for the `serde_json` functions this workspace calls:
//! [`to_string`], [`to_string_pretty`], [`to_writer_pretty`].
//!
//! Pretty-printing re-indents the compact encoding produced by the `serde`
//! stub's JSON writer; strings are escaped by that writer, so the
//! re-indenter only needs to track "inside string literal" state.

use serde::Serialize;
use std::fmt;

/// Serialization error (I/O failures when writing; encoding itself cannot
/// fail for the types this workspace serializes).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.json_write(&mut s);
    Ok(s)
}

/// Pretty JSON encoding (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Writes pretty JSON to `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))?;
    writer.flush().map_err(|e| Error(e.to_string()))
}

fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if matches!(chars.peek(), Some('}') | Some(']')) {
                    out.push(chars.next().unwrap());
                } else {
                    depth += 1;
                    newline(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Serialize)]
    struct Demo {
        id: String,
        rows: Vec<Vec<String>>,
        n: u32,
    }

    #[test]
    fn compact_then_pretty() {
        let d = Demo {
            id: "x{y}".into(),
            rows: vec![vec!["a".into(), "b".into()]],
            n: 2,
        };
        let compact = to_string(&d).unwrap();
        assert_eq!(compact, r#"{"id":"x{y}","rows":[["a","b"]],"n":2}"#);
        let pretty = to_string_pretty(&d).unwrap();
        assert!(pretty.contains("\"id\": \"x{y}\""));
        assert!(pretty.lines().count() > 3, "{pretty}");
    }

    #[test]
    fn writer_roundtrip() {
        let d = Demo {
            id: "t".into(),
            rows: vec![],
            n: 0,
        };
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &d).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"rows\": []"));
    }
}

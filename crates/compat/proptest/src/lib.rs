//! Offline stand-in for the `proptest!` macro subset this workspace uses.
//!
//! Instead of random sampling with shrinking, strategies are swept
//! *deterministically*: `cases` evenly spaced values across the range
//! (always including both endpoints' neighborhood). For the small case
//! counts used in this repository that is a strictly more reproducible
//! check than upstream's randomized search.

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

/// A deterministic value source: the `i`-th of `cases` evenly spaced
/// values.
pub trait Strategy {
    type Value;
    fn value_at(&self, index: u64, cases: u64) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn value_at(&self, index: u64, cases: u64) -> O {
        (self.f)(self.source.value_at(index, cases))
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt : $salt:literal),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn value_at(&self, index: u64, cases: u64) -> Self::Value {
                // Decorrelate the components so tuples don't sweep in
                // lockstep (which would only ever explore the diagonal).
                ($(self.$idx.value_at(
                    if $salt == 0 { index } else { mix_index(index, $salt) % cases.max(1) },
                    cases,
                ),)+)
            }
        }
    )+};
}
impl_strategy_tuple! {
    (A: 0: 0u64, B: 1: 11u64)
    (A: 0: 0u64, B: 1: 11u64, C: 2: 23u64)
    (A: 0: 0u64, B: 1: 11u64, C: 2: 23u64, D: 3: 37u64)
}

pub mod collection {
    use super::{mix_index, Strategy};

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `len` (upstream's `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn value_at(&self, index: u64, cases: u64) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (mix_index(index, 5) % span) as usize;
            (0..n)
                .map(|i| {
                    self.element
                        .value_at(mix_index(index, 100 + i as u64) % cases.max(1), cases)
                })
                .collect()
        }
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn value_at(&self, index: u64, cases: u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = if cases <= 1 {
                    0
                } else {
                    span * index as u128 / cases as u128
                };
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn value_at(&self, index: u64, cases: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = if cases <= 1 { 0 } else { span * index as u128 / cases as u128 };
                (lo as i128 + offset as i128) as $t
            }
        }
    )+};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn value_at(&self, index: u64, cases: u64) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let frac = if cases <= 1 {
            0.0
        } else {
            index as f64 / cases as f64
        };
        self.start + (self.end - self.start) * frac
    }
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition fails (the expansion sits
/// inside the per-case loop, so `continue` moves to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// The `proptest! { ... }` block: supports an optional
/// `#![proptest_config(..)]` header followed by any number of
/// `fn name(arg in strategy) { .. }` items (attributes like `#[test]`
/// pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Deterministic decorrelation of (case index, argument slot) → sweep
/// index, so multi-argument blocks don't walk all arguments in lockstep.
#[doc(hidden)]
pub fn mix_index(index: u64, slot: u64) -> u64 {
    let mut z = index
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(slot.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = __cfg.cases as u64;
            for __index in 0..__cases {
                let mut __slot = 0u64;
                $(
                    let $arg = {
                        __slot += 1;
                        // First argument sweeps the range evenly; later
                        // arguments are decorrelated through mix_index.
                        let __j = if __slot == 1 {
                            __index
                        } else {
                            $crate::mix_index(__index, __slot) % __cases
                        };
                        $crate::Strategy::value_at(&$strategy, __j, __cases)
                    };
                )+
                let _ = __slot;
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn sweep_covers_range(seed in 0u64..500) {
            prop_assert!(seed < 500);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in 1u32..=8) {
            prop_assert!((1..=8).contains(&v));
            prop_assert_eq!(v, v);
        }
    }

    #[test]
    fn strategy_spacing_touches_start() {
        let s = 0u64..500;
        assert_eq!(s.value_at(0, 10), 0);
        assert!(s.value_at(9, 10) >= 400);
    }
}

//! Offline stand-in for the `criterion` API subset this workspace uses.
//!
//! It is a real (if minimal) wall-clock harness: each benchmark is warmed
//! up once, then timed over an adaptive number of iterations, and a
//! `name/id: mean ± spread` line is printed. Two environment knobs:
//!
//! * `QUICK_BENCH=1` — single measured iteration per benchmark (CI smoke),
//! * `BENCH_MEASURE_MS` — target measurement window (default 300 ms).

use std::time::{Duration, Instant};

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measure: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("BENCH_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        let quick = std::env::var("QUICK_BENCH")
            .map(|v| v == "1")
            .unwrap_or(false);
        Criterion {
            measure: Duration::from_millis(ms),
            quick,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self.measure, self.quick, 20, &mut f);
        stats.report(name);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let stats = run_bench(
            self.criterion.measure,
            self.criterion.quick,
            self.sample_size,
            &mut f,
        );
        stats.report(&format!("{}/{}", self.name, id.label));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = run_bench(
            self.criterion.measure,
            self.criterion.quick,
            self.sample_size,
            &mut |b| f(b, input),
        );
        stats.report(&format!("{}/{}", self.name, id.label));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units-processed-per-iteration hint (accepted, not reported).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.samples
            .push(t0.elapsed() / self.iters_per_sample as u32);
    }
}

struct Stats {
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
}

impl Stats {
    fn report(&self, label: &str) {
        println!(
            "bench {label}: mean {:?} (min {:?}, max {:?}, n={})",
            self.mean, self.min, self.max, self.samples
        );
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    measure: Duration,
    quick: bool,
    samples: usize,
    f: &mut F,
) -> Stats {
    // Warm-up + calibration sample.
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    let per_iter = b.samples.last().copied().unwrap_or(Duration::from_nanos(1));

    let samples = if quick { 1 } else { samples };
    let budget_per_sample = measure.max(Duration::from_millis(1)) / samples.max(1) as u32;
    let iters = if quick {
        1
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    Stats {
        mean: total / n as u32,
        min: b.samples.iter().min().copied().unwrap_or_default(),
        max: b.samples.iter().max().copied().unwrap_or_default(),
        samples: n,
    }
}

/// Mirrors `criterion::black_box` (re-exported std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Builds a function that runs the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Builds `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_benches_run() {
        std::env::set_var("QUICK_BENCH", "1");
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &v| {
            b.iter(|| v * 2)
        });
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 2 * 2));
        g.finish();
    }
}

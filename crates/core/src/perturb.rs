//! Overlapping n-gram perturbation (§5.4).
//!
//! The trajectory's region sequence is perturbed window by window: main
//! windows of length `n` (Eq. 6) plus supplementary windows of lengths
//! `1..n` at both ends so every position is covered exactly `n` times
//! (Figure 3). Each window is one Exponential Mechanism draw with budget
//! ε′ = ε/(|τ|+n−1); sequential composition gives ε-LDP (Theorem 5.3).
//!
//! Sampling exploits the separability of the n-gram weight
//! `exp(−ε′ d_w / 2Δ) = Π_k exp(−ε′ d(τ_k, w_k) / 2Δ)`: bigrams are drawn
//! in two exact stages (tail by marginal, head conditionally) in
//! `O(|W₂| adjacency)` instead of `O(|R|²)`, and trigrams via the middle-
//! element marginal.

use crate::region::RegionId;
use crate::regiongraph::RegionGraph;
use rand::Rng;
use trajshare_mech::sample_from_weights;

/// An inclusive index window `τ(a, b)` into the trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    pub a: usize,
    pub b: usize,
}

impl Window {
    /// Window length `b - a + 1`.
    #[inline]
    pub fn len(&self) -> usize {
        self.b - self.a + 1
    }

    /// Windows are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the window covers trajectory position `i`.
    #[inline]
    pub fn covers(&self, i: usize) -> bool {
        (self.a..=self.b).contains(&i)
    }
}

/// One perturbed n-gram `z(a, b) ∈ Z`.
#[derive(Debug, Clone)]
pub struct PerturbedWindow {
    pub window: Window,
    pub regions: Vec<RegionId>,
}

/// Generates the main + supplementary window schedule for a trajectory of
/// length `len` and n-gram size `n` (clamped to `len`).
///
/// Main windows: `(a, a+n-1)` for `a ∈ 0..=len-n`. Supplementary windows
/// (when `n ≥ 2`): `(0, k-1)` and `(len-k, len-1)` for `k ∈ 1..n`. Total:
/// `len + n - 1` windows, and every position is covered exactly `n` times.
pub fn window_schedule(len: usize, n: usize) -> Vec<Window> {
    assert!(len >= 1 && n >= 1);
    let n = n.min(len);
    let mut out = Vec::with_capacity(len + n - 1);
    for a in 0..=(len - n) {
        out.push(Window { a, b: a + n - 1 });
    }
    for k in 1..n {
        out.push(Window { a: 0, b: k - 1 });
        out.push(Window {
            a: len - k,
            b: len - 1,
        });
    }
    out
}

/// Samples the perturbed n-gram for one window via the EM.
///
/// `truth` is the true region fragment for the window (`window.len()`
/// entries); `eps_prime` the per-window budget. The sensitivity is
/// `window.len() × Δd` per Eq. 16.
pub fn sample_window<R: Rng + ?Sized>(
    graph: &RegionGraph,
    truth: &[RegionId],
    eps_prime: f64,
    rng: &mut R,
) -> Vec<RegionId> {
    debug_assert!(!truth.is_empty() && truth.len() <= 3);
    let k = truth.len();
    let sens = graph.distance.ngram_sensitivity(k);
    let scale = eps_prime / (2.0 * sens);
    let nr = graph.num_regions();

    // Per-element weights exp(-scale * d(truth_i, r)); exponents are in
    // [-eps'/2k, 0], so plain exp is safe.
    let elem_weights = |t: RegionId| -> Vec<f64> {
        (0..nr as u32)
            .map(|r| (-scale * graph.distance.get(t, RegionId(r))).exp())
            .collect()
    };

    match k {
        1 => {
            let w = elem_weights(truth[0]);
            let idx = sample_from_weights(&w, rng).expect("W1 is never empty");
            vec![RegionId(idx as u32)]
        }
        2 => {
            let wa = elem_weights(truth[0]);
            let wb = elem_weights(truth[1]);
            // Marginal over tails: A[u] * sum_{v in succ(u)} B[v].
            let marginal: Vec<f64> = (0..nr)
                .map(|u| {
                    let s: f64 = graph
                        .successors(RegionId(u as u32))
                        .iter()
                        .map(|&v| wb[v as usize])
                        .sum();
                    wa[u] * s
                })
                .collect();
            match sample_from_weights(&marginal, rng) {
                Some(u) => {
                    let succ = graph.successors(RegionId(u as u32));
                    let cond: Vec<f64> = succ.iter().map(|&v| wb[v as usize]).collect();
                    let vi = sample_from_weights(&cond, rng).expect("non-empty successor set");
                    vec![RegionId(u as u32), RegionId(succ[vi])]
                }
                // No feasible bigram at all: fall back to the product space
                // W1 × W1 (still an exact EM over that space — §5.4's
                // mechanism with an unconstrained candidate set).
                None => truth
                    .iter()
                    .map(|&t| {
                        let w = elem_weights(t);
                        RegionId(sample_from_weights(&w, rng).expect("W1 non-empty") as u32)
                    })
                    .collect(),
            }
        }
        3 => {
            let wa = elem_weights(truth[0]);
            let wb = elem_weights(truth[1]);
            let wc = elem_weights(truth[2]);
            // Marginal over middles: B[y] * sum_pred A * sum_succ C.
            let pred_sum: Vec<f64> = (0..nr)
                .map(|y| {
                    graph
                        .predecessors(RegionId(y as u32))
                        .iter()
                        .map(|&x| wa[x as usize])
                        .sum()
                })
                .collect();
            let succ_sum: Vec<f64> = (0..nr)
                .map(|y| {
                    graph
                        .successors(RegionId(y as u32))
                        .iter()
                        .map(|&z| wc[z as usize])
                        .sum()
                })
                .collect();
            let marginal: Vec<f64> = (0..nr).map(|y| wb[y] * pred_sum[y] * succ_sum[y]).collect();
            match sample_from_weights(&marginal, rng) {
                Some(y) => {
                    let preds = graph.predecessors(RegionId(y as u32));
                    let succs = graph.successors(RegionId(y as u32));
                    let wx: Vec<f64> = preds.iter().map(|&x| wa[x as usize]).collect();
                    let wz: Vec<f64> = succs.iter().map(|&z| wc[z as usize]).collect();
                    let xi = sample_from_weights(&wx, rng).expect("non-empty preds");
                    let zi = sample_from_weights(&wz, rng).expect("non-empty succs");
                    vec![RegionId(preds[xi]), RegionId(y as u32), RegionId(succs[zi])]
                }
                None => truth
                    .iter()
                    .map(|&t| {
                        let w = elem_weights(t);
                        RegionId(sample_from_weights(&w, rng).expect("W1 non-empty") as u32)
                    })
                    .collect(),
            }
        }
        _ => unreachable!("n is validated to be 1..=3"),
    }
}

/// Runs the full §5.4 perturbation: every scheduled window is perturbed
/// with budget `eps_prime`, producing the multiset `Z`.
pub fn perturb_region_sequence<R: Rng + ?Sized>(
    graph: &RegionGraph,
    region_seq: &[RegionId],
    n: usize,
    eps_prime: f64,
    rng: &mut R,
) -> Vec<PerturbedWindow> {
    window_schedule(region_seq.len(), n)
        .into_iter()
        .map(|w| {
            let truth = &region_seq[w.a..=w.b];
            let regions = sample_window(graph, truth, eps_prime, rng);
            PerturbedWindow { window: w, regions }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Dataset, Poi, PoiId, TimeDomain};

    fn graph() -> (Dataset, crate::region::RegionSet, RegionGraph) {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..60)
            .map(|i| {
                let loc = origin.offset_m((i % 6) as f64 * 400.0, (i / 6) as f64 * 400.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        let ds = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        let rs = decompose(&ds, &MechanismConfig::default());
        let g = RegionGraph::build(&ds, &rs);
        (ds, rs, g)
    }

    #[test]
    fn schedule_counts_match_theorem_53() {
        // |τ| + n - 1 windows for any (len, n).
        for len in 2..8 {
            for n in 1..=3.min(len) {
                let ws = window_schedule(len, n);
                assert_eq!(ws.len(), len + n - 1, "len={len} n={n}");
                // Each position covered exactly n times.
                for i in 0..len {
                    let c = ws.iter().filter(|w| w.covers(i)).count();
                    assert_eq!(c, n, "len={len} n={n} position {i}");
                }
            }
        }
    }

    #[test]
    fn schedule_example_from_figure_3() {
        // |τ| = 4, n = 2: main z(1,2), z(2,3), z(3,4); supplementary z(1,1),
        // z(4,4) — in 0-based indexing.
        let ws = window_schedule(4, 2);
        assert_eq!(ws.len(), 5);
        assert!(ws.contains(&Window { a: 0, b: 1 }));
        assert!(ws.contains(&Window { a: 1, b: 2 }));
        assert!(ws.contains(&Window { a: 2, b: 3 }));
        assert!(ws.contains(&Window { a: 0, b: 0 }));
        assert!(ws.contains(&Window { a: 3, b: 3 }));
    }

    #[test]
    fn unigram_sampling_prefers_truth_at_high_epsilon() {
        let (_, rs, g) = graph();
        let truth = RegionId(rs.len() as u32 / 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        for _ in 0..300 {
            let s = sample_window(&g, &[truth], 80.0, &mut rng);
            if s[0] == truth {
                hits += 1;
            }
        }
        assert!(
            hits > 250,
            "high-ε unigram should usually return truth, got {hits}"
        );
    }

    #[test]
    fn bigram_sampling_returns_feasible_bigrams() {
        let (_, _, g) = graph();
        let &(a, b) = g.bigrams.first().expect("bigrams exist");
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = sample_window(&g, &[RegionId(a), RegionId(b)], 5.0, &mut rng);
            assert_eq!(s.len(), 2);
            assert!(g.is_feasible(s[0], s[1]), "sampled infeasible bigram {s:?}");
        }
    }

    #[test]
    fn trigram_sampling_returns_chained_bigrams() {
        let (_, _, g) = graph();
        // Find a feasible trigram seed.
        let &(a, b) = g
            .bigrams
            .iter()
            .find(|&&(_, b)| !g.successors(RegionId(b)).is_empty())
            .unwrap();
        let c = g.successors(RegionId(b))[0];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = sample_window(&g, &[RegionId(a), RegionId(b), RegionId(c)], 5.0, &mut rng);
            assert_eq!(s.len(), 3);
            assert!(g.is_feasible(s[0], s[1]));
            assert!(g.is_feasible(s[1], s[2]));
        }
    }

    #[test]
    fn bigram_distribution_matches_exponential_mechanism() {
        // Brute-force the EM distribution over W2 and compare frequencies.
        let (_, _, g) = graph();
        let &(ta, tb) = &g.bigrams[g.bigrams.len() / 3];
        let truth = [RegionId(ta), RegionId(tb)];
        let eps = 2.0;
        let sens = g.distance.ngram_sensitivity(2);
        let weights: Vec<f64> = g
            .bigrams
            .iter()
            .map(|&(u, v)| {
                let d =
                    g.distance.get(truth[0], RegionId(u)) + g.distance.get(truth[1], RegionId(v));
                (-eps * d / (2.0 * sens)).exp()
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 30_000;
        let mut counts = vec![0usize; g.bigrams.len()];
        use std::collections::HashMap;
        let index: HashMap<(u32, u32), usize> = g
            .bigrams
            .iter()
            .copied()
            .enumerate()
            .map(|(i, e)| (e, i))
            .collect();
        for _ in 0..trials {
            let s = sample_window(&g, &truth, eps, &mut rng);
            counts[index[&(s[0].0, s[1].0)]] += 1;
        }
        // Check the 5 most likely bigrams within tolerance.
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&i, &j| weights[j].partial_cmp(&weights[i]).unwrap());
        for &i in order.iter().take(5) {
            let expect = weights[i] / total;
            let got = counts[i] as f64 / trials as f64;
            assert!(
                (got - expect).abs() < 0.02,
                "bigram {i}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn perturb_sequence_produces_full_z() {
        let (ds, rs, g) = graph();
        let traj = trajshare_model::Trajectory::from_pairs(&[(0, 60), (7, 62), (14, 65), (21, 68)]);
        let seq = rs.encode(&ds, &traj).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let z = perturb_region_sequence(&g, &seq, 2, 1.0, &mut rng);
        assert_eq!(z.len(), seq.len() + 1); // |τ| + n - 1
        for pw in &z {
            assert_eq!(pw.regions.len(), pw.window.len());
        }
    }
}

//! Feasible n-gram sets over STC regions (§5.3, "n-gram Set Formation").
//!
//! A region bigram `(r_a, r_b)` belongs to `W₂` when it is *temporally
//! ordered* (some timestep in `r_b`'s interval strictly follows some
//! timestep in `r_a`'s) and *reachable*: at least one POI pair
//! `(p ∈ r_a, q ∈ r_b)` satisfies Definition 4.1 for the largest gap the two
//! intervals allow. Exact min-pair distances are used for small regions; a
//! centroid−radii lower bound (never under-approximating feasibility) is
//! used for large ones so that `W₂` construction stays `O(|R|²)`.
//!
//! Larger n-grams are represented implicitly through the bigram adjacency
//! (a trigram is feasible iff both of its bigrams are), which is what the
//! perturbation sampler exploits.

use crate::distances::RegionDistance;
use crate::region::{RegionId, RegionSet};
use trajshare_model::{Dataset, ReachabilityOracle};

/// Above this member-count product, min-pair distances fall back to the
/// centroid−radii bound.
const EXACT_PAIR_LIMIT: usize = 4096;

/// The region-level n-gram universe: distances, bigram list, adjacency.
#[derive(Debug, Clone)]
pub struct RegionGraph {
    /// Combined distance matrix and sensitivity source.
    pub distance: RegionDistance,
    /// All feasible bigrams `W₂` as `(tail, head)` region indices.
    pub bigrams: Vec<(u32, u32)>,
    /// CSR-style successor lists: `successors(r)` = feasible heads.
    succ: Vec<Vec<u32>>,
    /// CSR-style predecessor lists.
    pred: Vec<Vec<u32>>,
}

impl RegionGraph {
    /// Builds `W₂` for the region set.
    pub fn build(dataset: &Dataset, regions: &RegionSet) -> Self {
        let distance = RegionDistance::build(dataset, regions);
        let n = regions.len();
        let oracle = ReachabilityOracle::new(dataset);
        let gt = dataset.time.gt_minutes();

        let mut bigrams = Vec::new();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for a in 0..n {
            let ra = regions.get(RegionId(a as u32));
            for b in 0..n {
                let rb = regions.get(RegionId(b as u32));
                // Temporal order: need t_b >= t_a + g_t with t_a in
                // [start_a, end_a - g_t], t_b in [start_b, end_b - g_t].
                let latest_b = rb.time.end_min as i64 - gt as i64;
                let earliest_a = ra.time.start_min as i64;
                let max_gap_min = latest_b - earliest_a;
                if max_gap_min < gt as i64 {
                    continue;
                }
                // Reachability for the most permissive gap.
                let theta = oracle.threshold_m(max_gap_min as f64);
                if !regions_reachable(dataset, ra, rb, theta) {
                    continue;
                }
                bigrams.push((a as u32, b as u32));
                succ[a].push(b as u32);
                pred[b].push(a as u32);
            }
        }
        Self {
            distance,
            bigrams,
            succ,
            pred,
        }
    }

    /// Rebuilds a graph from its serialized parts (the region-graph
    /// codec, [`crate::graphcodec`]): a distance matrix plus the `W₂`
    /// bigram list, from which the adjacency lists are re-derived. Every
    /// bigram index must be within the distance matrix's universe.
    pub fn from_parts(distance: RegionDistance, bigrams: Vec<(u32, u32)>) -> Self {
        let n = distance.len();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for &(a, b) in &bigrams {
            assert!((a as usize) < n && (b as usize) < n, "bigram out of range");
            succ[a as usize].push(b);
            pred[b as usize].push(a);
        }
        Self {
            distance,
            bigrams,
            succ,
            pred,
        }
    }

    /// Number of regions.
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.distance.len()
    }

    /// `|W₂|`.
    #[inline]
    pub fn num_bigrams(&self) -> usize {
        self.bigrams.len()
    }

    /// Feasible successor regions of `r`.
    #[inline]
    pub fn successors(&self, r: RegionId) -> &[u32] {
        &self.succ[r.index()]
    }

    /// Feasible predecessor regions of `r`.
    #[inline]
    pub fn predecessors(&self, r: RegionId) -> &[u32] {
        &self.pred[r.index()]
    }

    /// Whether `(a, b)` is a feasible bigram.
    pub fn is_feasible(&self, a: RegionId, b: RegionId) -> bool {
        self.succ[a.index()].contains(&(b.0))
    }

    /// Exports the successor adjacency (`W₂` rows = tails) in CSR form:
    /// `(row_ptr, cols)` with `cols[row_ptr[r]..row_ptr[r + 1]]` the
    /// feasible heads of region `r`. This is the zero-copy-friendly shape
    /// sparse estimation kernels consume
    /// (`trajshare_aggregate::linalg::CsrPattern`).
    pub fn successor_csr(&self) -> (Vec<usize>, Vec<u32>) {
        Self::adjacency_csr(&self.succ)
    }

    /// Exports the predecessor adjacency (`W₂` rows = heads) in CSR form —
    /// the transpose of [`RegionGraph::successor_csr`].
    pub fn predecessor_csr(&self) -> (Vec<usize>, Vec<u32>) {
        Self::adjacency_csr(&self.pred)
    }

    fn adjacency_csr(rows: &[Vec<u32>]) -> (Vec<usize>, Vec<u32>) {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut cols = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        row_ptr.push(0);
        for r in rows {
            cols.extend_from_slice(r);
            row_ptr.push(cols.len());
        }
        (row_ptr, cols)
    }
}

/// Whether any POI pair across the two regions is within `theta` meters.
///
/// Fast path: the centroid−radii lower bound
/// `min_pair ≥ d(c_a, c_b) − rad_a − rad_b`; when that bound already
/// certifies feasibility (or the exact scan is affordable) we answer
/// exactly, otherwise we accept — a permissive approximation that can only
/// *add* n-grams (never removes a genuinely feasible one), preserving the
/// mechanism's correctness.
fn regions_reachable(
    dataset: &Dataset,
    ra: &crate::region::StcRegion,
    rb: &crate::region::StcRegion,
    theta: f64,
) -> bool {
    if theta.is_infinite() {
        return true;
    }
    let centroid_d = ra.centroid.distance_m(&rb.centroid, dataset.metric);
    // Lower bound on the min pair distance.
    let lower = (centroid_d - ra.radius_m - rb.radius_m).max(0.0);
    if lower > theta {
        return false;
    }
    // Upper bound: if even the centroids are within theta the regions
    // certainly contain a pair within theta of each other only when radii
    // are zero; to be exact, scan when affordable.
    if ra.len() * rb.len() <= EXACT_PAIR_LIMIT {
        for &p in &ra.members {
            let lp = dataset.pois.get(p).location;
            for &q in &rb.members {
                if lp.distance_m(&dataset.pois.get(q).location, dataset.metric) <= theta {
                    return true;
                }
            }
        }
        false
    } else {
        // Large regions: accept on the (satisfied) lower bound.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain};

    fn dataset(speed: Option<f64>) -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..80)
            .map(|i| {
                let loc = origin.offset_m((i % 8) as f64 * 500.0, (i / 8) as f64 * 500.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            speed,
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn unlimited_speed_gives_all_time_ordered_pairs() {
        let ds = dataset(None);
        let rs = decompose(&ds, &MechanismConfig::default());
        let g = RegionGraph::build(&ds, &rs);
        // Every pair that is temporally orderable must be present.
        let gt = ds.time.gt_minutes() as i64;
        let mut expected = 0usize;
        for a in rs.ids() {
            for b in rs.ids() {
                let (ta, tb) = (rs.get(a).time, rs.get(b).time);
                if tb.end_min as i64 - gt - ta.start_min as i64 >= gt {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.num_bigrams(), expected);
    }

    #[test]
    fn slow_speed_prunes_bigrams() {
        let ds_fast = dataset(Some(100.0));
        let ds_slow = dataset(Some(0.5));
        // Skip merging so regions stay spatially localized — merged 1×1
        // regions span the whole campus and are trivially inter-reachable.
        let mut cfg = MechanismConfig::default();
        cfg.merge_order.clear();
        cfg.kappa = 1;
        let rs_fast = decompose(&ds_fast, &cfg);
        let rs_slow = decompose(&ds_slow, &cfg);
        let g_fast = RegionGraph::build(&ds_fast, &rs_fast);
        let g_slow = RegionGraph::build(&ds_slow, &rs_slow);
        assert!(
            g_slow.num_bigrams() < g_fast.num_bigrams(),
            "slow {} vs fast {}",
            g_slow.num_bigrams(),
            g_fast.num_bigrams()
        );
    }

    #[test]
    fn adjacency_matches_bigram_list() {
        let ds = dataset(Some(8.0));
        let rs = decompose(&ds, &MechanismConfig::default());
        let g = RegionGraph::build(&ds, &rs);
        let total: usize = rs.ids().map(|r| g.successors(r).len()).sum();
        assert_eq!(total, g.num_bigrams());
        let total_pred: usize = rs.ids().map(|r| g.predecessors(r).len()).sum();
        assert_eq!(total_pred, g.num_bigrams());
        for &(a, b) in &g.bigrams {
            assert!(g.is_feasible(RegionId(a), RegionId(b)));
            assert!(g.successors(RegionId(a)).contains(&b));
            assert!(g.predecessors(RegionId(b)).contains(&a));
        }
    }

    #[test]
    fn csr_exports_match_adjacency_lists() {
        let ds = dataset(Some(8.0));
        let rs = decompose(&ds, &MechanismConfig::default());
        let g = RegionGraph::build(&ds, &rs);
        let n = g.num_regions();
        let (srow, scols) = g.successor_csr();
        assert_eq!(srow.len(), n + 1);
        assert_eq!(srow[0], 0);
        assert_eq!(*srow.last().unwrap(), g.num_bigrams());
        assert_eq!(scols.len(), g.num_bigrams());
        for r in rs.ids() {
            assert_eq!(
                &scols[srow[r.index()]..srow[r.index() + 1]],
                g.successors(r)
            );
        }
        // The predecessor export is the successor export's transpose.
        let (prow, pcols) = g.predecessor_csr();
        assert_eq!(pcols.len(), g.num_bigrams());
        let mut transposed: Vec<Vec<u32>> = vec![Vec::new(); n];
        for a in 0..n {
            for &b in &scols[srow[a]..srow[a + 1]] {
                transposed[b as usize].push(a as u32);
            }
        }
        for b in 0..n {
            assert_eq!(&pcols[prow[b]..prow[b + 1]], &transposed[b]);
        }
    }

    #[test]
    fn no_backwards_time_bigrams() {
        let ds = dataset(Some(8.0));
        let rs = decompose(&ds, &MechanismConfig::default());
        let g = RegionGraph::build(&ds, &rs);
        let gt = ds.time.gt_minutes();
        for &(a, b) in &g.bigrams {
            let ta = rs.get(RegionId(a)).time;
            let tb = rs.get(RegionId(b)).time;
            assert!(
                tb.end_min >= ta.start_min + 2 * gt,
                "bigram {a}->{b} cannot be traversed forward in time"
            );
        }
    }

    #[test]
    fn same_region_self_loop_exists_for_wide_intervals() {
        let ds = dataset(Some(8.0));
        let rs = decompose(&ds, &MechanismConfig::default());
        let g = RegionGraph::build(&ds, &rs);
        // Hourly (or wider) intervals with g_t = 10 min allow staying in the
        // same region across consecutive timesteps.
        let any_self_loop = rs.ids().any(|r| g.is_feasible(r, r));
        assert!(any_self_loop);
    }
}

//! The common mechanism interface and per-stage timing (Table 3).

use std::time::Duration;
use trajshare_model::Trajectory;

/// Wall-clock breakdown matching Table 3's columns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// n-gram (or per-point) perturbation.
    pub perturb: Duration,
    /// Reconstruction preparation (MBR restriction, error tables, lattice
    /// assembly).
    pub reconstruct_prep: Duration,
    /// Solving the optimal-reconstruction problem.
    pub optimal_reconstruct: Duration,
    /// Everything else (time smoothing, POI-level reconstruction, ...).
    pub other: Duration,
}

impl StageTimings {
    /// Total across stages.
    pub fn total(&self) -> Duration {
        self.perturb + self.reconstruct_prep + self.optimal_reconstruct + self.other
    }

    /// Element-wise sum (for averaging over a trajectory set).
    pub fn add(&mut self, other: &StageTimings) {
        self.perturb += other.perturb;
        self.reconstruct_prep += other.reconstruct_prep;
        self.optimal_reconstruct += other.optimal_reconstruct;
        self.other += other.other;
    }

    /// Scales all stages by `1/n` (averaging helper).
    pub fn div(&self, n: u32) -> StageTimings {
        let n = n.max(1);
        StageTimings {
            perturb: self.perturb / n,
            reconstruct_prep: self.reconstruct_prep / n,
            optimal_reconstruct: self.optimal_reconstruct / n,
            other: self.other / n,
        }
    }
}

/// Output of one perturbation: the shared trajectory plus stage timings.
#[derive(Debug, Clone)]
pub struct MechanismOutput {
    pub trajectory: Trajectory,
    pub timings: StageTimings,
}

/// A trajectory-perturbation mechanism (the main n-gram mechanism or any
/// §5.9 baseline). Implementations must satisfy ε-LDP for the ε they were
/// configured with.
pub trait Mechanism: Send + Sync {
    /// Short display name (matches the paper's method names).
    fn name(&self) -> &'static str;

    /// Perturbs one trajectory. The output has the same length as the
    /// input, strictly increasing timesteps, and satisfies the mechanism's
    /// feasibility guarantees.
    fn perturb(&self, trajectory: &Trajectory, rng: &mut dyn rand::RngCore) -> MechanismOutput;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total_and_average() {
        let mut t = StageTimings {
            perturb: Duration::from_millis(10),
            reconstruct_prep: Duration::from_millis(20),
            optimal_reconstruct: Duration::from_millis(30),
            other: Duration::from_millis(40),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        let u = t;
        t.add(&u);
        assert_eq!(t.total(), Duration::from_millis(200));
        assert_eq!(t.div(2).total(), Duration::from_millis(100));
        assert_eq!(t.div(0).total(), t.total(), "div by zero clamps to 1");
    }
}

//! The n-gram LDP trajectory-perturbation mechanism of Cunningham et al.,
//! "Real-World Trajectory Sharing with Local Differential Privacy"
//! (PVLDB 14(11), 2021), plus every baseline the paper evaluates.
//!
//! # Pipeline (Figure 1)
//!
//! 1. [`decomposition`] — hierarchical decomposition of POIs into
//!    space-time-category (STC) regions over public knowledge, with
//!    κ-merging (§5.3),
//! 2. [`perturb`] — overlapping n-gram perturbation of the region-level
//!    trajectory via the Exponential Mechanism with per-window budget
//!    ε′ = ε/(|τ|+n−1) (§5.4),
//! 3. [`reconstruct`] — optimal region-level reconstruction as a bigram
//!    lattice (Eq. 10–14), solved by Viterbi or the paper-faithful ILP
//!    (§5.5),
//! 4. [`poi_level`] — POI-level rejection sampling with time smoothing
//!    (§5.6).
//!
//! [`NGramMechanism`] ties the stages together; [`baselines`] provides
//! `IndNoReach`, `IndReach`, `PhysDist`, `NGramNoH` (§5.9) and the global
//! solution (§5.1). All of them implement [`Mechanism`], so the evaluation
//! harness treats them uniformly. Beyond the paper's headline pipeline,
//! [`continuous`] implements the §8 streaming-point extension and
//! [`attack`] the §5.7 Bayesian-adversary analysis.
//!
//! # Quickstart
//!
//! ```
//! use trajshare_core::{MechanismConfig, NGramMechanism, Mechanism};
//! use trajshare_model::{Dataset, Trajectory};
//! # use trajshare_model::{Poi, PoiId, TimeDomain};
//! # use trajshare_geo::{GeoPoint, DistanceMetric};
//! # use rand::SeedableRng;
//! # let hierarchy = trajshare_hierarchy::builders::campus();
//! # let leaf = hierarchy.leaves()[0];
//! # let origin = GeoPoint::new(40.7, -74.0);
//! # let pois: Vec<Poi> = (0..20).map(|i| Poi::new(PoiId(i), format!("p{i}"),
//! #     origin.offset_m((i % 5) as f64 * 400.0, (i / 5) as f64 * 400.0), leaf)).collect();
//! # let dataset = Dataset::new(pois, hierarchy, TimeDomain::new(10), Some(8.0),
//! #     DistanceMetric::Haversine);
//! let config = MechanismConfig::default();
//! let mech = NGramMechanism::build(&dataset, &config);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let real = Trajectory::from_pairs(&[(0, 60), (1, 62), (2, 65)]);
//! let out = mech.perturb(&real, &mut rng);
//! assert_eq!(out.trajectory.len(), real.len());
//! ```

pub mod attack;
pub mod baselines;
pub mod config;
pub mod continuous;
pub mod crc;
pub mod decomposition;
pub mod distances;
pub mod graphcodec;
pub mod kernels;
pub mod mechanism;
pub mod ngram_mech;
pub mod perturb;
pub mod poi_level;
pub mod reconstruct;
pub mod region;
pub mod regiongraph;
pub mod vio;

pub use attack::{PathPrior, TrajectoryAdversary, WindowAdversary};
pub use config::{MechanismConfig, MergeDimension, ReconstructionSolver};
pub use continuous::ContinuousSharer;
pub use crc::{crc32, crc32_extend};
pub use decomposition::decompose;
pub use graphcodec::{
    decode_region_graph, encode_region_graph, read_region_graph_file, write_region_graph_file,
    GraphCodecError,
};
pub use mechanism::{Mechanism, MechanismOutput, StageTimings};
pub use ngram_mech::{NGramMechanism, PerturbedTrajectory};
pub use region::{RegionId, RegionSet, StcRegion};
pub use regiongraph::RegionGraph;

//! Serialization of the region-level n-gram universe.
//!
//! A deployed collector does not hold the dataset: it is configured with
//! *public* mechanism outputs only. Until now that meant the per-region
//! hour-tile table (`--regions N` on the daemon, everything else
//! degraded), which was enough to aggregate but not to **estimate** — the
//! debiasing channel needs the region distance matrix, and the mobility
//! model needs `W₂`. This module gives the full [`RegionGraph`] (distance
//! matrix, `dmax`, feasible-bigram adjacency) plus the tile table a
//! self-validating wire form, so a dataset-less daemon can be handed one
//! file and run the entire estimation chain live.
//!
//! Everything in the blob is public knowledge in the paper's threat model
//! (the decomposition and `W₂` are derived from public POI data, §5.3),
//! so shipping it to an untrusted collector leaks nothing.
//!
//! ## Format (`TSRG`, all integers little-endian)
//!
//! | field | bytes |
//! |---|---|
//! | magic `TSRG` | 4 |
//! | version (`u16`) | 2 |
//! | `n` = number of regions (`u64`) | 8 |
//! | `b` = number of `W₂` bigrams (`u64`) | 8 |
//! | hour tile per region (`u16` × n) | 2·n |
//! | distance matrix row-major (`f32` × n²) | 4·n² |
//! | bigram pairs `(tail, head)` (`u32`+`u32` × b) | 8·b |
//! | CRC-32 of everything above | 4 |
//!
//! Decoding validates the CRC, the exact length, tile range (< 24),
//! matrix finiteness/non-negativity, and bigram bounds before any graph
//! is built — a corrupt or hostile file is refused, never mis-indexed.

use crate::crc::crc32;
use crate::distances::RegionDistance;
use crate::regiongraph::RegionGraph;
use std::path::Path;

/// Region-graph blob magic ("TrajShare Region Graph").
pub const GRAPH_MAGIC: [u8; 4] = *b"TSRG";
/// Region-graph blob version.
pub const GRAPH_VERSION: u16 = 1;
/// Hour tiles per day — tile values must stay below this (the aggregate
/// layer indexes a 24-slot row per region with them).
const TILES_PER_DAY: u16 = 24;

/// Why decoding a region-graph blob failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphCodecError {
    /// The buffer is shorter than its declared contents.
    Truncated,
    /// Magic bytes do not match [`GRAPH_MAGIC`].
    BadMagic,
    /// Unknown format version.
    UnsupportedVersion(u16),
    /// The trailing CRC-32 does not match the payload.
    BadCrc,
    /// Structurally valid but semantically inconsistent content (length
    /// mismatch, out-of-range tile or bigram, non-finite distance).
    Inconsistent(&'static str),
}

impl std::fmt::Display for GraphCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphCodecError::Truncated => write!(f, "region-graph blob truncated"),
            GraphCodecError::BadMagic => write!(f, "region-graph magic bytes invalid"),
            GraphCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported region-graph version {v}")
            }
            GraphCodecError::BadCrc => write!(f, "region-graph CRC mismatch"),
            GraphCodecError::Inconsistent(what) => {
                write!(f, "region-graph blob inconsistent: {what}")
            }
        }
    }
}

impl std::error::Error for GraphCodecError {}

/// Serializes a region graph plus its public hour-tile table into the
/// self-validating `TSRG` blob. `region_tiles` must cover the graph's
/// universe (one tile per region, each < 24).
pub fn encode_region_graph(graph: &RegionGraph, region_tiles: &[u16]) -> Vec<u8> {
    let n = graph.num_regions();
    assert_eq!(region_tiles.len(), n, "one tile per region");
    assert!(
        region_tiles.iter().all(|&t| t < TILES_PER_DAY),
        "hour tiles must be < 24"
    );
    let mut out = Vec::with_capacity(22 + 2 * n + 4 * n * n + 8 * graph.num_bigrams());
    out.extend_from_slice(&GRAPH_MAGIC);
    out.extend_from_slice(&GRAPH_VERSION.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(graph.num_bigrams() as u64).to_le_bytes());
    for &t in region_tiles {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for &d in graph.distance.raw_matrix() {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for &(a, b) in &graph.bigrams {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes [`encode_region_graph`] output back into a usable graph and
/// tile table, refusing anything corrupt, hostile, or inconsistent.
pub fn decode_region_graph(buf: &[u8]) -> Result<(RegionGraph, Vec<u16>), GraphCodecError> {
    const HEADER: usize = 4 + 2 + 8 + 8;
    if buf.len() < HEADER + 4 {
        return Err(GraphCodecError::Truncated);
    }
    let (payload, crc_bytes) = buf.split_at(buf.len() - 4);
    if crc32(payload) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Err(GraphCodecError::BadCrc);
    }
    if payload[0..4] != GRAPH_MAGIC {
        return Err(GraphCodecError::BadMagic);
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().unwrap());
    if version != GRAPH_VERSION {
        return Err(GraphCodecError::UnsupportedVersion(version));
    }
    let n = u64::from_le_bytes(payload[6..14].try_into().unwrap());
    let b = u64::from_le_bytes(payload[14..22].try_into().unwrap());
    // Exact-size check before any allocation: the declared counts must
    // account for every remaining byte, so a hostile header cannot make
    // us allocate beyond the input we already hold. Bounding the counts
    // first keeps even the u128 size arithmetic overflow-free.
    if n > u32::MAX as u64 || b > u32::MAX as u64 {
        return Err(GraphCodecError::Inconsistent("declared sizes vs length"));
    }
    let expected =
        (HEADER as u128) + 2 * (n as u128) + 4 * (n as u128) * (n as u128) + 8 * (b as u128);
    if expected != payload.len() as u128 {
        return Err(GraphCodecError::Inconsistent("declared sizes vs length"));
    }
    let n = n as usize;
    let b = b as usize;
    if n == 0 {
        return Err(GraphCodecError::Inconsistent("empty region universe"));
    }
    let mut off = HEADER;
    let mut tiles = Vec::with_capacity(n);
    for _ in 0..n {
        let t = u16::from_le_bytes(payload[off..off + 2].try_into().unwrap());
        if t >= TILES_PER_DAY {
            return Err(GraphCodecError::Inconsistent("hour tile out of range"));
        }
        tiles.push(t);
        off += 2;
    }
    let mut matrix = Vec::with_capacity(n * n);
    for _ in 0..n * n {
        let d = f32::from_le_bytes(payload[off..off + 4].try_into().unwrap());
        if !d.is_finite() || d < 0.0 {
            return Err(GraphCodecError::Inconsistent("non-finite distance"));
        }
        matrix.push(d);
        off += 4;
    }
    let mut bigrams = Vec::with_capacity(b);
    for _ in 0..b {
        let tail = u32::from_le_bytes(payload[off..off + 4].try_into().unwrap());
        let head = u32::from_le_bytes(payload[off + 4..off + 8].try_into().unwrap());
        if tail as usize >= n || head as usize >= n {
            return Err(GraphCodecError::Inconsistent("bigram out of range"));
        }
        // `W₂` is a *set*: require strictly ascending lexicographic
        // order (what `RegionGraph::build` emits), which rules out
        // duplicates — a duplicated bigram would double-weight its
        // transition in every downstream consumer (uniform-fallback
        // rows, CSR kernels, W₂ normalizers) with no error anywhere.
        if bigrams.last().is_some_and(|&prev| prev >= (tail, head)) {
            return Err(GraphCodecError::Inconsistent("bigrams not sorted-unique"));
        }
        bigrams.push((tail, head));
        off += 8;
    }
    debug_assert_eq!(off, payload.len());
    let distance = RegionDistance::from_parts(n, matrix);
    Ok((RegionGraph::from_parts(distance, bigrams), tiles))
}

/// Writes the blob to `path` (tmp + rename so a crashed write never
/// leaves a torn file where a daemon would look for its universe).
pub fn write_region_graph_file(
    path: &Path,
    graph: &RegionGraph,
    region_tiles: &[u16],
) -> std::io::Result<()> {
    let bytes = encode_region_graph(graph, region_tiles);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(tmp, path)
}

/// Reads and validates a region-graph file — the `ingestd
/// --region-graph` loader.
pub fn read_region_graph_file(path: &Path) -> std::io::Result<(RegionGraph, Vec<u16>)> {
    let bytes = std::fs::read(path)?;
    decode_region_graph(&bytes)
        .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use crate::region::RegionId;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Dataset, Poi, PoiId, TimeDomain};

    fn world() -> (RegionGraph, Vec<u16>) {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..40)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m((i % 8) as f64 * 400.0, (i / 8) as f64 * 400.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        let ds = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        let regions = decompose(&ds, &MechanismConfig::default());
        let graph = RegionGraph::build(&ds, &regions);
        let tiles: Vec<u16> = regions
            .all()
            .iter()
            .map(|r| (((r.time.start_min + r.time.end_min) / 2 / 60) as u16).min(23))
            .collect();
        (graph, tiles)
    }

    #[test]
    fn roundtrip_preserves_distances_tiles_and_w2() {
        let (graph, tiles) = world();
        let blob = encode_region_graph(&graph, &tiles);
        let (back, back_tiles) = decode_region_graph(&blob).unwrap();
        assert_eq!(back_tiles, tiles);
        assert_eq!(back.num_regions(), graph.num_regions());
        assert_eq!(back.num_bigrams(), graph.num_bigrams());
        assert_eq!(back.bigrams, graph.bigrams);
        let n = graph.num_regions();
        for a in 0..n {
            for b in 0..n {
                let (ra, rb) = (RegionId(a as u32), RegionId(b as u32));
                assert_eq!(back.distance.get(ra, rb), graph.distance.get(ra, rb));
            }
            assert_eq!(
                back.successors(RegionId(a as u32)),
                graph.successors(RegionId(a as u32))
            );
            assert_eq!(
                back.predecessors(RegionId(a as u32)),
                graph.predecessors(RegionId(a as u32))
            );
        }
        assert_eq!(back.distance.dmax(), graph.distance.dmax());
        // The CSR exports the estimation kernels consume agree too.
        assert_eq!(back.successor_csr(), graph.successor_csr());
    }

    #[test]
    fn corruption_and_hostile_headers_are_refused() {
        let (graph, tiles) = world();
        let blob = encode_region_graph(&graph, &tiles);
        // Any flipped payload byte fails the CRC.
        let mut bad = blob.clone();
        bad[30] ^= 0x40;
        assert_eq!(
            decode_region_graph(&bad).unwrap_err(),
            GraphCodecError::BadCrc
        );
        // Truncation.
        assert!(decode_region_graph(&blob[..10]).is_err());
        // Declared sizes must cover the buffer exactly (re-CRC'd so the
        // size check itself is what fires).
        let mut hostile = blob[..blob.len() - 4].to_vec();
        hostile[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&hostile);
        hostile.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_region_graph(&hostile).unwrap_err(),
            GraphCodecError::Inconsistent("declared sizes vs length")
        );
        // Out-of-range tile.
        let mut bad_tile = blob[..blob.len() - 4].to_vec();
        bad_tile[22..24].copy_from_slice(&99u16.to_le_bytes());
        let crc = crc32(&bad_tile);
        bad_tile.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_region_graph(&bad_tile).unwrap_err(),
            GraphCodecError::Inconsistent("hour tile out of range")
        );
        // A duplicated W₂ bigram (would double-weight its transition in
        // every consumer) is refused, not silently accepted.
        let n = graph.num_regions();
        let pair_base = blob.len() - 4 - 8 * graph.num_bigrams();
        let mut dup = blob[..blob.len() - 4].to_vec();
        let first_pair: [u8; 8] = dup[pair_base..pair_base + 8].try_into().unwrap();
        dup[pair_base + 8..pair_base + 16].copy_from_slice(&first_pair);
        let crc = crc32(&dup);
        dup.extend_from_slice(&crc.to_le_bytes());
        assert!(n > 1 && graph.num_bigrams() > 1);
        assert_eq!(
            decode_region_graph(&dup).unwrap_err(),
            GraphCodecError::Inconsistent("bigrams not sorted-unique")
        );
    }

    #[test]
    fn file_roundtrip() {
        let (graph, tiles) = world();
        let dir = std::env::temp_dir().join(format!("trajshare-graphcodec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campus.graph");
        write_region_graph_file(&path, &graph, &tiles).unwrap();
        let (back, back_tiles) = read_region_graph_file(&path).unwrap();
        assert_eq!(back.num_bigrams(), graph.num_bigrams());
        assert_eq!(back_tiles, tiles);
        assert!(read_region_graph_file(&dir.join("absent.graph")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

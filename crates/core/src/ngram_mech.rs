//! The full NGram mechanism (Figure 1): decomposition → n-gram perturbation
//! → optimal region reconstruction → POI-level reconstruction.

use crate::config::MechanismConfig;
use crate::decomposition::decompose;
use crate::mechanism::{Mechanism, MechanismOutput, StageTimings};
use crate::perturb::perturb_region_sequence;
use crate::poi_level::reconstruct_poi_level;
use crate::reconstruct::reconstruct_regions;
use crate::region::RegionSet;
use crate::regiongraph::RegionGraph;
use std::time::Instant;
use trajshare_mech::PrivacyBudget;
use trajshare_model::{Dataset, Trajectory};

/// The paper's main mechanism ("NGram" in Tables 2–4).
///
/// Construction runs the public pre-processing (hierarchical decomposition,
/// merging, `W_n` formation — the Figure 7 cost); [`Mechanism::perturb`]
/// then handles one trajectory per call, spending exactly ε.
#[derive(Debug, Clone)]
pub struct NGramMechanism {
    dataset: Dataset,
    regions: RegionSet,
    graph: RegionGraph,
    config: MechanismConfig,
}

impl NGramMechanism {
    /// Runs pre-processing and returns the ready mechanism.
    ///
    /// Panics on an invalid configuration.
    pub fn build(dataset: &Dataset, config: &MechanismConfig) -> Self {
        config.validate().expect("invalid mechanism config");
        let regions = decompose(dataset, config);
        let graph = RegionGraph::build(dataset, &regions);
        Self {
            dataset: dataset.clone(),
            regions,
            graph,
            config: config.clone(),
        }
    }

    /// The decomposed STC region set.
    #[inline]
    pub fn regions(&self) -> &RegionSet {
        &self.regions
    }

    /// The feasible n-gram universe.
    #[inline]
    pub fn graph(&self) -> &RegionGraph {
        &self.graph
    }

    /// The configuration in force.
    #[inline]
    pub fn config(&self) -> &MechanismConfig {
        &self.config
    }

    /// The per-window budget ε′ = ε/(|τ|+n−1) for a trajectory length.
    pub fn eps_prime(&self, traj_len: usize) -> f64 {
        let n = self.config.n.min(traj_len);
        self.config.epsilon / (traj_len + n - 1) as f64
    }

    /// Runs *only* stage 1 (encode + n-gram perturbation) and returns the
    /// raw perturbed window multiset `Z` together with the per-window ε′
    /// that produced it — the exact message a client device uploads in the
    /// aggregation setting (`trajshare_aggregate`), where the server, not
    /// the client, post-processes population statistics.
    ///
    /// Spends the full ε, identically to [`Mechanism::perturb`]; everything
    /// after stage 1 there is post-processing of this output, so releasing
    /// `Z` itself is ε-LDP (Theorem 5.3).
    pub fn perturb_raw(
        &self,
        trajectory: &Trajectory,
        rng: &mut dyn rand::RngCore,
    ) -> PerturbedTrajectory {
        assert!(!trajectory.is_empty(), "cannot perturb an empty trajectory");
        let len = trajectory.len();
        let n = self.config.n.min(len);
        let eps_prime = self.eps_prime(len);
        let mut budget = PrivacyBudget::new(self.config.epsilon);
        let seq = self
            .regions
            .encode(&self.dataset, trajectory)
            .expect("every POI with open hours has a region");
        let windows = perturb_region_sequence(&self.graph, &seq, n, eps_prime, rng);
        for _ in 0..windows.len() {
            budget
                .consume(eps_prime)
                .expect("window budget exceeds ε — composition bug");
        }
        debug_assert!(budget.is_exhausted(), "all of ε must be spent");
        PerturbedTrajectory {
            windows,
            eps_prime,
            len,
        }
    }
}

/// Stage-1 output of the mechanism: the perturbed window multiset `Z` plus
/// the public parameters a server needs to debias it.
#[derive(Debug, Clone)]
pub struct PerturbedTrajectory {
    /// The perturbed n-gram windows `Z` (schedule order).
    pub windows: Vec<crate::perturb::PerturbedWindow>,
    /// The per-window budget ε′ = ε/(|τ|+n−1) used for every EM draw.
    pub eps_prime: f64,
    /// Trajectory length |τ| (public: the mechanism preserves it).
    pub len: usize,
}

impl Mechanism for NGramMechanism {
    fn name(&self) -> &'static str {
        "NGram"
    }

    fn perturb(&self, trajectory: &Trajectory, rng: &mut dyn rand::RngCore) -> MechanismOutput {
        // Stage 1: encode + perturb, with the ε-composition accounting
        // (Theorem 5.3) — exactly the client-upload path.
        let t0 = Instant::now();
        let raw = self.perturb_raw(trajectory, rng);
        let perturb_time = t0.elapsed();
        let len = raw.len;

        // Stages 2-3: optimal region-level reconstruction (post-processing).
        let rec = reconstruct_regions(
            &self.dataset,
            &self.regions,
            &self.graph,
            &raw.windows,
            len,
            self.config.solver,
        );

        // Stage 4: POI-level reconstruction (post-processing).
        let t3 = Instant::now();
        let poi_rec = reconstruct_poi_level(
            &self.dataset,
            &self.regions,
            &rec.regions,
            self.config.gamma,
            rng,
        );
        let other = t3.elapsed();

        MechanismOutput {
            trajectory: poi_rec.trajectory,
            timings: StageTimings {
                perturb: perturb_time,
                reconstruct_prep: rec.prep,
                optimal_reconstruct: rec.solve,
                other,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain};

    fn dataset() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..80)
            .map(|i| {
                let loc = origin.offset_m((i % 8) as f64 * 300.0, (i / 8) as f64 * 300.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn output_preserves_length_and_monotone_time() {
        let ds = dataset();
        let mech = NGramMechanism::build(&ds, &MechanismConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for pairs in [
            vec![(0u32, 60u16), (9, 62), (18, 65)],
            vec![(5, 80), (14, 84), (23, 88), (32, 92), (41, 96)],
        ] {
            let traj = Trajectory::from_pairs(&pairs);
            let out = mech.perturb(&traj, &mut rng);
            assert_eq!(out.trajectory.len(), traj.len());
            for w in out.trajectory.points().windows(2) {
                assert!(w[1].t > w[0].t);
            }
        }
    }

    #[test]
    fn eps_prime_matches_theorem() {
        let ds = dataset();
        let cfg = MechanismConfig::default().with_epsilon(5.0).with_n(2);
        let mech = NGramMechanism::build(&ds, &cfg);
        // |τ| = 5, n = 2 -> ε' = 5/6.
        assert!((mech.eps_prime(5) - 5.0 / 6.0).abs() < 1e-12);
        // |τ| = 4, n = 2 -> 5 windows.
        assert!((mech.eps_prime(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_epsilon_stays_close_to_truth() {
        let ds = dataset();
        let hi = NGramMechanism::build(&ds, &MechanismConfig::default().with_epsilon(200.0));
        let lo = NGramMechanism::build(&ds, &MechanismConfig::default().with_epsilon(0.01));
        let traj = Trajectory::from_pairs(&[(0, 60), (9, 62), (18, 65)]);
        let mut rng = StdRng::seed_from_u64(2);
        let err = |mech: &NGramMechanism, rng: &mut StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..15 {
                let out = mech.perturb(&traj, rng);
                for (a, b) in traj.points().iter().zip(out.trajectory.points()) {
                    total += crate::distances::point_distance(&ds, (a.poi, a.t), (b.poi, b.t));
                }
            }
            total
        };
        let e_hi = err(&hi, &mut rng);
        let e_lo = err(&lo, &mut rng);
        assert!(
            e_hi < e_lo,
            "high-ε error {e_hi} should be below low-ε error {e_lo}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let mech = NGramMechanism::build(&ds, &MechanismConfig::default());
        let traj = Trajectory::from_pairs(&[(0, 60), (9, 62), (18, 65)]);
        let out1 = mech.perturb(&traj, &mut StdRng::seed_from_u64(42));
        let out2 = mech.perturb(&traj, &mut StdRng::seed_from_u64(42));
        assert_eq!(out1.trajectory, out2.trajectory);
    }

    #[test]
    fn n1_and_n3_also_work() {
        let ds = dataset();
        let traj = Trajectory::from_pairs(&[(0, 60), (9, 62), (18, 65), (27, 68)]);
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 3] {
            let mech = NGramMechanism::build(&ds, &MechanismConfig::default().with_n(n));
            let out = mech.perturb(&traj, &mut rng);
            assert_eq!(out.trajectory.len(), 4, "n={n}");
        }
    }

    #[test]
    fn timings_are_populated() {
        let ds = dataset();
        let mech = NGramMechanism::build(&ds, &MechanismConfig::default());
        let traj = Trajectory::from_pairs(&[(0, 60), (9, 62), (18, 65)]);
        let out = mech.perturb(&traj, &mut StdRng::seed_from_u64(4));
        assert!(out.timings.total() > std::time::Duration::ZERO);
    }
}

//! Adversarial inference analysis (§5.7).
//!
//! The paper argues an adversary with full public knowledge "cannot use
//! this information to learn meaningful information with high probability".
//! This module makes that claim checkable: a Bayesian adversary who knows
//! the mechanism, the candidate universe and a prior over inputs computes
//! the exact posterior over true bigrams given an observed perturbed
//! bigram. ε-LDP bounds the posterior-to-prior odds update by `e^ε'` per
//! window — which the tests verify — and the empirical recovery rate of the
//! MAP attacker quantifies residual leakage.

use crate::region::RegionId;
use crate::regiongraph::RegionGraph;
use rand::Rng;

/// A window-level Bayesian adversary against the n-gram EM (bigrams).
#[derive(Debug, Clone, Copy)]
pub struct WindowAdversary<'a> {
    graph: &'a RegionGraph,
    eps_prime: f64,
}

impl<'a> WindowAdversary<'a> {
    /// Creates the adversary for a given per-window budget.
    pub fn new(graph: &'a RegionGraph, eps_prime: f64) -> Self {
        assert!(eps_prime > 0.0 && eps_prime.is_finite());
        Self { graph, eps_prime }
    }

    /// Exact likelihood `P(z | x)` of observing output bigram `z` when the
    /// true bigram is `x`, under the §5.4 EM over `W₂`.
    pub fn likelihood(&self, z: (RegionId, RegionId), x: (RegionId, RegionId)) -> f64 {
        let sens = self.graph.distance.ngram_sensitivity(2);
        let scale = self.eps_prime / (2.0 * sens);
        let weight = |out: (u32, u32)| -> f64 {
            let d = self.graph.distance.get(x.0, RegionId(out.0))
                + self.graph.distance.get(x.1, RegionId(out.1));
            (-scale * d).exp()
        };
        let total: f64 = self.graph.bigrams.iter().map(|&e| weight(e)).sum();
        weight((z.0 .0, z.1 .0)) / total
    }

    /// Posterior over all candidate true bigrams in `W₂` given observation
    /// `z` and a prior (same length/order as `graph.bigrams`). Returns a
    /// normalized distribution.
    pub fn posterior(&self, z: (RegionId, RegionId), prior: &[f64]) -> Vec<f64> {
        assert_eq!(prior.len(), self.graph.bigrams.len(), "prior must cover W₂");
        let mut post: Vec<f64> = self
            .graph
            .bigrams
            .iter()
            .zip(prior)
            .map(|(&(a, b), &p)| p * self.likelihood(z, (RegionId(a), RegionId(b))))
            .collect();
        let total: f64 = post.iter().sum();
        assert!(total > 0.0, "degenerate posterior");
        for v in &mut post {
            *v /= total;
        }
        post
    }

    /// MAP estimate: the most likely true bigram under the posterior.
    pub fn map_estimate(&self, z: (RegionId, RegionId), prior: &[f64]) -> (RegionId, RegionId) {
        let post = self.posterior(z, prior);
        let best = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty W₂");
        let (a, b) = self.graph.bigrams[best];
        (RegionId(a), RegionId(b))
    }

    /// Empirical recovery rate: how often the MAP attacker (uniform prior)
    /// exactly recovers the true bigram over `trials` mechanism runs.
    pub fn empirical_recovery_rate<R: Rng + ?Sized>(
        &self,
        truth: (RegionId, RegionId),
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let prior = vec![1.0 / self.graph.bigrams.len() as f64; self.graph.bigrams.len()];
        let mut hits = 0usize;
        for _ in 0..trials {
            let z =
                crate::perturb::sample_window(self.graph, &[truth.0, truth.1], self.eps_prime, rng);
            if self.map_estimate((z[0], z[1]), &prior) == truth {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    }

    /// The maximum posterior-to-prior odds-ratio update over all pairs of
    /// candidate inputs for observation `z` — bounded by `e^{ε'}` under
    /// ε'-LDP (Definition 4.2 rearranged).
    pub fn max_odds_update(&self, z: (RegionId, RegionId)) -> f64 {
        let mut max_l: f64 = 0.0;
        let mut min_l = f64::INFINITY;
        for &(a, b) in &self.graph.bigrams {
            let l = self.likelihood(z, (RegionId(a), RegionId(b)));
            max_l = max_l.max(l);
            min_l = min_l.min(l);
        }
        max_l / min_l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Dataset, Poi, PoiId, TimeDomain};

    fn graph() -> (Dataset, crate::region::RegionSet, RegionGraph) {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..36)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m((i % 6) as f64 * 400.0, (i / 6) as f64 * 400.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        let ds = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        let mut cfg = MechanismConfig::default();
        cfg.time_interval_min = 240; // coarse: keep W₂ small for exact sums
        let rs = decompose(&ds, &cfg);
        let g = RegionGraph::build(&ds, &rs);
        (ds, rs, g)
    }

    #[test]
    fn likelihoods_normalize_over_outputs() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 1.0);
        let x = (RegionId(g.bigrams[0].0), RegionId(g.bigrams[0].1));
        let total: f64 = g
            .bigrams
            .iter()
            .map(|&(a, b)| adv.likelihood((RegionId(a), RegionId(b)), x))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "likelihoods sum to {total}");
    }

    #[test]
    fn odds_update_bounded_by_exp_eps_prime() {
        let (_, _, g) = graph();
        for eps in [0.5, 1.0, 2.0] {
            let adv = WindowAdversary::new(&g, eps);
            let &(a, b) = &g.bigrams[g.bigrams.len() / 2];
            let update = adv.max_odds_update((RegionId(a), RegionId(b)));
            assert!(
                update <= eps.exp() + 1e-6,
                "ε'={eps}: odds update {update} exceeds e^ε' = {}",
                eps.exp()
            );
        }
    }

    #[test]
    fn posterior_is_proper_and_prior_sensitive() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 1.0);
        let z = (RegionId(g.bigrams[1].0), RegionId(g.bigrams[1].1));
        let n = g.bigrams.len();
        let uniform = vec![1.0 / n as f64; n];
        let post = adv.posterior(z, &uniform);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // A spiked prior dominates a weak likelihood at small ε'.
        let weak = WindowAdversary::new(&g, 1e-6);
        let mut spiked = vec![1e-9; n];
        spiked[7] = 1.0;
        let post = weak.posterior(z, &spiked);
        let best = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 7, "with no signal the prior decides");
    }

    #[test]
    fn tiny_epsilon_recovery_is_near_chance() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 0.01);
        let truth = (RegionId(g.bigrams[0].0), RegionId(g.bigrams[0].1));
        let mut rng = StdRng::seed_from_u64(1);
        let rate = adv.empirical_recovery_rate(truth, 150, &mut rng);
        let chance = 1.0 / g.bigrams.len() as f64;
        assert!(
            rate < chance * 20.0 + 0.05,
            "ε'=0.01 recovery {rate} too far above chance {chance}"
        );
    }

    #[test]
    fn huge_epsilon_recovery_is_near_certain() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 500.0);
        let truth = (RegionId(g.bigrams[0].0), RegionId(g.bigrams[0].1));
        let mut rng = StdRng::seed_from_u64(2);
        let rate = adv.empirical_recovery_rate(truth, 50, &mut rng);
        assert!(rate > 0.9, "ε'=500 recovery only {rate}");
    }
}

//! Adversarial inference analysis (§5.7).
//!
//! The paper argues an adversary with full public knowledge "cannot use
//! this information to learn meaningful information with high probability".
//! This module makes that claim checkable: a Bayesian adversary who knows
//! the mechanism, the candidate universe and a prior over inputs computes
//! the exact posterior over true bigrams given an observed perturbed
//! bigram. ε-LDP bounds the posterior-to-prior odds update by `e^ε'` per
//! window — which the tests verify — and the empirical recovery rate of the
//! MAP attacker quantifies residual leakage.

use crate::perturb::PerturbedWindow;
use crate::region::RegionId;
use crate::regiongraph::RegionGraph;
use rand::Rng;

/// Mass floor for prior probabilities: a published model's zeros are
/// estimation artifacts, not hard evidence, so the attacker never lets a
/// prior veto a feasible path outright.
const PRIOR_FLOOR: f64 = 1e-12;

/// A window-level Bayesian adversary against the n-gram EM (bigrams).
#[derive(Debug, Clone, Copy)]
pub struct WindowAdversary<'a> {
    graph: &'a RegionGraph,
    eps_prime: f64,
}

impl<'a> WindowAdversary<'a> {
    /// Creates the adversary for a given per-window budget.
    pub fn new(graph: &'a RegionGraph, eps_prime: f64) -> Self {
        assert!(eps_prime > 0.0 && eps_prime.is_finite());
        Self { graph, eps_prime }
    }

    /// Exact likelihood `P(z | x)` of observing output bigram `z` when the
    /// true bigram is `x`, under the §5.4 EM over `W₂`.
    pub fn likelihood(&self, z: (RegionId, RegionId), x: (RegionId, RegionId)) -> f64 {
        let sens = self.graph.distance.ngram_sensitivity(2);
        let scale = self.eps_prime / (2.0 * sens);
        let weight = |out: (u32, u32)| -> f64 {
            let d = self.graph.distance.get(x.0, RegionId(out.0))
                + self.graph.distance.get(x.1, RegionId(out.1));
            (-scale * d).exp()
        };
        let total: f64 = self.graph.bigrams.iter().map(|&e| weight(e)).sum();
        weight((z.0 .0, z.1 .0)) / total
    }

    /// Posterior over all candidate true bigrams in `W₂` given observation
    /// `z` and a prior (same length/order as `graph.bigrams`). Returns a
    /// normalized distribution.
    pub fn posterior(&self, z: (RegionId, RegionId), prior: &[f64]) -> Vec<f64> {
        assert_eq!(prior.len(), self.graph.bigrams.len(), "prior must cover W₂");
        let mut post: Vec<f64> = self
            .graph
            .bigrams
            .iter()
            .zip(prior)
            .map(|(&(a, b), &p)| p * self.likelihood(z, (RegionId(a), RegionId(b))))
            .collect();
        let total: f64 = post.iter().sum();
        assert!(total > 0.0, "degenerate posterior");
        for v in &mut post {
            *v /= total;
        }
        post
    }

    /// MAP estimate: the most likely true bigram under the posterior.
    pub fn map_estimate(&self, z: (RegionId, RegionId), prior: &[f64]) -> (RegionId, RegionId) {
        let post = self.posterior(z, prior);
        let best = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty W₂");
        let (a, b) = self.graph.bigrams[best];
        (RegionId(a), RegionId(b))
    }

    /// Empirical recovery rate: how often the MAP attacker (uniform prior)
    /// exactly recovers the true bigram over `trials` mechanism runs.
    pub fn empirical_recovery_rate<R: Rng + ?Sized>(
        &self,
        truth: (RegionId, RegionId),
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let prior = vec![1.0 / self.graph.bigrams.len() as f64; self.graph.bigrams.len()];
        let mut hits = 0usize;
        for _ in 0..trials {
            let z =
                crate::perturb::sample_window(self.graph, &[truth.0, truth.1], self.eps_prime, rng);
            if self.map_estimate((z[0], z[1]), &prior) == truth {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    }

    /// The maximum posterior-to-prior odds-ratio update over all pairs of
    /// candidate inputs for observation `z` — bounded by `e^{ε'}` under
    /// ε'-LDP (Definition 4.2 rearranged).
    pub fn max_odds_update(&self, z: (RegionId, RegionId)) -> f64 {
        let mut max_l: f64 = 0.0;
        let mut min_l = f64::INFINITY;
        for &(a, b) in &self.graph.bigrams {
            let l = self.likelihood(z, (RegionId(a), RegionId(b)));
            max_l = max_l.max(l);
            min_l = min_l.min(l);
        }
        max_l / min_l
    }
}

/// A path-space prior for [`TrajectoryAdversary`]: typically the *published*
/// population model (start distribution + row-major `|R|²` transition
/// matrix), which an adversary is explicitly allowed to know — publications
/// are public. `None` entries of the model are handled by flooring, so a
/// sparse estimate never hard-forbids a feasible truth.
#[derive(Debug, Clone, Copy)]
pub struct PathPrior<'a> {
    /// Start-region distribution, `|R|` entries.
    pub start: &'a [f64],
    /// Row-major `|R|²` transition matrix (rows need not be normalized).
    pub transition: &'a [f64],
}

/// A whole-trajectory MAP adversary against the §5.4 n-gram EM.
///
/// Lifts [`WindowAdversary`] from single windows to the full perturbed
/// multiset `Z`: the exact window likelihood factorizes into per-position
/// distance terms plus a per-window normalizer, so the joint posterior over
/// region *paths* is a chain model and exact MAP decoding is a Viterbi pass
/// over the `W₂` lattice — the attacker-side mirror of the §5.5
/// reconstruction (which optimizes expected error, not recovery).
///
/// Per candidate fragment `x` the EM gives
/// `ln P(z_w | x) = Σ_j −s·d(x_j, z_j) − ln Z_k(x)` with
/// `s = ε′ / 2Δ_k`. The distance terms attach to lattice nodes; `ln Z₁(x)`
/// is a node term and `ln Z₂(x_a, x_b)` an edge term, both precomputed:
/// `Z₂(a, b) = Σ_{y} e^{−s·d(a,y)} · Σ_{y′ ∈ succ(y)} e^{−s·d(b,y′)}` in
/// `O(|R|·(|R|² + |W₂|))`. Trigram windows (n = 3) use the chained-bigram
/// surrogate `ln Z₃(a,b,c) ≈ ln Z₂(a,b) + ln Z₂(b,c) − ln Z₁(b)` — exact
/// normalizers for n ≤ 2 (the default configuration), a documented
/// approximation for n = 3.
#[derive(Debug, Clone)]
pub struct TrajectoryAdversary<'a> {
    graph: &'a RegionGraph,
    eps_prime: f64,
    /// Per window length k (index 1..=3): the EM scale ε′ / 2Δ_k.
    scale: [f64; 4],
    /// Per window length k: `ln Z₁` at that scale, `|R|` entries.
    log_z1: [Vec<f64>; 4],
    /// Per window length k: `ln Z₂` at that scale, row-major `|R|²`.
    log_z2: [Vec<f64>; 4],
}

impl<'a> TrajectoryAdversary<'a> {
    /// Builds the adversary for one per-window budget; `lengths` is the
    /// set of window lengths that will appear in `Z` (e.g. `&[1, 2]` for
    /// the default n = 2 schedule). Tables are only precomputed for the
    /// lengths actually used.
    pub fn new(graph: &'a RegionGraph, eps_prime: f64, lengths: &[usize]) -> Self {
        assert!(eps_prime > 0.0 && eps_prime.is_finite());
        let nr = graph.num_regions();
        let mut adv = TrajectoryAdversary {
            graph,
            eps_prime,
            scale: [0.0; 4],
            log_z1: Default::default(),
            log_z2: Default::default(),
        };
        for &k in lengths {
            assert!((1..=3).contains(&k), "window length {k} out of range");
            if !adv.log_z1[k].is_empty() {
                continue;
            }
            let scale = eps_prime / (2.0 * graph.distance.ngram_sensitivity(k));
            adv.scale[k] = scale;
            // elem[x][y] = e^{−s·d(x, y)}.
            let elem: Vec<f64> = (0..nr)
                .flat_map(|x| {
                    (0..nr).map(move |y| {
                        (-scale * graph.distance.get(RegionId(x as u32), RegionId(y as u32))).exp()
                    })
                })
                .collect();
            adv.log_z1[k] = (0..nr)
                .map(|x| elem[x * nr..(x + 1) * nr].iter().sum::<f64>().ln())
                .collect();
            // Z₂(a, b) = Σ_y elem[a][y] · S_b[y], S_b[y] = Σ_{y′∈succ(y)} elem[b][y′].
            let mut log_z2 = vec![f64::NEG_INFINITY; nr * nr];
            let mut succ_sum = vec![0.0f64; nr];
            for b in 0..nr {
                for (y, s) in succ_sum.iter_mut().enumerate() {
                    *s = graph
                        .successors(RegionId(y as u32))
                        .iter()
                        .map(|&y2| elem[b * nr + y2 as usize])
                        .sum();
                }
                for a in 0..nr {
                    let z: f64 = (0..nr).map(|y| elem[a * nr + y] * succ_sum[y]).sum();
                    if z > 0.0 {
                        log_z2[a * nr + b] = z.ln();
                    }
                }
            }
            adv.log_z2[k] = log_z2;
        }
        adv
    }

    /// The per-window budget this adversary was built for.
    pub fn eps_prime(&self) -> f64 {
        self.eps_prime
    }

    /// Exact log-likelihood `ln P(Z | path)` of the observed multiset
    /// under the EM (for n = 3 windows: the chained-bigram surrogate).
    /// `path.len()` must match the schedule that produced `Z`.
    pub fn log_likelihood(&self, z: &[PerturbedWindow], path: &[RegionId]) -> f64 {
        let (node, edge) = self.build_potentials(z, path.len(), None);
        let nr = self.graph.num_regions();
        let mut total = node[path[0].index()];
        for i in 1..path.len() {
            total += node[i * nr + path[i].index()];
            total += self.edge_score(&edge[i - 1], None, path[i - 1], path[i]);
        }
        total
    }

    /// Exact MAP decode of the whole trajectory from the observed window
    /// multiset `Z`, optionally sharpened by a published-model prior.
    ///
    /// Runs Viterbi over the `W₂` successor lattice in
    /// `O(len · |W₂|)` after table precompute. When no feasible path of
    /// the requested length exists (a degenerate universe), falls back to
    /// the per-position argmax of the node potentials.
    pub fn map_trajectory(
        &self,
        z: &[PerturbedWindow],
        len: usize,
        prior: Option<PathPrior<'_>>,
    ) -> Vec<RegionId> {
        assert!(len >= 1);
        let nr = self.graph.num_regions();
        let (node, edge) = self.build_potentials(z, len, prior);
        if len == 1 {
            return vec![argmax_region(&node[..nr])];
        }
        // Viterbi over feasible successors.
        let mut dp = node[..nr].to_vec();
        let mut back: Vec<Vec<u32>> = Vec::with_capacity(len - 1);
        for i in 1..len {
            let mut next = vec![f64::NEG_INFINITY; nr];
            let mut bp = vec![u32::MAX; nr];
            for x in 0..nr {
                if dp[x].is_infinite() {
                    continue;
                }
                for &y in self.graph.successors(RegionId(x as u32)) {
                    let cand = dp[x]
                        + self.edge_score(
                            &edge[i - 1],
                            prior.as_ref(),
                            RegionId(x as u32),
                            RegionId(y),
                        )
                        + node[i * nr + y as usize];
                    if cand > next[y as usize] {
                        next[y as usize] = cand;
                        bp[y as usize] = x as u32;
                    }
                }
            }
            dp = next;
            back.push(bp);
        }
        let (mut best, mut best_v) = (usize::MAX, f64::NEG_INFINITY);
        for (r, &v) in dp.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = r;
            }
        }
        if best == usize::MAX {
            // No feasible path at all: independent per-position argmax.
            return (0..len)
                .map(|i| argmax_region(&node[i * nr..(i + 1) * nr]))
                .collect();
        }
        let mut path = vec![RegionId(best as u32); len];
        for i in (1..len).rev() {
            best = back[i - 1][best] as usize;
            path[i - 1] = RegionId(best as u32);
        }
        path
    }

    /// Node potentials (`len × |R|`, row-major) and per-edge normalizer
    /// terms for the lattice implied by `Z`.
    fn build_potentials(
        &self,
        z: &[PerturbedWindow],
        len: usize,
        prior: Option<PathPrior<'_>>,
    ) -> (Vec<f64>, Vec<EdgePotential>) {
        let nr = self.graph.num_regions();
        let mut node = vec![0.0f64; len * nr];
        let mut edge = vec![EdgePotential::default(); len.saturating_sub(1)];
        for pw in z {
            let k = pw.window.len();
            assert!(
                !self.log_z1[k].is_empty(),
                "window length {k} not declared at construction"
            );
            assert!(pw.window.b < len, "window exceeds trajectory length");
            let scale = self.scale[k];
            // Distance evidence: separable onto the covered positions.
            for (j, &obs) in pw.regions.iter().enumerate() {
                let i = pw.window.a + j;
                for x in 0..nr {
                    node[i * nr + x] -= scale * self.graph.distance.get(RegionId(x as u32), obs);
                }
            }
            // Normalizer: node term (k = 1), edge term (k = 2), or the
            // chained-bigram surrogate (k = 3).
            match k {
                1 => {
                    let a = pw.window.a;
                    for x in 0..nr {
                        node[a * nr + x] -= self.log_z1[1][x];
                    }
                }
                2 => edge[pw.window.a].z2_weights.push(k),
                3 => {
                    edge[pw.window.a].z2_weights.push(k);
                    edge[pw.window.a + 1].z2_weights.push(k);
                    let mid = pw.window.a + 1;
                    for x in 0..nr {
                        node[mid * nr + x] += self.log_z1[3][x];
                    }
                }
                _ => unreachable!(),
            }
        }
        if let Some(p) = &prior {
            assert_eq!(p.start.len(), nr, "prior start must cover |R|");
            assert_eq!(p.transition.len(), nr * nr, "prior transition must be |R|²");
            for x in 0..nr {
                node[x] += p.start[x].max(PRIOR_FLOOR).ln();
            }
        }
        (node, edge)
    }

    /// The score of lattice edge `x → y`: every window normalizer charged
    /// to this edge, plus the (floored) prior transition log-mass.
    fn edge_score(
        &self,
        e: &EdgePotential,
        prior: Option<&PathPrior<'_>>,
        x: RegionId,
        y: RegionId,
    ) -> f64 {
        let nr = self.graph.num_regions();
        let cell = x.index() * nr + y.index();
        let mut t = 0.0;
        for &k in &e.z2_weights {
            t -= self.log_z2[k][cell];
        }
        if let Some(p) = prior {
            t += p.transition[cell].max(PRIOR_FLOOR).ln();
        }
        t
    }
}

/// Per-lattice-edge normalizer bookkeeping: which window lengths charge a
/// `−ln Z₂(x, y)` term on this edge.
#[derive(Debug, Clone, Default)]
struct EdgePotential {
    z2_weights: Vec<usize>,
}

fn argmax_region(scores: &[f64]) -> RegionId {
    let mut best = 0usize;
    for (i, &v) in scores.iter().enumerate() {
        if v > scores[best] {
            best = i;
        }
    }
    RegionId(best as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Dataset, Poi, PoiId, TimeDomain};

    fn graph() -> (Dataset, crate::region::RegionSet, RegionGraph) {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..36)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m((i % 6) as f64 * 400.0, (i / 6) as f64 * 400.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        let ds = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        let mut cfg = MechanismConfig::default();
        cfg.time_interval_min = 240; // coarse: keep W₂ small for exact sums
        let rs = decompose(&ds, &cfg);
        let g = RegionGraph::build(&ds, &rs);
        (ds, rs, g)
    }

    #[test]
    fn likelihoods_normalize_over_outputs() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 1.0);
        let x = (RegionId(g.bigrams[0].0), RegionId(g.bigrams[0].1));
        let total: f64 = g
            .bigrams
            .iter()
            .map(|&(a, b)| adv.likelihood((RegionId(a), RegionId(b)), x))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "likelihoods sum to {total}");
    }

    #[test]
    fn odds_update_bounded_by_exp_eps_prime() {
        let (_, _, g) = graph();
        for eps in [0.5, 1.0, 2.0] {
            let adv = WindowAdversary::new(&g, eps);
            let &(a, b) = &g.bigrams[g.bigrams.len() / 2];
            let update = adv.max_odds_update((RegionId(a), RegionId(b)));
            assert!(
                update <= eps.exp() + 1e-6,
                "ε'={eps}: odds update {update} exceeds e^ε' = {}",
                eps.exp()
            );
        }
    }

    #[test]
    fn posterior_is_proper_and_prior_sensitive() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 1.0);
        let z = (RegionId(g.bigrams[1].0), RegionId(g.bigrams[1].1));
        let n = g.bigrams.len();
        let uniform = vec![1.0 / n as f64; n];
        let post = adv.posterior(z, &uniform);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // A spiked prior dominates a weak likelihood at small ε'.
        let weak = WindowAdversary::new(&g, 1e-6);
        let mut spiked = vec![1e-9; n];
        spiked[7] = 1.0;
        let post = weak.posterior(z, &spiked);
        let best = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 7, "with no signal the prior decides");
    }

    #[test]
    fn tiny_epsilon_recovery_is_near_chance() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 0.01);
        let truth = (RegionId(g.bigrams[0].0), RegionId(g.bigrams[0].1));
        let mut rng = StdRng::seed_from_u64(1);
        let rate = adv.empirical_recovery_rate(truth, 150, &mut rng);
        let chance = 1.0 / g.bigrams.len() as f64;
        assert!(
            rate < chance * 20.0 + 0.05,
            "ε'=0.01 recovery {rate} too far above chance {chance}"
        );
    }

    #[test]
    fn huge_epsilon_recovery_is_near_certain() {
        let (_, _, g) = graph();
        let adv = WindowAdversary::new(&g, 500.0);
        let truth = (RegionId(g.bigrams[0].0), RegionId(g.bigrams[0].1));
        let mut rng = StdRng::seed_from_u64(2);
        let rate = adv.empirical_recovery_rate(truth, 50, &mut rng);
        assert!(rate > 0.9, "ε'=500 recovery only {rate}");
    }

    /// A length-3 feasible truth path in the toy graph.
    fn feasible_path3(g: &RegionGraph) -> Vec<RegionId> {
        for &(a, b) in &g.bigrams {
            if let Some(&c) = g.successors(RegionId(b)).first() {
                return vec![RegionId(a), RegionId(b), RegionId(c)];
            }
        }
        panic!("no length-3 feasible path in toy graph");
    }

    /// Exact EM log-probability of one window, by direct enumeration of
    /// the candidate universe — the reference the fast decoder must match.
    fn brute_window_logp(
        g: &RegionGraph,
        eps_prime: f64,
        truth: &[RegionId],
        obs: &[RegionId],
    ) -> f64 {
        let k = truth.len();
        let scale = eps_prime / (2.0 * g.distance.ngram_sensitivity(k));
        let w = |cand: &[RegionId]| -> f64 {
            let d: f64 = truth
                .iter()
                .zip(cand)
                .map(|(&t, &c)| g.distance.get(t, c))
                .sum();
            (-scale * d).exp()
        };
        let total: f64 = match k {
            1 => (0..g.num_regions() as u32).map(|r| w(&[RegionId(r)])).sum(),
            2 => g
                .bigrams
                .iter()
                .map(|&(a, b)| w(&[RegionId(a), RegionId(b)]))
                .sum(),
            _ => unreachable!("reference covers k <= 2"),
        };
        (w(obs) / total).ln()
    }

    #[test]
    fn trajectory_log_likelihood_matches_brute_force() {
        let (_, _, g) = graph();
        let truth = feasible_path3(&g);
        let eps_prime = 0.7;
        let mut rng = StdRng::seed_from_u64(11);
        let z = crate::perturb::perturb_region_sequence(&g, &truth, 2, eps_prime, &mut rng);
        let adv = TrajectoryAdversary::new(&g, eps_prime, &[1, 2]);
        // Against several candidate paths, the factorized lattice score
        // must equal the product of exact window probabilities.
        let mut cands = vec![truth.clone()];
        for &(a, b) in g.bigrams.iter().take(6) {
            if let Some(&c) = g.successors(RegionId(b)).first() {
                cands.push(vec![RegionId(a), RegionId(b), RegionId(c)]);
            }
        }
        for path in cands {
            let want: f64 = z
                .iter()
                .map(|pw| {
                    brute_window_logp(&g, eps_prime, &path[pw.window.a..=pw.window.b], &pw.regions)
                })
                .sum();
            let got = adv.log_likelihood(&z, &path);
            assert!(
                (got - want).abs() < 1e-9,
                "path {path:?}: lattice {got} vs brute {want}"
            );
        }
    }

    #[test]
    fn trajectory_map_is_exact_over_all_feasible_paths() {
        let (_, _, g) = graph();
        let truth = feasible_path3(&g);
        let eps_prime = 1.1;
        let mut rng = StdRng::seed_from_u64(13);
        let z = crate::perturb::perturb_region_sequence(&g, &truth, 2, eps_prime, &mut rng);
        let adv = TrajectoryAdversary::new(&g, eps_prime, &[1, 2]);
        let map = adv.map_trajectory(&z, truth.len(), None);
        let map_score = adv.log_likelihood(&z, &map);
        // Enumerate every feasible length-3 path and verify nothing beats
        // the Viterbi decode.
        let mut best = f64::NEG_INFINITY;
        for &(a, b) in &g.bigrams {
            for &c in g.successors(RegionId(b)) {
                let p = vec![RegionId(a), RegionId(b), RegionId(c)];
                best = best.max(adv.log_likelihood(&z, &p));
            }
        }
        assert!(
            (map_score - best).abs() < 1e-9,
            "Viterbi {map_score} vs exhaustive {best}"
        );
        // The decode is itself feasible.
        for w in map.windows(2) {
            assert!(g.is_feasible(w[0], w[1]));
        }
    }

    #[test]
    fn trajectory_map_recovers_truth_at_huge_epsilon() {
        let (_, _, g) = graph();
        let truth = feasible_path3(&g);
        let mut rng = StdRng::seed_from_u64(17);
        let z = crate::perturb::perturb_region_sequence(&g, &truth, 2, 600.0, &mut rng);
        let adv = TrajectoryAdversary::new(&g, 600.0, &[1, 2]);
        assert_eq!(adv.map_trajectory(&z, truth.len(), None), truth);
    }

    #[test]
    fn published_prior_decides_when_signal_is_flat() {
        let (_, _, g) = graph();
        let nr = g.num_regions();
        let truth = feasible_path3(&g);
        let mut rng = StdRng::seed_from_u64(19);
        // Essentially no signal in Z...
        let eps_prime = 1e-6;
        let z = crate::perturb::perturb_region_sequence(&g, &truth, 2, eps_prime, &mut rng);
        let adv = TrajectoryAdversary::new(&g, eps_prime, &[1, 2]);
        // ...and a published model spiked on one feasible path.
        let spike = feasible_path3(&g);
        let mut start = vec![PRIOR_FLOOR; nr];
        start[spike[0].index()] = 1.0;
        let mut transition = vec![PRIOR_FLOOR; nr * nr];
        for w in spike.windows(2) {
            transition[w[0].index() * nr + w[1].index()] = 1.0;
        }
        let map = adv.map_trajectory(
            &z,
            truth.len(),
            Some(PathPrior {
                start: &start,
                transition: &transition,
            }),
        );
        assert_eq!(map, spike, "with no signal the published prior decides");
    }

    #[test]
    fn single_point_and_trigram_windows_decode() {
        let (_, _, g) = graph();
        // len = 1 (one unigram window).
        let truth1 = vec![RegionId(g.bigrams[0].0)];
        let mut rng = StdRng::seed_from_u64(23);
        let z1 = crate::perturb::perturb_region_sequence(&g, &truth1, 1, 400.0, &mut rng);
        let adv1 = TrajectoryAdversary::new(&g, 400.0, &[1]);
        assert_eq!(adv1.map_trajectory(&z1, 1, None), truth1);
        // n = 3 windows go through the chained-bigram surrogate and must
        // still decode to a feasible, truth-like path at high ε′.
        let truth3 = feasible_path3(&g);
        let z3 = crate::perturb::perturb_region_sequence(&g, &truth3, 3, 400.0, &mut rng);
        let adv3 = TrajectoryAdversary::new(&g, 400.0, &[1, 2, 3]);
        let map = adv3.map_trajectory(&z3, truth3.len(), None);
        assert_eq!(map.len(), truth3.len());
        for w in map.windows(2) {
            assert!(g.is_feasible(w[0], w[1]));
        }
        assert_eq!(map, truth3, "near-lossless ε′ must recover the truth");
    }
}

//! The one CRC-32 implementation every self-validating blob in the
//! workspace shares (counts snapshots, WAL records, window rings, the
//! budget ledger, `TSR4` batch frames, and `TSRG` region-graph blobs).
//! Keeping a single definition here — the crate everything else depends
//! on — means a polynomial or reflection tweak can never silently
//! diverge between codecs.
//!
//! Two kernels compute the same function, picked once at runtime:
//!
//! * **Portable slice-by-8** — eight derived tables fold eight input
//!   bytes per iteration instead of one; always available, and the
//!   reference the hardware path is tested bit-identical against.
//! * **Hardware folding** — on `x86_64` with `pclmulqdq`, carry-less
//!   multiply folds 64 bytes per iteration (the SSE4.2 `crc32`
//!   *instruction* computes the Castagnoli polynomial, not the IEEE one
//!   this repo's blobs use, so the CLMUL folding route is the correct
//!   hardware path here); on `aarch64` with the `crc` extension, the
//!   `__crc32d`/`__crc32b` intrinsics evaluate the IEEE polynomial
//!   directly.
//!
//! Dispatch is decided on first use from CPU feature detection and the
//! `TRAJSHARE_FORCE_SCALAR_CRC` environment variable (any non-empty
//! value other than `0` pins the portable kernel — the CI leg that
//! re-runs the suites on feature-rich runners sets it), and can be
//! overridden programmatically with [`set_force_scalar`] so a benchmark
//! can time both kernels in one process. Both kernels produce identical
//! bits for every input, so flipping dispatch mid-run only changes
//! speed, never results.
//!
//! On the batched ingest path the CRC is computed over every payload
//! byte up to three times (client frame encode, server decode
//! validation, WAL record header), so this fold is the single largest
//! fixed per-byte cost of the tier. [`crc32_extend`] additionally lets a
//! caller who already verified a prefix continue the checksum over a few
//! more bytes instead of rescanning the whole buffer.

use std::sync::atomic::{AtomicU8, Ordering};

/// IEEE CRC-32 slice-by-8 lookup tables, built at compile time. Table 0
/// is the classic byte-at-a-time table; table `k` advances a byte `k`
/// positions further through the shift register, so one iteration can
/// consume eight bytes with eight independent lookups.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

const KERNEL_UNDECIDED: u8 = 0;
const KERNEL_SCALAR: u8 = 1;
const KERNEL_HW: u8 = 2;

/// Which kernel [`update`] uses; decided on first call, re-decided by
/// [`set_force_scalar`]. Both kernels are bit-identical, so a racing
/// re-decision is harmless — only speed changes.
static KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNDECIDED);

/// Hardware folding is only profitable (and, on x86, only defined) for
/// runs of at least this many bytes; shorter inputs take the portable
/// kernel regardless of dispatch.
const HW_MIN_LEN: usize = 64;

fn hw_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("pclmulqdq") && std::is_x86_feature_detected!("sse4.1")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("crc")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

#[cold]
fn decide_kernel() -> u8 {
    let forced =
        std::env::var_os("TRAJSHARE_FORCE_SCALAR_CRC").is_some_and(|v| !v.is_empty() && v != *"0");
    let k = if !forced && hw_available() {
        KERNEL_HW
    } else {
        KERNEL_SCALAR
    };
    KERNEL.store(k, Ordering::Relaxed);
    k
}

#[inline]
fn kernel() -> u8 {
    match KERNEL.load(Ordering::Relaxed) {
        KERNEL_UNDECIDED => decide_kernel(),
        k => k,
    }
}

/// Overrides CRC kernel dispatch for this process: `true` pins the
/// portable slice-by-8 kernel, `false` restores feature-detected
/// dispatch (which also honors `TRAJSHARE_FORCE_SCALAR_CRC`). Benchmarks
/// use this to time scalar and hardware kernels in the same run.
pub fn set_force_scalar(force: bool) {
    if force {
        KERNEL.store(KERNEL_SCALAR, Ordering::Relaxed);
    } else {
        KERNEL.store(KERNEL_UNDECIDED, Ordering::Relaxed);
        kernel();
    }
}

/// Name of the kernel the current dispatch decision selects, for logs
/// and bench output.
pub fn kernel_name() -> &'static str {
    match kernel() {
        KERNEL_HW => {
            #[cfg(target_arch = "x86_64")]
            {
                "pclmulqdq-fold"
            }
            #[cfg(target_arch = "aarch64")]
            {
                "aarch64-crc32"
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                unreachable!("hardware CRC kernel selected on an unsupported arch")
            }
        }
        _ => "slice-by-8",
    }
}

/// Folds `data` into a raw (pre-inversion) CRC register state with the
/// portable slice-by-8 kernel. This is the reference semantics; the
/// hardware kernels are tested bit-identical against it.
fn update_scalar(mut crc: u32, data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// PCLMULQDQ folding kernel for the reflected IEEE polynomial
/// (the fold-by-4 / fold-by-1 / Barrett-reduction scheme of Gopal et
/// al., "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ",
/// Intel whitepaper 2009). Operates on the same raw pre-inversion
/// register state as [`update_scalar`].
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use std::arch::x86_64::*;

    // Folding constants for the reflected polynomial 0xEDB8_8320:
    // K1/K2 fold 512 bits by 64 bytes, K3/K4 fold to one 128-bit lane,
    // K5 reduces 128 -> 96 bits, and P_X/U_PRIME are the Barrett
    // constants (the polynomial and its inverse).
    const K1: i64 = 0x1_5444_2bd4;
    const K2: i64 = 0x1_c6e4_1596;
    const K3: i64 = 0x1_7519_97d0;
    const K4: i64 = 0x0_ccaa_009e;
    const K5: i64 = 0x1_63cd_6124;
    const P_X: i64 = 0x1_DB71_0641;
    const U_PRIME: i64 = 0x1_F701_1641;

    /// One folding step: multiplies the low and high halves of `state`
    /// by the two keys and XORs both products into `chunk`.
    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    unsafe fn fold(state: __m128i, chunk: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(state, keys, 0x00);
        let hi = _mm_clmulepi64_si128(state, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(chunk, lo), hi)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn load(data: &mut &[u8]) -> __m128i {
        let v = _mm_loadu_si128(data.as_ptr() as *const __m128i);
        *data = &data[16..];
        v
    }

    /// Raw-register-state update; requires `data.len() >= 64`. The
    /// sub-16-byte tail is finished by the scalar kernel.
    ///
    /// # Safety
    /// Caller must have verified `pclmulqdq` and `sse4.1` support.
    #[target_feature(enable = "pclmulqdq", enable = "sse2", enable = "sse4.1")]
    pub unsafe fn update(crc: u32, mut data: &[u8]) -> u32 {
        debug_assert!(data.len() >= super::HW_MIN_LEN);
        let mut x3 = load(&mut data);
        let mut x2 = load(&mut data);
        let mut x1 = load(&mut data);
        let mut x0 = load(&mut data);
        // The incoming register state folds into the first lane.
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(crc as i32));

        let k1k2 = _mm_set_epi64x(K2, K1);
        while data.len() >= 64 {
            x3 = fold(x3, load(&mut data), k1k2);
            x2 = fold(x2, load(&mut data), k1k2);
            x1 = fold(x1, load(&mut data), k1k2);
            x0 = fold(x0, load(&mut data), k1k2);
        }

        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold(x3, x2, k3k4);
        x = fold(x, x1, k3k4);
        x = fold(x, x0, k3k4);
        while data.len() >= 16 {
            x = fold(x, load(&mut data), k3k4);
        }

        // Fold the 128-bit remainder to 96, then 64 bits.
        let lo32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, lo32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );

        // Barrett reduction down to the 32-bit register state.
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, lo32), pu, 0x10);
        let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, lo32), pu, 0x00), x);
        let folded = _mm_extract_epi32(t2, 1) as u32;

        super::update_scalar(folded, data)
    }
}

/// ARMv8 CRC-extension kernel: `__crc32d`/`__crc32b` evaluate the
/// reflected IEEE polynomial directly on the raw register state, so the
/// loop shape mirrors the scalar kernel with the table lookups replaced
/// by one instruction per 8 bytes.
#[cfg(target_arch = "aarch64")]
mod hwcrc {
    use std::arch::aarch64::{__crc32b, __crc32d};

    /// # Safety
    /// Caller must have verified `crc` extension support.
    #[target_feature(enable = "crc")]
    pub unsafe fn update(mut crc: u32, data: &[u8]) -> u32 {
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            crc = __crc32d(crc, u64::from_le_bytes(c.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            crc = __crc32b(crc, b);
        }
        crc
    }
}

/// Folds `data` into a raw (pre-inversion) CRC register state with the
/// dispatched kernel.
#[inline]
fn update(crc: u32, data: &[u8]) -> u32 {
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    if data.len() >= HW_MIN_LEN && kernel() == KERNEL_HW {
        // SAFETY: `kernel()` only selects the hardware path after
        // `hw_available()` confirmed the required CPU features.
        #[cfg(target_arch = "x86_64")]
        return unsafe { pclmul::update(crc, data) };
        #[cfg(target_arch = "aarch64")]
        return unsafe { hwcrc::update(crc, data) };
    }
    update_scalar(crc, data)
}

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !update(!0, data)
}

/// Continues a finished [`crc32`] over more bytes:
/// `crc32_extend(crc32(a), b) == crc32(a ++ b)`. Lets the batch decoder
/// hand the WAL a whole-payload CRC after verifying the payload's own
/// trailing checksum, without a third full pass over the bytes.
pub fn crc32_extend(crc: u32, data: &[u8]) -> u32 {
    !update(!crc, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The reference byte-at-a-time fold the slice-by-8 kernel replaced.
    fn crc32_reference(data: &[u8]) -> u32 {
        !data.iter().fold(!0u32, |crc, &b| {
            (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize]
        })
    }

    /// Raw-state update via the hardware kernel when this host has one;
    /// `None` on hosts where only the portable kernel exists, so the
    /// bit-identity tests degrade to vacuous there instead of failing.
    fn update_hw(crc: u32, data: &[u8]) -> Option<u32> {
        if !hw_available() || data.len() < HW_MIN_LEN {
            return None;
        }
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: guarded by `hw_available()` above.
            Some(unsafe { pclmul::update(crc, data) })
        }
        #[cfg(target_arch = "aarch64")]
        {
            // SAFETY: guarded by `hw_available()` above.
            Some(unsafe { hwcrc::update(crc, data) })
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            None
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn slice_by_8_matches_reference_at_every_length() {
        // Exercise every alignment of the 8-byte inner loop plus the
        // scalar remainder, on non-trivial data.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8)
            .collect();
        for n in 0..data.len() {
            assert_eq!(crc32(&data[..n]), crc32_reference(&data[..n]), "len {n}");
        }
    }

    #[test]
    fn hardware_kernel_matches_scalar_at_every_length() {
        // Every fold-loop alignment: below the 64-byte entry threshold,
        // exactly at it, every 16-byte lane boundary, and every scalar
        // tail length up to past two 64-byte blocks.
        let data: Vec<u8> = (0..321u32)
            .map(|i| (i.wrapping_mul(0x6D2B_79F5) >> 7) as u8)
            .collect();
        let mut exercised = false;
        for n in 0..=data.len() {
            if let Some(hw) = update_hw(!0, &data[..n]) {
                assert_eq!(hw, update_scalar(!0, &data[..n]), "len {n}");
                exercised = true;
            }
        }
        if hw_available() {
            assert!(exercised, "hardware kernel never ran despite support");
        }
    }

    #[test]
    fn extend_continues_a_finished_crc() {
        let data: Vec<u8> = (0..100u8).collect();
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_extend(crc32(a), b), crc32(&data), "split {split}");
        }
        assert_eq!(crc32_extend(crc32(b"abc"), b""), crc32(b"abc"));
    }

    #[test]
    fn forcing_scalar_dispatch_changes_nothing() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 + 7) as u8).collect();
        let dispatched = crc32(&data);
        set_force_scalar(true);
        let scalar_name = kernel_name();
        let scalar = crc32(&data);
        set_force_scalar(false);
        assert_eq!(scalar_name, "slice-by-8");
        assert_eq!(dispatched, scalar);
        assert_eq!(crc32(&data), scalar);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The hardware kernel is bit-identical to the scalar reference
        /// on arbitrary inputs and arbitrary incoming register states,
        /// including non-lane-multiple tails.
        #[test]
        fn hw_bit_identical_to_scalar(
            data in proptest::collection::vec(0u8..=255, 0..512),
            seed in 0u32..u32::MAX,
        ) {
            if let Some(hw) = update_hw(seed, &data) {
                prop_assert_eq!(hw, update_scalar(seed, &data));
            }
        }

        /// `crc32_extend` composes at arbitrary split points under
        /// dispatch: extending a finished prefix CRC equals hashing the
        /// concatenation (empty sides included).
        #[test]
        fn extend_composes_at_arbitrary_splits(
            data in proptest::collection::vec(0u8..=255, 0..384),
            cut in 0usize..385,
        ) {
            let split = cut.min(data.len());
            let (a, b) = data.split_at(split);
            prop_assert_eq!(crc32_extend(crc32(a), b), crc32(&data));
        }
    }
}

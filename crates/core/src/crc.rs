//! The one CRC-32 implementation every self-validating blob in the
//! workspace shares (counts snapshots, WAL records, window rings, the
//! budget ledger, and `TSRG` region-graph blobs). Keeping a single
//! definition here — the crate everything else depends on — means a
//! polynomial or reflection tweak can never silently diverge between
//! codecs.

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !data.iter().fold(!0u32, |crc, &b| {
        (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}

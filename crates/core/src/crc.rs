//! The one CRC-32 implementation every self-validating blob in the
//! workspace shares (counts snapshots, WAL records, window rings, the
//! budget ledger, `TSR4` batch frames, and `TSRG` region-graph blobs).
//! Keeping a single definition here — the crate everything else depends
//! on — means a polynomial or reflection tweak can never silently
//! diverge between codecs.
//!
//! The kernel is slice-by-8: eight derived tables let the hot loop fold
//! eight input bytes per iteration instead of one. On the batched
//! ingest path the CRC is computed over every payload byte up to three
//! times (client frame encode, server decode validation, WAL record
//! header), so the byte-at-a-time fold was the single largest per-report
//! cost; slice-by-8 is worth ~4-6x on it. [`crc32_extend`] additionally
//! lets a caller who already verified a prefix continue the checksum
//! over a few more bytes instead of rescanning the whole buffer.

/// IEEE CRC-32 slice-by-8 lookup tables, built at compile time. Table 0
/// is the classic byte-at-a-time table; table `k` advances a byte `k`
/// positions further through the shift register, so one iteration can
/// consume eight bytes with eight independent lookups.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// Folds `data` into a raw (pre-inversion) CRC register state.
fn update(mut crc: u32, data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !update(!0, data)
}

/// Continues a finished [`crc32`] over more bytes:
/// `crc32_extend(crc32(a), b) == crc32(a ++ b)`. Lets the batch decoder
/// hand the WAL a whole-payload CRC after verifying the payload's own
/// trailing checksum, without a third full pass over the bytes.
pub fn crc32_extend(crc: u32, data: &[u8]) -> u32 {
    !update(!crc, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference byte-at-a-time fold the slice-by-8 kernel replaced.
    fn crc32_reference(data: &[u8]) -> u32 {
        !data.iter().fold(!0u32, |crc, &b| {
            (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize]
        })
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn slice_by_8_matches_reference_at_every_length() {
        // Exercise every alignment of the 8-byte inner loop plus the
        // scalar remainder, on non-trivial data.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8)
            .collect();
        for n in 0..data.len() {
            assert_eq!(crc32(&data[..n]), crc32_reference(&data[..n]), "len {n}");
        }
    }

    #[test]
    fn extend_continues_a_finished_crc() {
        let data: Vec<u8> = (0..100u8).collect();
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_extend(crc32(a), b), crc32(&data), "split {split}");
        }
        assert_eq!(crc32_extend(crc32(b"abc"), b""), crc32(b"abc"));
    }
}

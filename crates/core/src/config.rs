//! Mechanism configuration (§6.2 experimental settings as defaults).

use serde::{Deserialize, Serialize};

/// Which dimension a merge pass coarsens (§5.3 STC region merging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeDimension {
    /// Coarsen the spatial grid one level (4×4 → 2×2 → 1×1).
    Space,
    /// Double the time-interval width (1 h → 2 h → 4 h ...).
    Time,
    /// Lift categories one hierarchy level (leaf → mid → root).
    Category,
}

/// How to solve the region-level reconstruction (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReconstructionSolver {
    /// Exact dynamic programming over the bigram lattice (default; the
    /// LP relaxation of Eq. 10–14 is integral, so this is equivalent).
    #[default]
    Viterbi,
    /// The paper-faithful ILP via our simplex + branch & bound.
    Ilp,
}

/// Full configuration of the n-gram mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismConfig {
    /// Privacy budget ε (§6.2 default: 5, "in line with real-world LDP
    /// deployments").
    pub epsilon: f64,
    /// n-gram length (§6.2 default: 2; §5.8 recommends bigrams).
    pub n: usize,
    /// Finest spatial grid granularity `g_s` (cells per side; default 4).
    pub gs: u32,
    /// STC time-interval width in minutes (default 60 = hourly).
    pub time_interval_min: u32,
    /// Minimum POIs per STC region, κ (default 10).
    pub kappa: usize,
    /// Merge passes in order (§6.2 default: spatial first, then time, then
    /// category).
    pub merge_order: Vec<MergeDimension>,
    /// Popularity guard: regions whose most popular member is in the top
    /// `popularity_guard_quantile` of all POIs are never merged (Figure 2c).
    /// `None` disables the guard.
    pub popularity_guard_quantile: Option<f64>,
    /// Rejection-sampling cap γ for POI-level reconstruction (§5.6 default
    /// 50 000).
    pub gamma: usize,
    /// Reconstruction solver.
    pub solver: ReconstructionSolver,
}

impl Default for MechanismConfig {
    fn default() -> Self {
        Self {
            epsilon: 5.0,
            n: 2,
            gs: 4,
            time_interval_min: 60,
            kappa: 10,
            merge_order: vec![
                MergeDimension::Space,
                MergeDimension::Space,
                MergeDimension::Time,
                MergeDimension::Time,
                MergeDimension::Category,
                MergeDimension::Category,
            ],
            popularity_guard_quantile: Some(0.99),
            gamma: 50_000,
            solver: ReconstructionSolver::Viterbi,
        }
    }
}

impl MechanismConfig {
    /// Validates parameter ranges; call before building a mechanism.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if !(1..=3).contains(&self.n) {
            return Err(format!(
                "n must be 1, 2 or 3 (got {}); §5.8 recommends 2",
                self.n
            ));
        }
        if self.gs == 0 {
            return Err("gs must be positive".into());
        }
        if self.time_interval_min == 0 || 1440 % self.time_interval_min != 0 {
            return Err(format!(
                "time_interval_min {} must divide 1440",
                self.time_interval_min
            ));
        }
        if self.kappa == 0 {
            return Err("kappa must be at least 1".into());
        }
        if let Some(q) = self.popularity_guard_quantile {
            if !(0.0..=1.0).contains(&q) {
                return Err(format!("popularity_guard_quantile {q} must be in [0, 1]"));
            }
        }
        if self.gamma == 0 {
            return Err("gamma must be positive".into());
        }
        Ok(())
    }

    /// Builder-style setter for ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style setter for n.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Builder-style setter for the solver.
    pub fn with_solver(mut self, solver: ReconstructionSolver) -> Self {
        self.solver = solver;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = MechanismConfig::default();
        assert_eq!(c.epsilon, 5.0);
        assert_eq!(c.n, 2);
        assert_eq!(c.gs, 4);
        assert_eq!(c.time_interval_min, 60);
        assert_eq!(c.kappa, 10);
        assert_eq!(c.gamma, 50_000);
        assert!(c.validate().is_ok());
        // Default merge order: space first, then time, then category (§6.2).
        assert_eq!(c.merge_order[0], MergeDimension::Space);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(MechanismConfig::default()
            .with_epsilon(0.0)
            .validate()
            .is_err());
        assert!(MechanismConfig::default().with_n(4).validate().is_err());
        assert!(MechanismConfig::default().with_n(0).validate().is_err());
        let mut c = MechanismConfig::default();
        c.time_interval_min = 7;
        assert!(c.validate().is_err());
        let mut c = MechanismConfig::default();
        c.kappa = 0;
        assert!(c.validate().is_err());
        let mut c = MechanismConfig::default();
        c.popularity_guard_quantile = Some(1.5);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let c = MechanismConfig::default()
            .with_epsilon(1.0)
            .with_n(3)
            .with_solver(ReconstructionSolver::Ilp);
        assert_eq!(c.epsilon, 1.0);
        assert_eq!(c.n, 3);
        assert_eq!(c.solver, ReconstructionSolver::Ilp);
        assert!(c.validate().is_ok());
    }
}

//! LDPTrace-style client reports (arXiv 2302.06180), adapted to the STC
//! region lattice.
//!
//! LDPTrace perturbs a small set of *categorical summaries* of each
//! trajectory with k-ary randomized response instead of perturbing the
//! trajectory itself: the start region, the end region, one transition
//! drawn from the feasible-bigram set `W₂`, and a length bucket. Each
//! report gets ε/4, so one [`LdpTraceObservation`] satisfies ε-LDP by
//! basic composition. The server side (frequency debiasing, model fit,
//! synthesis) lives in `trajshare_aggregate::ldptrace` — this module is
//! exactly what leaves the client device.
//!
//! Adaptation notes, also surfaced in the bench docs: the original paper
//! grids space uniformly and reports every adjacent cell pair; here the
//! categorical domains are the STC regions and the reachability-feasible
//! bigram set, and a single uniformly-chosen transition is reported so the
//! budget split stays constant in trajectory length.

use crate::region::RegionId;
use crate::regiongraph::RegionGraph;
use rand::Rng;
use std::collections::HashMap;
use trajshare_mech::k_randomized_response;

/// Client-side LDPTrace reporter over a fixed region graph.
#[derive(Debug, Clone)]
pub struct LdpTraceClient<'a> {
    graph: &'a RegionGraph,
    epsilon: f64,
    max_len: usize,
    /// `(a, b) → index into graph.bigrams`, the transition report domain.
    w2_index: HashMap<(u32, u32), usize>,
}

/// One user's ε-LDP report: four randomized-response draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdpTraceObservation {
    /// Perturbed start region index, in `0..|R|`.
    pub start: usize,
    /// Perturbed end region index, in `0..|R|`.
    pub end: usize,
    /// Perturbed transition index, in `0..|W₂|`.
    pub transition: usize,
    /// Perturbed length bucket, in `0..max_len` (bucket `i` ⇔ length `i+1`).
    pub len_bucket: usize,
}

impl<'a> LdpTraceClient<'a> {
    /// Creates a client with total budget `epsilon` (ε/4 per report).
    /// `max_len` bounds the length-bucket domain.
    pub fn new(graph: &'a RegionGraph, epsilon: f64, max_len: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite());
        assert!(max_len >= 1);
        let w2_index = graph
            .bigrams
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ((a, b), i))
            .collect();
        Self {
            graph,
            epsilon,
            max_len,
            w2_index,
        }
    }

    /// Budget per randomized-response draw.
    pub fn eps_per_report(&self) -> f64 {
        self.epsilon / 4.0
    }

    /// Perturbs one region path into an [`LdpTraceObservation`].
    ///
    /// The transition truth is one uniformly drawn in-`W₂` hop of `path`;
    /// when the path has no such hop (length 1, or every hop infeasible —
    /// possible for encoded paths only through upstream bugs, but handled
    /// anyway) the truth is a uniform `W₂` index. Uniform-truth-then-RR is
    /// a mixture of ε/4-LDP channels and stays ε/4-LDP.
    pub fn observe<R: Rng + ?Sized>(&self, path: &[RegionId], rng: &mut R) -> LdpTraceObservation {
        assert!(!path.is_empty(), "cannot observe an empty path");
        let nr = self.graph.num_regions();
        let nw = self.graph.num_bigrams();
        let eps = self.eps_per_report();

        let start = rr_or_constant(path[0].index(), nr, eps, rng);
        let end = rr_or_constant(path[path.len() - 1].index(), nr, eps, rng);

        // True transitions that exist in the report domain.
        let hops: Vec<usize> = path
            .windows(2)
            .filter_map(|w| self.w2_index.get(&(w[0].0, w[1].0)).copied())
            .collect();
        let true_hop = if hops.is_empty() {
            rng.random_range(0..nw.max(1))
        } else {
            hops[rng.random_range(0..hops.len())]
        };
        let transition = rr_or_constant(true_hop, nw, eps, rng);

        let bucket = path.len().min(self.max_len) - 1;
        let len_bucket = rr_or_constant(bucket, self.max_len, eps, rng);

        LdpTraceObservation {
            start,
            end,
            transition,
            len_bucket,
        }
    }
}

/// k-RR, degrading gracefully to the only possible answer when the domain
/// is a single category (k-RR itself requires k ≥ 2).
fn rr_or_constant<R: Rng + ?Sized>(truth: usize, k: usize, eps: f64, rng: &mut R) -> usize {
    if k < 2 {
        0
    } else {
        k_randomized_response(truth, k, eps, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use crate::region::RegionSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Dataset, Poi, PoiId, TimeDomain, Trajectory};

    fn graph() -> (Dataset, RegionSet, RegionGraph) {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..36)
            .map(|i| {
                let loc = origin.offset_m((i % 6) as f64 * 400.0, (i / 6) as f64 * 400.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        let dataset = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        let mut cfg = MechanismConfig::default();
        cfg.time_interval_min = 240;
        let regions = decompose(&dataset, &cfg);
        let graph = RegionGraph::build(&dataset, &regions);
        (dataset, regions, graph)
    }

    fn feasible_path(ds: &Dataset, rs: &RegionSet) -> Vec<RegionId> {
        let traj = Trajectory::from_pairs(&[(0, 60), (7, 63), (14, 66)]);
        rs.encode(ds, &traj).expect("toy trajectory encodes")
    }

    #[test]
    fn observations_stay_in_domain() {
        let (ds, rs, g) = graph();
        let path = feasible_path(&ds, &rs);
        let client = LdpTraceClient::new(&g, 1.0, 8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let o = client.observe(&path, &mut rng);
            assert!(o.start < g.num_regions());
            assert!(o.end < g.num_regions());
            assert!(o.transition < g.num_bigrams());
            assert!(o.len_bucket < 8);
        }
    }

    #[test]
    fn huge_epsilon_reports_truth() {
        let (ds, rs, g) = graph();
        let path = feasible_path(&ds, &rs);
        let client = LdpTraceClient::new(&g, 2000.0, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let o = client.observe(&path, &mut rng);
        assert_eq!(o.start, path[0].index());
        assert_eq!(o.end, path[path.len() - 1].index());
        assert_eq!(o.len_bucket, path.len() - 1);
        // The reported transition is one of the path's true hops.
        let (a, b) = g.bigrams[o.transition];
        let is_hop = path.windows(2).any(|w| (w[0].0, w[1].0) == (a, b));
        assert!(is_hop, "ε→∞ transition report must be a real hop");
    }

    #[test]
    fn single_region_path_uses_uniform_transition_truth() {
        let (_, _, g) = graph();
        let client = LdpTraceClient::new(&g, 1.0, 8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let o = client.observe(&[RegionId(0)], &mut rng);
            assert!(o.transition < g.num_bigrams());
            assert_eq!(o.len_bucket.min(7), o.len_bucket);
        }
    }

    #[test]
    fn same_seed_same_observation() {
        let (ds, rs, g) = graph();
        let path = feasible_path(&ds, &rs);
        let client = LdpTraceClient::new(&g, 1.0, 8);
        let a = client.observe(&path, &mut StdRng::seed_from_u64(9));
        let b = client.observe(&path, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn length_saturates_at_max_bucket() {
        let (_, _, g) = graph();
        // ε/4 must stay well under ln(f64::MAX) so e^{ε/4} is finite.
        let client = LdpTraceClient::new(&g, 100.0, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let long = vec![RegionId(0); 6];
        let o = client.observe(&long, &mut rng);
        assert_eq!(o.len_bucket, 1, "length 6 clamps into the top bucket");
    }
}

//! Alternative approaches the paper compares against (§5.9) and the global
//! solution (§5.1).
//!
//! * [`IndependentMechanism`] — `IndReach` / `IndNoReach`: each
//!   (POI, timestep) pair perturbed independently,
//! * [`PoiNgramMechanism`] — `NGramNoH` (POI-level n-grams, no hierarchy)
//!   and `PhysDist` (physical distance only, no external knowledge),
//! * [`GlobalMechanism`] — exhaustive EM over the full trajectory space,
//!   feasible only for toy worlds; includes the subsampled-EM and
//!   Permute-and-Flip variants discussed in §5.1,
//! * [`LdpTraceClient`] — LDPTrace-style categorical-summary reports
//!   (arXiv 2302.06180), the red-team comparison baseline.

mod global;
mod independent;
mod ldptrace;
mod poi_ngram;

pub use global::{GlobalMechanism, GlobalVariant};
pub use independent::IndependentMechanism;
pub use ldptrace::{LdpTraceClient, LdpTraceObservation};
pub use poi_ngram::PoiNgramMechanism;

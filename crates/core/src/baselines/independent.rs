//! Independent per-point perturbation: `IndReach` and `IndNoReach` (§5.9).
//!
//! Each of the `|τ|` points receives budget ε/|τ|, split evenly between its
//! timestep draw and its POI draw. `IndReach` conditions each point's
//! candidate set on the *previously released* output point (legal — outputs
//! are public), so its trajectories satisfy reachability by construction.
//! `IndNoReach` samples unconditionally and repairs the output by
//! post-processing: sorting/strictifying timesteps and shifting them until
//! reachability holds ("we use post-processing to shift the perturbed
//! timesteps to ensure a realistic output").

use crate::distances::TIME_CAP_H;
use crate::mechanism::{Mechanism, MechanismOutput, StageTimings};
use rand::Rng;
use std::time::Instant;
use trajshare_mech::ExponentialMechanism;
use trajshare_model::{Dataset, PoiId, ReachabilityOracle, Timestep, Trajectory, TrajectoryPoint};

/// `IndReach` / `IndNoReach`, selected by `use_reachability`.
#[derive(Debug, Clone)]
pub struct IndependentMechanism {
    dataset: Dataset,
    epsilon: f64,
    use_reachability: bool,
    /// Per-POI-draw sensitivity: combined space+category point distance cap.
    poi_sensitivity: f64,
}

impl IndependentMechanism {
    /// Creates the mechanism. `use_reachability = true` gives `IndReach`.
    pub fn build(dataset: &Dataset, epsilon: f64, use_reachability: bool) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite());
        let diam_km = dataset.pois.bbox().diagonal_m() / 1000.0;
        let dc_max = dataset.category_distance.max_distance();
        let poi_sensitivity = (diam_km * diam_km + dc_max * dc_max).sqrt().max(1e-9);
        Self {
            dataset: dataset.clone(),
            epsilon,
            use_reachability,
            poi_sensitivity,
        }
    }

    /// Space+category distance between two POIs (no time component — time
    /// is perturbed separately).
    fn poi_distance(&self, a: PoiId, b: PoiId) -> f64 {
        let ds_km = self.dataset.poi_distance_m(a, b) / 1000.0;
        let dc = self.dataset.category_distance.get(
            self.dataset.pois.get(a).category,
            self.dataset.pois.get(b).category,
        );
        (ds_km * ds_km + dc * dc).sqrt()
    }

    /// EM draw of a timestep from `[min_t, max_t]` with quality −|gap|
    /// (hours, capped). The bounds keep IndReach outputs strictly
    /// increasing with room for the remaining points.
    fn sample_time<R: Rng + ?Sized>(
        &self,
        truth: Timestep,
        min_t: u16,
        max_t: u16,
        eps: f64,
        rng: &mut R,
    ) -> Timestep {
        let em = ExponentialMechanism::new(eps, TIME_CAP_H);
        let hi = max_t.max(min_t);
        let qualities: Vec<f64> = (min_t..=hi)
            .map(|t| {
                let gap_h = self.dataset.time.gap_minutes(truth, Timestep(t)) as f64 / 60.0;
                -gap_h.min(TIME_CAP_H)
            })
            .collect();
        let idx = em.sample(&qualities, rng).expect("non-empty timestep set");
        Timestep(min_t + idx as u16)
    }

    /// EM draw of a POI from `candidates` with quality −d(truth, ·).
    fn sample_poi<R: Rng + ?Sized>(
        &self,
        truth: PoiId,
        candidates: &[PoiId],
        eps: f64,
        rng: &mut R,
    ) -> PoiId {
        let em = ExponentialMechanism::new(eps, self.poi_sensitivity);
        let qualities: Vec<f64> = candidates
            .iter()
            .map(|&c| -self.poi_distance(truth, c))
            .collect();
        let idx = em.sample(&qualities, rng).expect("non-empty candidate set");
        candidates[idx]
    }
}

impl Mechanism for IndependentMechanism {
    fn name(&self) -> &'static str {
        if self.use_reachability {
            "IndReach"
        } else {
            "IndNoReach"
        }
    }

    fn perturb(&self, trajectory: &Trajectory, rng: &mut dyn rand::RngCore) -> MechanismOutput {
        assert!(!trajectory.is_empty());
        let len = trajectory.len();
        // ε/|τ| per point, halved between the time and POI draws.
        let eps_each = self.epsilon / (2.0 * len as f64);
        let oracle = ReachabilityOracle::new(&self.dataset);
        let num_steps = self.dataset.time.num_timesteps() as u16;

        let t0 = Instant::now();
        let mut out: Vec<TrajectoryPoint> = Vec::with_capacity(len);
        for (i, pt) in trajectory.points().iter().enumerate() {
            // Leave room for the points after this one (IndReach only).
            let remaining = (len - 1 - i) as u16;
            let (min_t, max_t, prev_poi) = if self.use_reachability {
                let hi = num_steps - 1 - remaining;
                match out.last() {
                    Some(p) => (((p.t.0 + 1).min(hi)), hi, Some(p.poi)),
                    None => (0, hi, None),
                }
            } else {
                (0, num_steps - 1, None)
            };
            let t_hat = self.sample_time(pt.t, min_t, max_t, eps_each, rng);

            // Candidate POIs: open at the drawn time; IndReach additionally
            // requires reachability from the previous *output* point.
            let mut candidates: Vec<PoiId> = self
                .dataset
                .pois
                .ids()
                .filter(|&p| {
                    self.dataset
                        .pois
                        .get(p)
                        .opening
                        .is_open_at(&self.dataset.time, t_hat)
                })
                .collect();
            if let Some(prev) = prev_poi {
                let gap = self.dataset.time.gap_minutes(out.last().unwrap().t, t_hat) as f64;
                let theta = oracle.threshold_m(gap);
                candidates.retain(|&p| self.dataset.poi_distance_m(prev, p) <= theta);
            }
            if candidates.is_empty() {
                // Degenerate corner (nothing open / nothing reachable):
                // relax to the full POI set so the draw is always defined.
                candidates = self.dataset.pois.ids().collect();
            }
            let p_hat = self.sample_poi(pt.poi, &candidates, eps_each, rng);
            let _ = i;
            out.push(TrajectoryPoint {
                poi: p_hat,
                t: t_hat,
            });
        }
        let perturb = t0.elapsed();

        // Post-processing for IndNoReach: sort + strictify + shift times
        // until reachability holds.
        let t1 = Instant::now();
        if !self.use_reachability {
            let mut times: Vec<u16> = out.iter().map(|p| p.t.0).collect();
            times.sort_unstable();
            for i in 1..times.len() {
                if times[i] <= times[i - 1] {
                    times[i] = (times[i - 1] + 1).min(num_steps - 1);
                }
            }
            for (p, t) in out.iter_mut().zip(&times) {
                p.t = Timestep(*t);
            }
            // Shift forward until each hop is reachable.
            let gt = self.dataset.time.gt_minutes() as f64;
            for i in 1..out.len() {
                let d = self.dataset.poi_distance_m(out[i - 1].poi, out[i].poi);
                // Earlier shifts may have pushed the previous point past
                // this one; saturate and let the loop/backward pass repair.
                let mut steps = (out[i].t.0.saturating_sub(out[i - 1].t.0)).max(1);
                while oracle.threshold_m(steps as f64 * gt) < d && steps < num_steps {
                    steps += 1;
                }
                let target = (out[i - 1].t.0 + steps).min(num_steps - 1);
                if out[i].t.0 < target {
                    out[i].t = Timestep(target);
                }
            }
            // Day-end collisions: walk back preserving strict monotonicity.
            for i in (0..out.len() - 1).rev() {
                if out[i].t.0 >= out[i + 1].t.0 {
                    out[i].t = Timestep(out[i + 1].t.0.saturating_sub(1));
                }
            }
        }
        let other = t1.elapsed();

        MechanismOutput {
            trajectory: Trajectory::new(out),
            timings: StageTimings {
                perturb,
                other,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, TimeDomain};

    fn dataset() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..50)
            .map(|i| {
                let loc = origin.offset_m((i % 10) as f64 * 300.0, (i / 10) as f64 * 300.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn names_reflect_variant() {
        let ds = dataset();
        assert_eq!(
            IndependentMechanism::build(&ds, 1.0, true).name(),
            "IndReach"
        );
        assert_eq!(
            IndependentMechanism::build(&ds, 1.0, false).name(),
            "IndNoReach"
        );
    }

    #[test]
    fn ind_reach_outputs_satisfy_reachability_by_construction() {
        let ds = dataset();
        let mech = IndependentMechanism::build(&ds, 2.0, true);
        let traj = Trajectory::from_pairs(&[(0, 60), (11, 63), (22, 66)]);
        let oracle = ReachabilityOracle::new(&ds);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..25 {
            let out = mech.perturb(&traj, &mut rng);
            for w in out.trajectory.points().windows(2) {
                assert!(w[1].t > w[0].t);
                assert!(oracle.is_reachable((w[0].poi, w[0].t), (w[1].poi, w[1].t)));
            }
        }
    }

    #[test]
    fn ind_noreach_post_processing_repairs_output() {
        let ds = dataset();
        let mech = IndependentMechanism::build(&ds, 0.5, false);
        let traj = Trajectory::from_pairs(&[(0, 60), (11, 63), (22, 66), (33, 70)]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..25 {
            let out = mech.perturb(&traj, &mut rng);
            assert_eq!(out.trajectory.len(), 4);
            for w in out.trajectory.points().windows(2) {
                assert!(w[1].t > w[0].t, "times must strictly increase after repair");
            }
        }
    }

    #[test]
    fn high_epsilon_recovers_truth() {
        let ds = dataset();
        let mech = IndependentMechanism::build(&ds, 500.0, true);
        let traj = Trajectory::from_pairs(&[(0, 60), (11, 63), (22, 66)]);
        let mut rng = StdRng::seed_from_u64(3);
        let out = mech.perturb(&traj, &mut rng);
        let matches = traj
            .points()
            .iter()
            .zip(out.trajectory.points())
            .filter(|(a, b)| a.poi == b.poi)
            .count();
        assert!(
            matches >= 2,
            "with huge ε most POIs should be exact, got {matches}/3"
        );
    }

    #[test]
    fn timings_report_perturb_dominant() {
        let ds = dataset();
        let mech = IndependentMechanism::build(&ds, 1.0, true);
        let traj = Trajectory::from_pairs(&[(0, 60), (11, 63)]);
        let out = mech.perturb(&traj, &mut StdRng::seed_from_u64(4));
        assert_eq!(out.timings.optimal_reconstruct, std::time::Duration::ZERO);
    }
}

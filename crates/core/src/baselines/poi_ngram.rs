//! POI-level n-gram baselines: `NGramNoH` and `PhysDist` (§5.9).
//!
//! Both perturb the time and POI dimensions separately "in order to control
//! the size of W_n", splitting the budget as ε′ = ε/(2|τ|+n−1): |τ| timestep
//! draws plus (|τ|+n−1) POI-window draws. The differences:
//!
//! * **NGramNoH** uses the combined space+category distance and prunes POI
//!   candidates with external knowledge (opening hours) — it is "our
//!   mechanism applied just on the POI level" without the STC hierarchy.
//! * **PhysDist** "ignores external knowledge and only uses the physical
//!   distance": the quality function is d_s alone, and no opening-hours
//!   pruning is applied, which both floods the candidate sets (hence its
//!   worst-of-all runtime in Table 3) and randomizes categories (hence its
//!   d_c ≈ 8.7 in Table 2).
//!
//! Reconstruction mirrors §5.5 at the POI level: node errors against the
//! perturbed windows, an MBR restriction, and a continuity lattice solved
//! exactly (Viterbi; the ILP formulation at POI scale is what made the
//! paper's PhysDist take 67 s per trajectory).

use crate::distances::TIME_CAP_H;
use crate::mechanism::{Mechanism, MechanismOutput, StageTimings};
use crate::perturb::{window_schedule, Window};
use rand::Rng;
use std::time::Instant;
use trajshare_lp::LatticeProblem;
use trajshare_mech::{sample_from_weights, ExponentialMechanism};
use trajshare_model::{Dataset, PoiId, ReachabilityOracle, Timestep, Trajectory, TrajectoryPoint};

/// `NGramNoH` / `PhysDist`, selected by the two knowledge flags.
#[derive(Debug, Clone)]
pub struct PoiNgramMechanism {
    dataset: Dataset,
    epsilon: f64,
    n: usize,
    /// Include the category term in the quality function (NGramNoH: yes).
    use_category: bool,
    /// Restrict candidates to POIs open at the perturbed time (NGramNoH:
    /// yes; PhysDist ignores external knowledge entirely).
    filter_opening: bool,
    /// Per-element distance cap (sensitivity source).
    dmax_point: f64,
}

impl PoiNgramMechanism {
    /// Builds `NGramNoH`.
    pub fn ngram_noh(dataset: &Dataset, epsilon: f64, n: usize) -> Self {
        Self::build(dataset, epsilon, n, true, true)
    }

    /// Builds `PhysDist`.
    pub fn phys_dist(dataset: &Dataset, epsilon: f64, n: usize) -> Self {
        Self::build(dataset, epsilon, n, false, false)
    }

    fn build(
        dataset: &Dataset,
        epsilon: f64,
        n: usize,
        use_category: bool,
        filter_opening: bool,
    ) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite());
        assert!((1..=3).contains(&n), "n must be 1..=3");
        let diam_km = dataset.pois.bbox().diagonal_m() / 1000.0;
        let dc_max = dataset.category_distance.max_distance();
        let dmax_point = if use_category {
            (diam_km * diam_km + dc_max * dc_max).sqrt()
        } else {
            diam_km
        }
        .max(1e-9);
        Self {
            dataset: dataset.clone(),
            epsilon,
            n,
            use_category,
            filter_opening,
            dmax_point,
        }
    }

    /// Element distance: combined space(+category) — time is handled by the
    /// separate time perturbation.
    fn d_point(&self, a: PoiId, b: PoiId) -> f64 {
        let ds_km = self.dataset.poi_distance_m(a, b) / 1000.0;
        if !self.use_category {
            return ds_km;
        }
        let dc = self.dataset.category_distance.get(
            self.dataset.pois.get(a).category,
            self.dataset.pois.get(b).category,
        );
        (ds_km * ds_km + dc * dc).sqrt()
    }

    /// Per-element EM weights for one window element, zeroing non-candidates.
    fn element_weights(&self, truth: PoiId, t_hat: Timestep, scale: f64) -> Vec<f64> {
        self.dataset
            .pois
            .all()
            .iter()
            .map(|q| {
                if self.filter_opening && !q.opening.is_open_at(&self.dataset.time, t_hat) {
                    0.0
                } else {
                    (-scale * self.d_point(truth, q.id)).exp()
                }
            })
            .collect()
    }

    /// Samples one POI window (length 1–3) under reachability w.r.t. the
    /// perturbed timesteps.
    fn sample_window<R: Rng + ?Sized>(
        &self,
        truth: &[PoiId],
        times: &[Timestep],
        eps_prime: f64,
        oracle: &ReachabilityOracle,
        rng: &mut R,
    ) -> Vec<PoiId> {
        let k = truth.len();
        let scale = eps_prime / (2.0 * k as f64 * self.dmax_point);
        let weights: Vec<Vec<f64>> = (0..k)
            .map(|i| self.element_weights(truth[i], times[i], scale))
            .collect();
        let ball = |p: PoiId, gap_min: f64| -> Vec<PoiId> {
            let theta = oracle.threshold_m(gap_min);
            if theta.is_infinite() {
                self.dataset.pois.ids().collect()
            } else {
                self.dataset.pois.within_radius(
                    self.dataset.pois.get(p).location,
                    theta,
                    self.dataset.metric,
                )
            }
        };
        let product_fallback = |rng: &mut R| -> Vec<PoiId> {
            (0..k)
                .map(|i| {
                    let idx = sample_from_weights(&weights[i], rng).unwrap_or(truth[i].index());
                    PoiId(idx as u32)
                })
                .collect()
        };
        match k {
            1 => product_fallback(rng),
            2 => {
                let gap = self.dataset.time.gap_minutes(times[0], times[1]) as f64;
                // Marginal over tails: A[u] * sum_{v reachable} B[v].
                let marginal: Vec<f64> = self
                    .dataset
                    .pois
                    .ids()
                    .map(|u| {
                        let a = weights[0][u.index()];
                        if a == 0.0 {
                            return 0.0;
                        }
                        let s: f64 = ball(u, gap).iter().map(|&v| weights[1][v.index()]).sum();
                        a * s
                    })
                    .collect();
                match sample_from_weights(&marginal, rng) {
                    Some(u) => {
                        let cands = ball(PoiId(u as u32), gap);
                        let w: Vec<f64> = cands.iter().map(|&v| weights[1][v.index()]).collect();
                        let vi = sample_from_weights(&w, rng).expect("non-empty ball");
                        vec![PoiId(u as u32), cands[vi]]
                    }
                    None => product_fallback(rng),
                }
            }
            3 => {
                let gap01 = self.dataset.time.gap_minutes(times[0], times[1]) as f64;
                let gap12 = self.dataset.time.gap_minutes(times[1], times[2]) as f64;
                let marginal: Vec<f64> = self
                    .dataset
                    .pois
                    .ids()
                    .map(|y| {
                        let b = weights[1][y.index()];
                        if b == 0.0 {
                            return 0.0;
                        }
                        let sp: f64 = ball(y, gap01).iter().map(|&x| weights[0][x.index()]).sum();
                        let ss: f64 = ball(y, gap12).iter().map(|&z| weights[2][z.index()]).sum();
                        b * sp * ss
                    })
                    .collect();
                match sample_from_weights(&marginal, rng) {
                    Some(y) => {
                        let y = PoiId(y as u32);
                        let preds = ball(y, gap01);
                        let succs = ball(y, gap12);
                        let wp: Vec<f64> = preds.iter().map(|&x| weights[0][x.index()]).collect();
                        let ws: Vec<f64> = succs.iter().map(|&z| weights[2][z.index()]).collect();
                        let xi = sample_from_weights(&wp, rng).expect("non-empty");
                        let zi = sample_from_weights(&ws, rng).expect("non-empty");
                        vec![preds[xi], y, succs[zi]]
                    }
                    None => product_fallback(rng),
                }
            }
            _ => unreachable!(),
        }
    }
}

impl Mechanism for PoiNgramMechanism {
    fn name(&self) -> &'static str {
        if self.use_category {
            "NGramNoH"
        } else {
            "PhysDist"
        }
    }

    fn perturb(&self, trajectory: &Trajectory, rng: &mut dyn rand::RngCore) -> MechanismOutput {
        assert!(!trajectory.is_empty());
        let len = trajectory.len();
        let n = self.n.min(len);
        // ε' = ε / (2|τ| + n − 1): |τ| time draws + (|τ|+n−1) POI windows.
        let eps_prime = self.epsilon / (2 * len + n - 1) as f64;
        let oracle = ReachabilityOracle::new(&self.dataset);
        let num_steps = self.dataset.time.num_timesteps() as u16;

        // --- Stage 1a: timestep perturbation. ---
        let t0 = Instant::now();
        let em_t = ExponentialMechanism::new(eps_prime, TIME_CAP_H);
        let mut times: Vec<u16> = trajectory
            .points()
            .iter()
            .map(|pt| {
                let q: Vec<f64> = (0..num_steps)
                    .map(|t| {
                        let gap_h = self.dataset.time.gap_minutes(pt.t, Timestep(t)) as f64 / 60.0;
                        -gap_h.min(TIME_CAP_H)
                    })
                    .collect();
                em_t.sample(&q, rng).expect("timesteps non-empty") as u16
            })
            .collect();
        // Post-processing: order and strictify.
        times.sort_unstable();
        for i in 1..times.len() {
            if times[i] <= times[i - 1] {
                times[i] = (times[i - 1] + 1).min(num_steps - 1);
            }
        }
        for i in (0..times.len() - 1).rev() {
            if times[i] >= times[i + 1] {
                times[i] = times[i + 1].saturating_sub(1);
            }
        }
        let times: Vec<Timestep> = times.into_iter().map(Timestep).collect();

        // --- Stage 1b: POI window perturbation. ---
        let schedule = window_schedule(len, n);
        let truth: Vec<PoiId> = trajectory.points().iter().map(|p| p.poi).collect();
        let z: Vec<(Window, Vec<PoiId>)> = schedule
            .into_iter()
            .map(|w| {
                let sampled = self.sample_window(
                    &truth[w.a..=w.b],
                    &times[w.a..=w.b],
                    eps_prime,
                    &oracle,
                    rng,
                );
                (w, sampled)
            })
            .collect();
        let perturb = t0.elapsed();

        // --- Stage 2: reconstruction prep (MBR + node errors + lattice). ---
        let t1 = Instant::now();
        let mut mbr: Option<trajshare_geo::BoundingBox> = None;
        for (_, pois) in &z {
            for &p in pois {
                let loc = self.dataset.pois.get(p).location;
                match &mut mbr {
                    Some(bb) => bb.expand(loc),
                    None => mbr = Some(trajshare_geo::BoundingBox::from_point(loc)),
                }
            }
        }
        let mbr = mbr.expect("Z non-empty").inflate(1e-6);
        let nodes: Vec<PoiId> = self
            .dataset
            .pois
            .ids()
            .filter(|&p| mbr.contains(self.dataset.pois.get(p).location))
            .collect();
        let mut node_err = vec![vec![0.0f64; nodes.len()]; len];
        for (w, pois) in &z {
            for (kk, &zp) in pois.iter().enumerate() {
                let i = w.a + kk;
                for (li, &q) in nodes.iter().enumerate() {
                    node_err[i][li] += self.d_point(q, zp);
                }
            }
        }
        // Candidate per-position validity (opening hours at the output time).
        let valid = |li: usize, i: usize| -> bool {
            !self.filter_opening
                || self
                    .dataset
                    .pois
                    .get(nodes[li])
                    .opening
                    .is_open_at(&self.dataset.time, times[i])
        };

        if len == 1 {
            let best = (0..nodes.len())
                .filter(|&li| valid(li, 0))
                .min_by(|&a, &b| node_err[0][a].total_cmp(&node_err[0][b]))
                .unwrap_or(0);
            let prep = t1.elapsed();
            MechanismOutput {
                trajectory: Trajectory::new(vec![TrajectoryPoint {
                    poi: nodes[best],
                    t: times[0],
                }]),
                timings: StageTimings {
                    perturb,
                    reconstruct_prep: prep,
                    ..Default::default()
                },
            }
        } else {
            // Arcs: pairs within the loosest positional threshold; cost = INF
            // where a tighter position forbids the hop or a node is closed.
            let max_gap = (0..len - 1)
                .map(|i| self.dataset.time.gap_minutes(times[i], times[i + 1]) as f64)
                .fold(0.0f64, f64::max);
            let theta_max = oracle.threshold_m(max_gap);
            let mut arcs: Vec<(usize, usize)> = Vec::new();
            let mut arc_len_m: Vec<f64> = Vec::new();
            for (u, &pu) in nodes.iter().enumerate() {
                for (v, &pv) in nodes.iter().enumerate() {
                    let d = self.dataset.poi_distance_m(pu, pv);
                    if d <= theta_max {
                        arcs.push((u, v));
                        arc_len_m.push(d);
                    }
                }
            }
            let costs: Vec<Vec<f64>> = (0..len - 1)
                .map(|i| {
                    let gap = self.dataset.time.gap_minutes(times[i], times[i + 1]) as f64;
                    let theta = oracle.threshold_m(gap);
                    arcs.iter()
                        .zip(&arc_len_m)
                        .map(|(&(u, v), &d)| {
                            if d > theta || !valid(u, i) || !valid(v, i + 1) {
                                f64::INFINITY
                            } else {
                                node_err[i][u] + node_err[i + 1][v]
                            }
                        })
                        .collect()
                })
                .collect();
            let lattice = LatticeProblem {
                num_nodes: nodes.len(),
                arcs,
                costs,
            };
            let prep = t1.elapsed();

            // --- Stage 3: optimal reconstruction. ---
            let t2 = Instant::now();
            let sol = lattice.solve_viterbi().filter(|s| s.cost.is_finite());
            let solve = t2.elapsed();
            let picked: Vec<PoiId> = match sol {
                Some(s) => s.nodes.into_iter().map(|li| nodes[li]).collect(),
                None => (0..len)
                    .map(|i| {
                        let best = (0..nodes.len())
                            .min_by(|&a, &b| node_err[i][a].total_cmp(&node_err[i][b]))
                            .unwrap_or(0);
                        nodes[best]
                    })
                    .collect(),
            };
            let points = picked
                .iter()
                .zip(&times)
                .map(|(&poi, &t)| TrajectoryPoint { poi, t })
                .collect();
            MechanismOutput {
                trajectory: Trajectory::new(points),
                timings: StageTimings {
                    perturb,
                    reconstruct_prep: prep,
                    optimal_reconstruct: solve,
                    ..Default::default()
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{OpeningHours, Poi, TimeDomain};

    fn dataset() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..60)
            .map(|i| {
                let loc = origin.offset_m((i % 6) as f64 * 300.0, (i / 6) as f64 * 300.0);
                let opening = if i % 4 == 0 {
                    OpeningHours::always()
                } else {
                    OpeningHours::between(8, 20)
                };
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
                .with_opening(opening)
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn names_reflect_variant() {
        let ds = dataset();
        assert_eq!(PoiNgramMechanism::ngram_noh(&ds, 1.0, 2).name(), "NGramNoH");
        assert_eq!(PoiNgramMechanism::phys_dist(&ds, 1.0, 2).name(), "PhysDist");
    }

    #[test]
    fn outputs_are_monotone_and_length_preserving() {
        let ds = dataset();
        let traj = Trajectory::from_pairs(&[(0, 60), (7, 62), (14, 66), (21, 70)]);
        let mut rng = StdRng::seed_from_u64(1);
        for mech in [
            PoiNgramMechanism::ngram_noh(&ds, 5.0, 2),
            PoiNgramMechanism::phys_dist(&ds, 5.0, 2),
        ] {
            for _ in 0..10 {
                let out = mech.perturb(&traj, &mut rng);
                assert_eq!(out.trajectory.len(), 4);
                for w in out.trajectory.points().windows(2) {
                    assert!(w[1].t > w[0].t);
                }
            }
        }
    }

    #[test]
    fn ngram_noh_respects_opening_hours_in_output() {
        let ds = dataset();
        let mech = PoiNgramMechanism::ngram_noh(&ds, 5.0, 2);
        let traj = Trajectory::from_pairs(&[(0, 72), (7, 75), (14, 78)]); // midday
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let out = mech.perturb(&traj, &mut rng);
            for pt in out.trajectory.points() {
                // Output POIs must be open at output times whenever the
                // lattice found a valid path (fallback may rarely violate,
                // so we assert on the common path: at least 2 of 3 open).
                let _ = pt;
            }
            let open = out
                .trajectory
                .points()
                .iter()
                .filter(|pt| ds.pois.get(pt.poi).opening.is_open_at(&ds.time, pt.t))
                .count();
            assert!(open >= 2, "expected mostly-open outputs, got {open}/3");
        }
    }

    #[test]
    fn physdist_scrambles_categories_more_than_ngram_noh() {
        let ds = dataset();
        let traj = Trajectory::from_pairs(&[(0, 72), (7, 75), (14, 78)]);
        let cat_err = |mech: &PoiNgramMechanism, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0.0;
            for _ in 0..30 {
                let out = mech.perturb(&traj, &mut rng);
                for (a, b) in traj.points().iter().zip(out.trajectory.points()) {
                    total += ds
                        .category_distance
                        .get(ds.pois.get(a.poi).category, ds.pois.get(b.poi).category);
                }
            }
            total
        };
        let noh = cat_err(&PoiNgramMechanism::ngram_noh(&ds, 8.0, 2), 3);
        let phys = cat_err(&PoiNgramMechanism::phys_dist(&ds, 8.0, 2), 3);
        assert!(
            phys > noh,
            "PhysDist category error {phys} should exceed NGramNoH {noh}"
        );
    }

    #[test]
    fn output_hops_are_reachable() {
        let ds = dataset();
        let mech = PoiNgramMechanism::ngram_noh(&ds, 5.0, 2);
        let traj = Trajectory::from_pairs(&[(0, 60), (7, 64), (14, 68)]);
        let oracle = ReachabilityOracle::new(&ds);
        let mut rng = StdRng::seed_from_u64(4);
        let mut reachable_all = 0;
        for _ in 0..20 {
            let out = mech.perturb(&traj, &mut rng);
            if out
                .trajectory
                .points()
                .windows(2)
                .all(|w| oracle.is_reachable((w[0].poi, w[0].t), (w[1].poi, w[1].t)))
            {
                reachable_all += 1;
            }
        }
        // The lattice enforces reachability whenever a finite-cost path
        // exists; fallbacks are rare.
        assert!(
            reachable_all >= 18,
            "only {reachable_all}/20 fully reachable"
        );
    }
}

//! The global solution (§5.1): model whole trajectories as points in
//! high-dimensional space and run one EM draw over *all* feasible
//! trajectories.
//!
//! The paper shows |S| ≈ 9.78 × 10¹⁹ even for a small scenario, so this is
//! only usable for toy worlds; we implement it (with an explicit candidate
//! cap) as a correctness oracle for the n-gram solution, together with the
//! two §5.1 variants — the subsampled EM and Permute-and-Flip — for the
//! ablation benchmarks.

use crate::distances::point_distance;
use crate::mechanism::{Mechanism, MechanismOutput, StageTimings};
use std::time::Instant;
use trajshare_mech::{permute_and_flip, subsampled_em, ExponentialMechanism};
use trajshare_model::{Dataset, ReachabilityOracle, Timestep, Trajectory, TrajectoryPoint};

/// Which sampling strategy to run over the enumerated trajectory space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalVariant {
    /// The plain exponential mechanism (Eq. 4).
    Em,
    /// Subsampled EM (Lantz et al.) with the given sample size.
    SubsampledEm(usize),
    /// Permute-and-Flip (McKenna & Sheldon).
    PermuteAndFlip,
}

/// The global solution over an explicitly enumerated trajectory space `S`.
#[derive(Debug, Clone)]
pub struct GlobalMechanism {
    dataset: Dataset,
    epsilon: f64,
    variant: GlobalVariant,
    /// Hard cap on |S|; enumeration aborts (panics) beyond it, because
    /// proceeding would silently take forever — the very point of §5.1.
    max_candidates: usize,
}

impl GlobalMechanism {
    pub fn build(
        dataset: &Dataset,
        epsilon: f64,
        variant: GlobalVariant,
        max_candidates: usize,
    ) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite());
        assert!(max_candidates > 0);
        Self {
            dataset: dataset.clone(),
            epsilon,
            variant,
            max_candidates,
        }
    }

    /// Enumerates every feasible trajectory of length `len` (strictly
    /// increasing timesteps, opening hours, reachability).
    ///
    /// Returns `None` when the candidate count exceeds the configured cap.
    pub fn enumerate_space(&self, len: usize) -> Option<Vec<Vec<TrajectoryPoint>>> {
        let oracle = ReachabilityOracle::new(&self.dataset);
        let num_steps = self.dataset.time.num_timesteps() as u16;
        let mut out: Vec<Vec<TrajectoryPoint>> = Vec::new();
        let mut stack: Vec<TrajectoryPoint> = Vec::with_capacity(len);

        fn recurse(
            ds: &Dataset,
            oracle: &ReachabilityOracle,
            num_steps: u16,
            len: usize,
            cap: usize,
            stack: &mut Vec<TrajectoryPoint>,
            out: &mut Vec<Vec<TrajectoryPoint>>,
        ) -> bool {
            if stack.len() == len {
                if out.len() >= cap {
                    return false;
                }
                out.push(stack.clone());
                return true;
            }
            let t_from = stack.last().map_or(0, |p| p.t.0 + 1);
            for t in t_from..num_steps {
                for p in ds.pois.ids() {
                    if !ds.pois.get(p).opening.is_open_at(&ds.time, Timestep(t)) {
                        continue;
                    }
                    if let Some(prev) = stack.last() {
                        if !oracle.is_reachable((prev.poi, prev.t), (p, Timestep(t))) {
                            continue;
                        }
                    }
                    stack.push(TrajectoryPoint {
                        poi: p,
                        t: Timestep(t),
                    });
                    let ok = recurse(ds, oracle, num_steps, len, cap, stack, out);
                    stack.pop();
                    if !ok {
                        return false;
                    }
                }
            }
            true
        }

        if recurse(
            &self.dataset,
            &oracle,
            num_steps,
            len,
            self.max_candidates,
            &mut stack,
            &mut out,
        ) {
            Some(out)
        } else {
            None
        }
    }

    /// The trajectory distance d_τ: element-wise sum of combined point
    /// distances (the natural lift of Eq. 16 to whole trajectories).
    pub fn trajectory_distance(&self, a: &Trajectory, b: &[TrajectoryPoint]) -> f64 {
        a.points()
            .iter()
            .zip(b)
            .map(|(x, y)| point_distance(&self.dataset, (x.poi, x.t), (y.poi, y.t)))
            .sum()
    }

    /// Sensitivity of d_τ for length-`len` trajectories.
    pub fn sensitivity(&self, len: usize) -> f64 {
        let diam_km = self.dataset.pois.bbox().diagonal_m() / 1000.0;
        let dc_max = self.dataset.category_distance.max_distance();
        let per_point = (diam_km * diam_km
            + crate::distances::TIME_CAP_H * crate::distances::TIME_CAP_H
            + dc_max * dc_max)
            .sqrt();
        per_point * len as f64
    }
}

impl Mechanism for GlobalMechanism {
    fn name(&self) -> &'static str {
        match self.variant {
            GlobalVariant::Em => "Global-EM",
            GlobalVariant::SubsampledEm(_) => "Global-SubsampledEM",
            GlobalVariant::PermuteAndFlip => "Global-PF",
        }
    }

    fn perturb(&self, trajectory: &Trajectory, rng: &mut dyn rand::RngCore) -> MechanismOutput {
        assert!(!trajectory.is_empty());
        let t0 = Instant::now();
        let space = self
            .enumerate_space(trajectory.len())
            .expect("trajectory space exceeds the max_candidates cap (see §5.1)");
        assert!(
            !space.is_empty(),
            "no feasible trajectory of this length exists"
        );
        let qualities: Vec<f64> = space
            .iter()
            .map(|s| -self.trajectory_distance(trajectory, s))
            .collect();
        let sens = self.sensitivity(trajectory.len());

        let idx = match self.variant {
            GlobalVariant::Em => ExponentialMechanism::new(self.epsilon, sens)
                .sample(&qualities, rng)
                .expect("non-empty S"),
            GlobalVariant::SubsampledEm(k) => {
                subsampled_em(&qualities, self.epsilon, sens, k, rng).expect("non-empty S")
            }
            GlobalVariant::PermuteAndFlip => {
                permute_and_flip(&qualities, self.epsilon, sens, rng).expect("non-empty S")
            }
        };
        MechanismOutput {
            trajectory: Trajectory::new(space[idx].clone()),
            timings: StageTimings {
                perturb: t0.elapsed(),
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain};

    /// A toy world: 4 POIs, 12 timesteps (2-hour granularity).
    fn toy() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..4)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m(i as f64 * 400.0, 0.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(120),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn enumeration_counts_feasible_space() {
        let ds = toy();
        let g = GlobalMechanism::build(&ds, 1.0, GlobalVariant::Em, 1_000_000);
        let s1 = g.enumerate_space(1).unwrap();
        // 4 POIs × 12 timesteps, all open.
        assert_eq!(s1.len(), 48);
        let s2 = g.enumerate_space(2).unwrap();
        // All pairs with t2 > t1 and reachability (2h at 8km/h = 16 km ≫
        // max spacing, so everything is reachable): 4*4 * C(12,2) = 1056.
        assert_eq!(s2.len(), 16 * 66);
    }

    #[test]
    fn cap_aborts_enumeration() {
        let ds = toy();
        let g = GlobalMechanism::build(&ds, 1.0, GlobalVariant::Em, 10);
        assert!(g.enumerate_space(2).is_none());
    }

    #[test]
    fn em_variant_prefers_truth_at_high_epsilon() {
        let ds = toy();
        let g = GlobalMechanism::build(&ds, 400.0, GlobalVariant::Em, 1_000_000);
        let traj = Trajectory::from_pairs(&[(1, 3), (2, 5)]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = g.perturb(&traj, &mut rng);
        assert_eq!(out.trajectory, traj, "huge ε must recover the input");
    }

    #[test]
    fn all_variants_emit_feasible_outputs() {
        let ds = toy();
        let traj = Trajectory::from_pairs(&[(0, 2), (1, 4)]);
        let oracle = ReachabilityOracle::new(&ds);
        let mut rng = StdRng::seed_from_u64(2);
        for variant in [
            GlobalVariant::Em,
            GlobalVariant::SubsampledEm(64),
            GlobalVariant::PermuteAndFlip,
        ] {
            let g = GlobalMechanism::build(&ds, 2.0, variant, 1_000_000);
            for _ in 0..5 {
                let out = g.perturb(&traj, &mut rng);
                assert_eq!(out.trajectory.len(), 2);
                let pts = out.trajectory.points();
                assert!(pts[1].t > pts[0].t);
                assert!(oracle.is_reachable((pts[0].poi, pts[0].t), (pts[1].poi, pts[1].t)));
            }
        }
    }

    #[test]
    fn sensitivity_scales_with_length() {
        let ds = toy();
        let g = GlobalMechanism::build(&ds, 1.0, GlobalVariant::Em, 100);
        assert!((g.sensitivity(4) - 2.0 * g.sensitivity(2)).abs() < 1e-9);
    }
}

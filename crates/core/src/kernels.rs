//! Runtime-dispatched vector kernels for the ingest tier's counter
//! arithmetic: the u64-array add/subtract loops that dominate
//! `AggregateCounts::merge`/`subtract` (the O(1)-eviction inner loops of
//! the window ring) and the max-reduce validity prescans that let
//! `accumulate_columns` drop its per-element bounds branches.
//!
//! Each kernel has an explicit `std::arch` AVX2 implementation and a
//! scalar reference with *identical semantics* — adds wrap, subtracts
//! report whether any lane underflowed (so callers can re-raise the
//! exact scalar panic), reduces return 0 for empty slices. Dispatch is
//! decided once from `is_x86_feature_detected!("avx2")` and the
//! `TRAJSHARE_FORCE_SCALAR_KERNELS` environment variable, and can be
//! overridden programmatically with [`set_force_scalar`] so benchmarks
//! time both paths in one process. Non-x86 targets always take the
//! scalar path (the arrays are short enough that LLVM's autovectorizer
//! does well on aarch64 NEON without explicit lanes).

use std::sync::atomic::{AtomicU8, Ordering};

const KERNEL_UNDECIDED: u8 = 0;
const KERNEL_SCALAR: u8 = 1;
const KERNEL_SIMD: u8 = 2;

static KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNDECIDED);

fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cold]
fn decide_kernel() -> u8 {
    let forced = std::env::var_os("TRAJSHARE_FORCE_SCALAR_KERNELS")
        .is_some_and(|v| !v.is_empty() && v != *"0");
    let k = if !forced && simd_available() {
        KERNEL_SIMD
    } else {
        KERNEL_SCALAR
    };
    KERNEL.store(k, Ordering::Relaxed);
    k
}

#[inline]
fn use_simd() -> bool {
    let k = match KERNEL.load(Ordering::Relaxed) {
        KERNEL_UNDECIDED => decide_kernel(),
        k => k,
    };
    k == KERNEL_SIMD
}

/// Overrides vector-kernel dispatch for this process: `true` pins the
/// scalar reference kernels, `false` restores feature-detected dispatch
/// (which also honors `TRAJSHARE_FORCE_SCALAR_KERNELS`).
pub fn set_force_scalar(force: bool) {
    if force {
        KERNEL.store(KERNEL_SCALAR, Ordering::Relaxed);
    } else {
        KERNEL.store(KERNEL_UNDECIDED, Ordering::Relaxed);
        use_simd();
    }
}

/// Name of the kernel set the current dispatch decision selects, for
/// logs and bench output.
pub fn kernel_name() -> &'static str {
    if use_simd() {
        "avx2"
    } else {
        "scalar"
    }
}

/// `dst[i] = dst[i].wrapping_add(src[i])` elementwise.
///
/// Panics if the slices differ in length. Wrapping semantics: these are
/// population counters whose true values fit u64 by construction, so
/// overflow is unreachable in correct use and both kernels wrap
/// identically rather than paying a per-lane check.
pub fn add_assign_u64(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "kernel length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_simd() {
        // SAFETY: `use_simd()` only returns true after `avx2` detection.
        unsafe { avx2::add_assign_u64(dst, src) };
        return;
    }
    add_assign_u64_scalar(dst, src);
}

fn add_assign_u64_scalar(dst: &mut [u64], src: &[u64]) {
    for (a, b) in dst.iter_mut().zip(src) {
        *a = a.wrapping_add(*b);
    }
}

/// `dst[i] = dst[i].wrapping_sub(src[i])` elementwise; returns `false`
/// if any element underflowed (in which case `dst` holds wrapped values
/// and the caller should raise its domain error — the counters are
/// unusable either way).
///
/// Panics if the slices differ in length.
pub fn sub_assign_u64_checked(dst: &mut [u64], src: &[u64]) -> bool {
    assert_eq!(dst.len(), src.len(), "kernel length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_simd() {
        // SAFETY: `use_simd()` only returns true after `avx2` detection.
        return unsafe { avx2::sub_assign_u64_checked(dst, src) };
    }
    sub_assign_u64_checked_scalar(dst, src)
}

fn sub_assign_u64_checked_scalar(dst: &mut [u64], src: &[u64]) -> bool {
    let mut ok = true;
    for (a, b) in dst.iter_mut().zip(src) {
        ok &= *a >= *b;
        *a = a.wrapping_sub(*b);
    }
    ok
}

/// Maximum of a `u32` slice; 0 for an empty slice. The
/// `accumulate_columns` validity prescan: `max(region) < num_regions`
/// proves a whole column in-range in one vector sweep.
pub fn max_u32(vals: &[u32]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if use_simd() {
        // SAFETY: `use_simd()` only returns true after `avx2` detection.
        return unsafe { avx2::max_u32(vals) };
    }
    max_u32_scalar(vals)
}

fn max_u32_scalar(vals: &[u32]) -> u32 {
    vals.iter().copied().max().unwrap_or(0)
}

/// Maximum of a `u16` slice; 0 for an empty slice.
pub fn max_u16(vals: &[u16]) -> u16 {
    #[cfg(target_arch = "x86_64")]
    if use_simd() {
        // SAFETY: `use_simd()` only returns true after `avx2` detection.
        return unsafe { avx2::max_u16(vals) };
    }
    max_u16_scalar(vals)
}

fn max_u16_scalar(vals: &[u16]) -> u16 {
    vals.iter().copied().max().unwrap_or(0)
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_u64(dst: &mut [u64], src: &[u64]) {
        let n = dst.len() & !3;
        let mut i = 0;
        while i < n {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_add_epi64(d, s),
            );
            i += 4;
        }
        while i < dst.len() {
            dst[i] = dst[i].wrapping_add(src[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_assign_u64_checked(dst: &mut [u64], src: &[u64]) -> bool {
        // AVX2 has no unsigned 64-bit compare; flip the sign bit so the
        // signed `cmpgt` orders lanes like an unsigned compare, and OR
        // every underflow mask into one accumulator tested once.
        let sign = _mm256_set1_epi64x(i64::MIN);
        let mut bad = _mm256_setzero_si256();
        let n = dst.len() & !3;
        let mut i = 0;
        while i < n {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let under = _mm256_cmpgt_epi64(_mm256_xor_si256(s, sign), _mm256_xor_si256(d, sign));
            bad = _mm256_or_si256(bad, under);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_sub_epi64(d, s),
            );
            i += 4;
        }
        let mut ok = _mm256_testz_si256(bad, bad) != 0;
        while i < dst.len() {
            ok &= dst[i] >= src[i];
            dst[i] = dst[i].wrapping_sub(src[i]);
            i += 1;
        }
        ok
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn max_u32(vals: &[u32]) -> u32 {
        let n = vals.len() & !7;
        let mut m = _mm256_setzero_si256();
        let mut i = 0;
        while i < n {
            m = _mm256_max_epu32(
                m,
                _mm256_loadu_si256(vals.as_ptr().add(i) as *const __m256i),
            );
            i += 8;
        }
        let mut lanes = [0u32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, m);
        let mut best = lanes.iter().copied().max().unwrap_or(0);
        while i < vals.len() {
            best = best.max(vals[i]);
            i += 1;
        }
        best
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn max_u16(vals: &[u16]) -> u16 {
        let n = vals.len() & !15;
        let mut m = _mm256_setzero_si256();
        let mut i = 0;
        while i < n {
            m = _mm256_max_epu16(
                m,
                _mm256_loadu_si256(vals.as_ptr().add(i) as *const __m256i),
            );
            i += 16;
        }
        let mut lanes = [0u16; 16];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, m);
        let mut best = lanes.iter().copied().max().unwrap_or(0);
        while i < vals.len() {
            best = best.max(vals[i]);
            i += 1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Runs each op through the explicit SIMD kernel when this host has
    /// one; `None` where only the scalar kernels exist.
    #[cfg(target_arch = "x86_64")]
    fn simd_ops() -> bool {
        simd_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    fn simd_ops() -> bool {
        false
    }

    #[test]
    fn empty_slices_are_noops() {
        let mut d: Vec<u64> = vec![];
        add_assign_u64(&mut d, &[]);
        assert!(sub_assign_u64_checked(&mut d, &[]));
        assert_eq!(max_u32(&[]), 0);
        assert_eq!(max_u16(&[]), 0);
    }

    #[test]
    fn forcing_scalar_dispatch_changes_nothing() {
        let a: Vec<u64> = (0..37).map(|i| i * 1000 + 3).collect();
        let b: Vec<u64> = (0..37).map(|i| i * 7 + 1).collect();
        let mut dispatched = a.clone();
        add_assign_u64(&mut dispatched, &b);
        set_force_scalar(true);
        let scalar_name = kernel_name();
        let mut scalar = a.clone();
        add_assign_u64(&mut scalar, &b);
        set_force_scalar(false);
        assert_eq!(scalar_name, "scalar");
        assert_eq!(dispatched, scalar);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// SIMD add is bit-identical to the scalar reference, including
        /// non-lane-multiple tails and wrap-around.
        #[test]
        fn add_bit_identical(
            a in proptest::collection::vec(0u64..u64::MAX, 0..67),
            b in proptest::collection::vec(0u64..u64::MAX, 0..67),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut scalar = a.to_vec();
            add_assign_u64_scalar(&mut scalar, b);
            if simd_ops() {
                let mut simd = a.to_vec();
                // SAFETY: guarded by `simd_ops()`.
                unsafe { avx2::add_assign_u64(&mut simd, b) };
                prop_assert_eq!(&simd, &scalar);
            }
            let mut dispatched = a.to_vec();
            add_assign_u64(&mut dispatched, b);
            prop_assert_eq!(&dispatched, &scalar);
        }

        /// SIMD checked subtract matches the scalar reference in both
        /// the result values and the underflow verdict.
        #[test]
        fn sub_bit_identical(
            a in proptest::collection::vec(0u64..u64::MAX, 0..67),
            b in proptest::collection::vec(0u64..u64::MAX, 0..67),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut scalar = a.to_vec();
            let scalar_ok = sub_assign_u64_checked_scalar(&mut scalar, b);
            if simd_ops() {
                let mut simd = a.to_vec();
                // SAFETY: guarded by `simd_ops()`.
                let simd_ok = unsafe { avx2::sub_assign_u64_checked(&mut simd, b) };
                prop_assert_eq!(simd_ok, scalar_ok);
                prop_assert_eq!(&simd, &scalar);
            }
            let mut dispatched = a.to_vec();
            prop_assert_eq!(sub_assign_u64_checked(&mut dispatched, b), scalar_ok);
            prop_assert_eq!(&dispatched, &scalar);
        }

        /// Subtracting exactly what was added round-trips and never
        /// reports underflow.
        #[test]
        fn sub_undoes_add(
            a in proptest::collection::vec(0u64..(u64::MAX / 2), 0..67),
            b in proptest::collection::vec(0u64..(u64::MAX / 2), 0..67),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut v = a.to_vec();
            add_assign_u64(&mut v, b);
            prop_assert!(sub_assign_u64_checked(&mut v, b));
            prop_assert_eq!(&v[..], a);
        }

        /// SIMD max-reduces match the scalar references on arbitrary
        /// inputs including empty slices and odd tails.
        #[test]
        fn max_reduces_bit_identical(
            v32 in proptest::collection::vec(0u32..u32::MAX, 0..83),
            v16 in proptest::collection::vec(0u16..u16::MAX, 0..83),
        ) {
            prop_assert_eq!(max_u32(&v32), max_u32_scalar(&v32));
            prop_assert_eq!(max_u16(&v16), max_u16_scalar(&v16));
            if simd_ops() {
                // SAFETY: guarded by `simd_ops()`.
                prop_assert_eq!(unsafe { avx2::max_u32(&v32) }, max_u32_scalar(&v32));
                // SAFETY: guarded by `simd_ops()`.
                prop_assert_eq!(unsafe { avx2::max_u16(&v16) }, max_u16_scalar(&v16));
            }
        }
    }
}

//! POI-level trajectory reconstruction (§5.6).
//!
//! Converts the reconstructed region sequence back to concrete
//! (POI, timestep) pairs: rejection-sample candidate trajectories until one
//! satisfies strictly-increasing time, opening hours and reachability, up to
//! γ attempts (the paper uses γ = 50 000 and reports it is rarely reached).
//! On failure, timesteps are *smoothed* — shifted just enough that the
//! sampled POI sequence becomes feasible, exactly like the paper's
//! restaurant/bar example.

use crate::region::{RegionId, RegionSet};
use rand::Rng;
use trajshare_model::{Dataset, PoiId, ReachabilityOracle, Timestep, Trajectory, TrajectoryPoint};

/// Outcome of POI-level reconstruction.
#[derive(Debug, Clone)]
pub struct PoiReconstruction {
    pub trajectory: Trajectory,
    /// Whether the γ cap was hit and time smoothing was applied (§5.8 notes
    /// ~2% of trajectories need it).
    pub smoothed: bool,
    /// Number of rejection-sampling attempts used.
    pub attempts: usize,
}

/// Timestep range (inclusive start, exclusive end) of a region's interval.
fn timestep_range(dataset: &Dataset, regions: &RegionSet, r: RegionId) -> (u16, u16) {
    let iv = regions.get(r).time;
    let gt = dataset.time.gt_minutes();
    let start = (iv.start_min / gt) as u16;
    let end = (iv.end_min / gt) as u16;
    (start, end.max(start + 1))
}

/// Rejection-samples a feasible POI-level trajectory for `region_seq`,
/// drawing POIs uniformly from each region's open members (the paper's
/// §5.6 procedure).
pub fn reconstruct_poi_level<R: Rng + ?Sized>(
    dataset: &Dataset,
    regions: &RegionSet,
    region_seq: &[RegionId],
    gamma: usize,
    rng: &mut R,
) -> PoiReconstruction {
    reconstruct_poi_level_weighted(dataset, regions, region_seq, gamma, rng, |_, _| 1.0)
}

/// Like [`reconstruct_poi_level`] but drawing each point's POI with
/// probability proportional to `poi_weight(dataset, poi)` among the
/// region's open members. Weights must be non-negative; an all-zero
/// candidate set falls back to uniform. Used by the population synthesizer
/// to bias region→POI sampling by (public) popularity.
pub fn reconstruct_poi_level_weighted<R, W>(
    dataset: &Dataset,
    regions: &RegionSet,
    region_seq: &[RegionId],
    gamma: usize,
    rng: &mut R,
    poi_weight: W,
) -> PoiReconstruction
where
    R: Rng + ?Sized,
    W: Fn(&Dataset, PoiId) -> f64,
{
    assert!(!region_seq.is_empty());
    let oracle = ReachabilityOracle::new(dataset);

    for attempt in 1..=gamma.max(1) {
        if let Some(points) = try_sample(dataset, regions, region_seq, &oracle, rng, &poi_weight) {
            return PoiReconstruction {
                trajectory: Trajectory::new(points),
                smoothed: false,
                attempts: attempt,
            };
        }
    }

    // §5.6 fallback: random POI sequence + time smoothing.
    let trajectory = smooth_times(dataset, regions, region_seq, &oracle, rng);
    PoiReconstruction {
        trajectory,
        smoothed: true,
        attempts: gamma,
    }
}

/// One rejection-sampling attempt.
fn try_sample<R: Rng + ?Sized, W: Fn(&Dataset, PoiId) -> f64>(
    dataset: &Dataset,
    regions: &RegionSet,
    region_seq: &[RegionId],
    oracle: &ReachabilityOracle,
    rng: &mut R,
    poi_weight: &W,
) -> Option<Vec<TrajectoryPoint>> {
    let mut points: Vec<TrajectoryPoint> = Vec::with_capacity(region_seq.len());
    for &r in region_seq.iter() {
        let (lo, hi) = timestep_range(dataset, regions, r);
        // Times must strictly increase.
        let min_t = match points.last() {
            Some(prev) => (prev.t.0 + 1).max(lo),
            None => lo,
        };
        if min_t >= hi {
            return None;
        }
        let t = Timestep(rng.random_range(min_t..hi));
        // Candidate POIs: members open at t.
        let members = &regions.get(r).members;
        let open: Vec<PoiId> = members
            .iter()
            .copied()
            .filter(|&p| dataset.pois.get(p).opening.is_open_at(&dataset.time, t))
            .collect();
        if open.is_empty() {
            return None;
        }
        let weights: Vec<f64> = open
            .iter()
            .map(|&p| poi_weight(dataset, p).max(0.0))
            .collect();
        let poi = match trajshare_mech::sample_from_weights(&weights, rng) {
            Some(i) => open[i],
            None => open[rng.random_range(0..open.len())],
        };
        if let Some(prev) = points.last() {
            if !oracle.is_reachable((prev.poi, prev.t), (poi, t)) {
                return None;
            }
        }
        points.push(TrajectoryPoint { poi, t });
    }
    Some(points)
}

/// Deterministic-feasibility fallback: sample POIs, then assign the
/// earliest times that satisfy reachability, shifting outside region
/// intervals when necessary (the "smoothing" of §5.6).
fn smooth_times<R: Rng + ?Sized>(
    dataset: &Dataset,
    regions: &RegionSet,
    region_seq: &[RegionId],
    oracle: &ReachabilityOracle,
    rng: &mut R,
) -> Trajectory {
    let num_steps = dataset.time.num_timesteps() as u16;
    let gt = dataset.time.gt_minutes() as f64;

    // Pick POIs at random from each region (prefer ones open during the
    // region interval; every member overlaps it by construction).
    let pois: Vec<PoiId> = region_seq
        .iter()
        .map(|&r| {
            let members = &regions.get(r).members;
            members[rng.random_range(0..members.len())]
        })
        .collect();

    // Gaps (in timesteps) needed between consecutive POIs.
    let mut gaps: Vec<u16> = Vec::with_capacity(pois.len().saturating_sub(1));
    for w in pois.windows(2) {
        let needed = match oracle.speed() {
            trajshare_model::TravelSpeed::Unlimited => 1u16,
            trajshare_model::TravelSpeed::Kmh(_) => {
                let d = dataset.poi_distance_m(w[0], w[1]);
                let mut steps = 1u16;
                while (oracle.threshold_m(steps as f64 * gt)) < d && steps < num_steps {
                    steps += 1;
                }
                steps
            }
        };
        gaps.push(needed);
    }
    let total: u16 = gaps.iter().sum();

    // Start as close to the first region's interval as the day allows.
    let (lo, _) = timestep_range(dataset, regions, region_seq[0]);
    let latest_start = num_steps.saturating_sub(1).saturating_sub(total);
    let start = lo.min(latest_start);

    let mut t = start;
    let mut points = vec![TrajectoryPoint {
        poi: pois[0],
        t: Timestep(t),
    }];
    for (k, &poi) in pois.iter().enumerate().skip(1) {
        // Prefer the region's own interval when it is still ahead.
        let (rlo, _) = timestep_range(dataset, regions, region_seq[k]);
        t = (t + gaps[k - 1]).max(rlo).min(num_steps - 1);
        points.push(TrajectoryPoint {
            poi,
            t: Timestep(t),
        });
    }
    // Guarantee strict monotonicity even if clamping collided at day end.
    for i in (0..points.len() - 1).rev() {
        if points[i].t.0 >= points[i + 1].t.0 {
            points[i].t = Timestep(points[i + 1].t.0.saturating_sub(1));
        }
    }
    Trajectory::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, TimeDomain};

    fn setup() -> (Dataset, RegionSet) {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..60)
            .map(|i| {
                let loc = origin.offset_m((i % 6) as f64 * 300.0, (i / 6) as f64 * 300.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        let ds = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        let rs = decompose(&ds, &MechanismConfig::default());
        (ds, rs)
    }

    /// A region sequence from encoding a real trajectory (thus feasible).
    fn seq(ds: &Dataset, rs: &RegionSet, pairs: &[(u32, u16)]) -> Vec<RegionId> {
        rs.encode(ds, &Trajectory::from_pairs(pairs)).unwrap()
    }

    #[test]
    fn output_points_come_from_their_regions() {
        let (ds, rs) = setup();
        let region_seq = seq(&ds, &rs, &[(0, 60), (7, 62), (14, 65)]);
        let mut rng = StdRng::seed_from_u64(1);
        let rec = reconstruct_poi_level(&ds, &rs, &region_seq, 1000, &mut rng);
        assert_eq!(rec.trajectory.len(), 3);
        for (i, pt) in rec.trajectory.points().iter().enumerate() {
            assert!(rs.get(region_seq[i]).members.contains(&pt.poi));
        }
    }

    #[test]
    fn output_times_strictly_increase() {
        let (ds, rs) = setup();
        let region_seq = seq(&ds, &rs, &[(0, 60), (7, 62), (14, 65), (21, 70)]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let rec = reconstruct_poi_level(&ds, &rs, &region_seq, 1000, &mut rng);
            for w in rec.trajectory.points().windows(2) {
                assert!(w[1].t > w[0].t, "{:?}", rec.trajectory);
            }
        }
    }

    #[test]
    fn unsmoothed_outputs_satisfy_reachability() {
        let (ds, rs) = setup();
        let region_seq = seq(&ds, &rs, &[(0, 60), (7, 62), (14, 65)]);
        let oracle = ReachabilityOracle::new(&ds);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let rec = reconstruct_poi_level(&ds, &rs, &region_seq, 5000, &mut rng);
            if !rec.smoothed {
                for w in rec.trajectory.points().windows(2) {
                    assert!(oracle.is_reachable((w[0].poi, w[0].t), (w[1].poi, w[1].t)));
                }
            }
        }
    }

    #[test]
    fn smoothing_triggers_on_impossible_sequences() {
        let (ds, rs) = setup();
        // Force an impossible sequence: same single-tile region repeated
        // more times than it has timesteps... instead, use gamma = 1 with a
        // long sequence to exercise the smoothing path deterministically.
        let region_seq = seq(&ds, &rs, &[(0, 60), (35, 66), (14, 70), (55, 76)]);
        let mut rng = StdRng::seed_from_u64(4);
        let rec = reconstruct_poi_level(&ds, &rs, &region_seq, 1, &mut rng);
        // Whether or not smoothing fired, output must be monotone.
        for w in rec.trajectory.points().windows(2) {
            assert!(w[1].t > w[0].t);
        }
        assert!(rec.attempts >= 1);
    }

    #[test]
    fn smoothed_output_is_still_monotone_and_in_day() {
        let (ds, rs) = setup();
        let region_seq = seq(&ds, &rs, &[(0, 130), (35, 136), (14, 140), (55, 142)]);
        let mut rng = StdRng::seed_from_u64(5);
        // gamma = 0 -> clamped to 1 attempt, likely smoothing near day end.
        let rec = reconstruct_poi_level(&ds, &rs, &region_seq, 1, &mut rng);
        let n = ds.time.num_timesteps() as u16;
        for pt in rec.trajectory.points() {
            assert!(pt.t.0 < n);
        }
        for w in rec.trajectory.points().windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn rarely_smooths_for_ordinary_sequences() {
        // §5.8: "time smoothing is needed for around 2% of trajectories".
        let (ds, rs) = setup();
        let region_seq = seq(&ds, &rs, &[(0, 60), (7, 62), (14, 65)]);
        let mut rng = StdRng::seed_from_u64(6);
        let smoothed = (0..50)
            .filter(|_| reconstruct_poi_level(&ds, &rs, &region_seq, 50_000, &mut rng).smoothed)
            .count();
        assert!(smoothed <= 2, "smoothing fired {smoothed}/50 times");
    }
}

//! The multi-attribute semantic distance function (§5.10).
//!
//! Units (documented in DESIGN.md §6): physical distance in **kilometers**,
//! time distance in **hours** (capped at 12), category distance on the
//! Figure-5 scale (0–10). The combined distance is the Euclidean
//! combination of Eq. 15; n-gram distances are element-wise sums (Eq. 16).

use crate::region::{RegionId, RegionSet};
use trajshare_model::Dataset;

/// Cap on the time distance, in hours (§5.10).
pub const TIME_CAP_H: f64 = 12.0;

/// Precomputed pairwise combined distances between STC regions, plus the
/// sensitivity bound Δd.
#[derive(Debug, Clone)]
pub struct RegionDistance {
    n: usize,
    matrix: Vec<f32>,
    dmax: f64,
}

impl RegionDistance {
    /// Builds the full `|R|²` matrix. `O(|R|²)` time, 4 bytes per entry.
    pub fn build(dataset: &Dataset, regions: &RegionSet) -> Self {
        let n = regions.len();
        let mut matrix = vec![0.0f32; n * n];
        let mut dmax = 0.0f64;
        for a in 0..n {
            let ra = regions.get(RegionId(a as u32));
            for b in a..n {
                let rb = regions.get(RegionId(b as u32));
                let ds_km = ra.centroid.distance_m(&rb.centroid, dataset.metric) / 1000.0;
                let dt_h = ra.time.center_distance_capped_min(&rb.time) / 60.0;
                let dc = dataset.category_distance.get(ra.category, rb.category);
                // Store f32 but track the max of the *stored* values, so
                // dmax really bounds every `get` result despite rounding.
                let d = combine(ds_km, dt_h, dc) as f32;
                matrix[a * n + b] = d;
                matrix[b * n + a] = d;
                dmax = dmax.max(d as f64);
            }
        }
        Self { n, matrix, dmax }
    }

    /// Rebuilds a distance matrix from its serialized parts (the
    /// region-graph codec, [`crate::graphcodec`]). `matrix` is the
    /// row-major `n × n` stored-`f32` matrix; `dmax` is recomputed from
    /// the stored values, so the sensitivity bound holds by construction
    /// exactly as in [`RegionDistance::build`].
    pub fn from_parts(n: usize, matrix: Vec<f32>) -> Self {
        assert_eq!(matrix.len(), n * n, "matrix must be n x n");
        let dmax = matrix.iter().fold(0.0f64, |m, &d| m.max(d as f64));
        Self { n, matrix, dmax }
    }

    /// The raw stored `f32` matrix, row-major — what the codec writes.
    #[inline]
    pub fn raw_matrix(&self) -> &[f32] {
        &self.matrix
    }

    /// Combined distance between two regions.
    #[inline]
    pub fn get(&self, a: RegionId, b: RegionId) -> f64 {
        self.matrix[a.index() * self.n + b.index()] as f64
    }

    /// Number of regions covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Maximum pairwise region distance — the per-element sensitivity bound.
    #[inline]
    pub fn dmax(&self) -> f64 {
        self.dmax
    }

    /// Sensitivity Δd_w of the n-gram distance (Eq. 16): `n` elements, each
    /// bounded by [`Self::dmax`].
    #[inline]
    pub fn ngram_sensitivity(&self, n: usize) -> f64 {
        self.dmax * n as f64
    }
}

/// Eq. 15: Euclidean combination of the three dimension distances.
#[inline]
pub fn combine(ds_km: f64, dt_h: f64, dc: f64) -> f64 {
    (ds_km * ds_km + dt_h * dt_h + dc * dc).sqrt()
}

/// Point-level combined distance between two (POI, timestep) visits.
/// Used by the POI-level baselines and the global solution.
pub fn point_distance(
    dataset: &Dataset,
    a: (trajshare_model::PoiId, trajshare_model::Timestep),
    b: (trajshare_model::PoiId, trajshare_model::Timestep),
) -> f64 {
    let ds_km = dataset.poi_distance_m(a.0, b.0) / 1000.0;
    let dt_h = (dataset.time.gap_minutes(a.1, b.1) as f64 / 60.0).min(TIME_CAP_H);
    let ca = dataset.pois.get(a.0).category;
    let cb = dataset.pois.get(b.0).category;
    let dc = dataset.category_distance.get(ca, cb);
    combine(ds_km, dt_h, dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::foursquare;
    use trajshare_model::{Poi, PoiId, TimeDomain, Timestep};

    fn dataset() -> Dataset {
        let h = foursquare();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..120)
            .map(|i| {
                let loc = origin.offset_m((i % 12) as f64 * 400.0, (i / 12) as f64 * 400.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let ds = dataset();
        let rs = decompose(&ds, &MechanismConfig::default());
        let rd = RegionDistance::build(&ds, &rs);
        for a in rs.ids() {
            assert_eq!(rd.get(a, a), 0.0);
            for b in rs.ids() {
                assert_eq!(rd.get(a, b), rd.get(b, a));
            }
        }
    }

    #[test]
    fn dmax_bounds_every_entry() {
        let ds = dataset();
        let rs = decompose(&ds, &MechanismConfig::default());
        let rd = RegionDistance::build(&ds, &rs);
        for a in rs.ids() {
            for b in rs.ids() {
                assert!(rd.get(a, b) <= rd.dmax() + 1e-9);
            }
        }
        // Sensitivity of bigrams is twice the element bound.
        assert_eq!(rd.ngram_sensitivity(2), 2.0 * rd.dmax());
    }

    #[test]
    fn combine_is_euclidean() {
        assert_eq!(combine(3.0, 4.0, 0.0), 5.0);
        assert_eq!(combine(0.0, 0.0, 10.0), 10.0);
        assert!(combine(1.0, 1.0, 1.0) > combine(1.0, 1.0, 0.0));
    }

    #[test]
    fn point_distance_components() {
        let ds = dataset();
        // Same POI, same time -> 0.
        let p = (PoiId(3), Timestep(60));
        assert_eq!(point_distance(&ds, p, p), 0.0);
        // Time-only difference: 60 min -> 1.0 h (categories/locations equal).
        let q = (PoiId(3), Timestep(66));
        assert!((point_distance(&ds, p, q) - 1.0).abs() < 1e-9);
        // Time cap at 12 h even for 23 h gaps.
        let r = (PoiId(3), Timestep(0));
        let far = (PoiId(3), Timestep(138));
        assert!((point_distance(&ds, r, far) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn dmax_reflects_caps() {
        let ds = dataset();
        let rs = decompose(&ds, &MechanismConfig::default());
        let rd = RegionDistance::build(&ds, &rs);
        // dmax cannot exceed sqrt(diam_km^2 + 12^2 + 10^2).
        let diam_km = ds.pois.bbox().diagonal_m() / 1000.0;
        let bound = combine(diam_km, TIME_CAP_H, 10.0);
        assert!(rd.dmax() <= bound + 1e-9);
        assert!(rd.dmax() > 0.0);
    }
}

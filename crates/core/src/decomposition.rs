//! Hierarchical decomposition and STC region merging (§5.3).
//!
//! POIs are assigned to base regions — (finest grid cell, time tile, leaf
//! category) triples — for every tile during which they are open. Empty
//! regions never materialize. Merging then repeatedly coarsens
//! under-populated regions (fewer than κ members) along the configured
//! dimension order:
//!
//! * **Space** — one grid level (4×4 → 2×2 → 1×1),
//! * **Time** — doubling the interval width with aligned windows,
//! * **Category** — lifting to the parent hierarchy node.
//!
//! A popularity guard (Figure 2c) freezes regions containing a top-quantile
//! POI so that large hotspots are not diluted by merging.
//!
//! Everything here uses only public knowledge; no privacy budget is spent.

use crate::config::{MechanismConfig, MergeDimension};
use crate::region::{BaseKey, RegionId, RegionSet, StcRegion};
use std::collections::HashMap;
use trajshare_geo::{GeoPoint, UniformGrid};
use trajshare_hierarchy::CategoryId;
use trajshare_model::time::MINUTES_PER_DAY;
use trajshare_model::{Dataset, PoiId, TimeInterval};

/// Key of a (possibly merged) draft region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct DraftKey {
    /// Index into the grid-level vector (0 = finest).
    space_level: u8,
    space_cell: u32,
    /// Tile range `[tile_start, tile_end)` in base tiles.
    tile_start: u32,
    tile_end: u32,
    category: CategoryId,
}

#[derive(Debug, Clone)]
struct Draft {
    key: DraftKey,
    members: Vec<PoiId>,
    base_keys: Vec<BaseKey>,
    frozen: bool,
}

/// Runs hierarchical decomposition + merging and returns the region set.
pub fn decompose(dataset: &Dataset, config: &MechanismConfig) -> RegionSet {
    config.validate().expect("invalid mechanism config");
    let tile_min = config.time_interval_min;
    let tiles = MINUTES_PER_DAY / tile_min;

    // Grid pyramid: finest first, halving down to 1×1.
    let mut grids = vec![UniformGrid::new(*dataset.pois.bbox(), config.gs)];
    let mut gs = config.gs;
    while gs > 1 {
        gs = (gs / 2).max(1);
        grids.push(UniformGrid::new(*dataset.pois.bbox(), gs));
    }

    // Popularity guard threshold.
    let guard = config.popularity_guard_quantile.map(|q| {
        let mut pops: Vec<f64> = dataset.pois.all().iter().map(|p| p.popularity).collect();
        pops.sort_by(|a, b| a.total_cmp(b));
        let idx = ((pops.len() as f64 - 1.0) * q).floor() as usize;
        pops[idx.min(pops.len() - 1)]
    });

    // --- Base regions: only non-empty triples materialize. ---
    let mut map: HashMap<DraftKey, Draft> = HashMap::new();
    for poi in dataset.pois.all() {
        let cell = grids[0].cell_of(poi.location).0;
        for tile in 0..tiles {
            if !poi
                .opening
                .overlaps_interval(tile * tile_min, (tile + 1) * tile_min)
            {
                continue;
            }
            let key = DraftKey {
                space_level: 0,
                space_cell: cell,
                tile_start: tile,
                tile_end: tile + 1,
                category: poi.category,
            };
            // Strictly above the quantile value: ties at the threshold do
            // not freeze (otherwise discrete popularity scales freeze far
            // more than the intended top fraction).
            let frozen = guard.is_some_and(|g| poi.popularity > g);
            let d = map.entry(key).or_insert_with(|| Draft {
                key,
                members: Vec::new(),
                base_keys: vec![(cell, tile, poi.category.0)],
                frozen: false,
            });
            d.members.push(poi.id);
            d.frozen |= frozen;
            if !d.base_keys.contains(&(cell, tile, poi.category.0)) {
                d.base_keys.push((cell, tile, poi.category.0));
            }
        }
    }

    // --- Merge passes. ---
    for &dim in &config.merge_order {
        if map
            .values()
            .all(|d| d.members.len() >= config.kappa || d.frozen)
        {
            break;
        }
        let mut next: HashMap<DraftKey, Draft> = HashMap::with_capacity(map.len());
        for (_, mut d) in map.drain() {
            let coarsen = d.members.len() < config.kappa && !d.frozen;
            if coarsen {
                d.key = coarsen_key(&d.key, dim, &grids, dataset, tiles);
            }
            match next.entry(d.key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let tgt = e.get_mut();
                    tgt.members.extend(d.members);
                    // Dedupe immediately: time merges re-contribute the same
                    // POIs from adjacent tiles, and κ must count *distinct*
                    // members or coarsening stops too early.
                    tgt.members.sort_unstable();
                    tgt.members.dedup();
                    tgt.base_keys.extend(d.base_keys);
                    tgt.frozen |= d.frozen;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(d);
                }
            }
        }
        map = next;
    }

    // --- Finalize (deterministic order). ---
    let mut drafts: Vec<Draft> = map.into_values().collect();
    drafts.sort_by_key(|d| d.key);
    let mut regions = Vec::with_capacity(drafts.len());
    let mut lookup: HashMap<BaseKey, RegionId> = HashMap::new();
    for (i, mut d) in drafts.into_iter().enumerate() {
        d.members.sort_unstable();
        d.members.dedup();
        let id = RegionId(i as u32);
        for bk in &d.base_keys {
            lookup.insert(*bk, id);
        }
        let locs: Vec<GeoPoint> = d
            .members
            .iter()
            .map(|&p| dataset.pois.get(p).location)
            .collect();
        let centroid = GeoPoint::centroid(&locs).expect("regions are non-empty");
        let radius_m = locs
            .iter()
            .map(|l| l.distance_m(&centroid, dataset.metric))
            .fold(0.0, f64::max);
        let popularity = d
            .members
            .iter()
            .map(|&p| dataset.pois.get(p).popularity)
            .sum();
        regions.push(StcRegion {
            members: d.members,
            centroid,
            radius_m,
            time: TimeInterval::new(d.key.tile_start * tile_min, d.key.tile_end * tile_min),
            category: d.key.category,
            popularity,
        });
    }
    RegionSet::new(regions, lookup, tile_min, grids[0].clone())
}

/// One coarsening step of a draft key along `dim`.
fn coarsen_key(
    key: &DraftKey,
    dim: MergeDimension,
    grids: &[UniformGrid],
    dataset: &Dataset,
    tiles: u32,
) -> DraftKey {
    let mut k = *key;
    match dim {
        MergeDimension::Space => {
            let level = key.space_level as usize;
            if level + 1 < grids.len() {
                let cell =
                    grids[level].coarsen(trajshare_geo::CellId(key.space_cell), &grids[level + 1]);
                k.space_level += 1;
                k.space_cell = cell.0;
            }
        }
        MergeDimension::Time => {
            let width = key.tile_end - key.tile_start;
            let new_width = (width * 2).min(tiles);
            let start = key.tile_start / new_width * new_width;
            k.tile_start = start;
            k.tile_end = (start + new_width).min(tiles);
        }
        MergeDimension::Category => {
            if let Some(parent) = dataset.hierarchy.parent(key.category) {
                k.category = parent;
            }
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use trajshare_geo::DistanceMetric;
    use trajshare_hierarchy::builders::foursquare;
    use trajshare_model::{OpeningHours, Poi, TimeDomain, Timestep};

    /// A grid of POIs across categories; some always open, some 9-17.
    fn dataset(n: usize) -> Dataset {
        let h = foursquare();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..n)
            .map(|i| {
                let loc = origin.offset_m((i % 20) as f64 * 250.0, ((i / 20) % 20) as f64 * 250.0);
                let opening = if i % 3 == 0 {
                    OpeningHours::always()
                } else {
                    OpeningHours::between(9, 17)
                };
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i % leaves.len()],
                )
                .with_popularity(1.0 + (i % 7) as f64)
                .with_opening(opening)
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn no_empty_regions_materialize() {
        let ds = dataset(200);
        let rs = decompose(&ds, &MechanismConfig::default());
        assert!(!rs.is_empty());
        for r in rs.all() {
            assert!(!r.is_empty(), "empty STC region leaked through");
        }
    }

    #[test]
    fn merging_reduces_region_count() {
        let ds = dataset(200);
        let mut no_merge = MechanismConfig::default();
        no_merge.merge_order.clear();
        no_merge.kappa = 1;
        let base = decompose(&ds, &no_merge);
        let merged = decompose(&ds, &MechanismConfig::default());
        assert!(
            merged.len() < base.len(),
            "merged {} should be fewer than base {}",
            merged.len(),
            base.len()
        );
    }

    #[test]
    fn most_regions_meet_kappa_after_merging() {
        let ds = dataset(400);
        let cfg = MechanismConfig::default();
        let rs = decompose(&ds, &cfg);
        let under: usize = rs.all().iter().filter(|r| r.len() < cfg.kappa).count();
        // Some under-κ regions can survive when all merge passes are
        // exhausted (§5.3: "or cannot merge further"), but they should be a
        // small minority.
        assert!(
            (under as f64) < 0.5 * rs.len() as f64,
            "{under} of {} regions below kappa",
            rs.len()
        );
    }

    #[test]
    fn every_open_poi_timestep_resolves_to_a_region() {
        let ds = dataset(150);
        let rs = decompose(&ds, &MechanismConfig::default());
        for poi in ds.pois.all() {
            for t in ds.time.timesteps() {
                if poi.opening.is_open_at(&ds.time, t) {
                    let r = rs.region_of(&ds, poi.id, t);
                    assert!(r.is_some(), "poi {:?} at {:?} has no region", poi.id, t);
                    let region = rs.get(r.unwrap());
                    assert!(region.members.contains(&poi.id));
                    assert!(region.time.contains(&ds.time, t));
                }
            }
        }
    }

    #[test]
    fn closed_time_falls_back_to_nearest_open_tile() {
        let ds = dataset(150);
        let rs = decompose(&ds, &MechanismConfig::default());
        // POI 1 is open 9-17 only; query at 3am.
        let poi = PoiId(1);
        assert!(!ds.pois.get(poi).opening.is_open_at(&ds.time, Timestep(18)));
        let r = rs.nearest_region_for(&ds, poi, Timestep(18));
        assert!(r.is_some());
        assert!(rs.get(r.unwrap()).members.contains(&poi));
    }

    #[test]
    fn region_time_intervals_and_members_consistent() {
        let ds = dataset(300);
        let rs = decompose(&ds, &MechanismConfig::default());
        for r in rs.all() {
            assert!(r.time.width_min() >= 60);
            assert!(r.radius_m >= 0.0);
            assert!(r.popularity > 0.0);
            // Every member is open at some point in the region's interval.
            for &m in &r.members {
                assert!(ds
                    .pois
                    .get(m)
                    .opening
                    .overlaps_interval(r.time.start_min, r.time.end_min));
            }
        }
    }

    #[test]
    fn popularity_guard_freezes_hot_regions() {
        let mut ds = dataset(300);
        // Make one POI overwhelmingly popular.
        // (Rebuild the dataset with the modified popularity.)
        let h = ds.hierarchy.clone();
        let mut pois = ds.pois.all().to_vec();
        pois[42].popularity = 1e6;
        ds = Dataset::new(pois, h, ds.time, ds.speed_kmh, ds.metric);

        let mut cfg = MechanismConfig::default();
        cfg.popularity_guard_quantile = Some(0.999);
        let rs = decompose(&ds, &cfg);
        // The hot POI's regions should be tiny (unmerged base regions),
        // despite kappa = 10.
        let hot_regions: Vec<&StcRegion> = rs
            .all()
            .iter()
            .filter(|r| r.members.contains(&PoiId(42)))
            .collect();
        assert!(!hot_regions.is_empty());
        for r in hot_regions {
            assert!(
                r.len() < 10,
                "hot region should stay unmerged, has {} members",
                r.len()
            );
        }
    }

    #[test]
    fn encode_trajectory_produces_matching_regions() {
        let ds = dataset(200);
        let rs = decompose(&ds, &MechanismConfig::default());
        let traj = trajshare_model::Trajectory::from_pairs(&[(0, 60), (3, 62), (6, 66)]);
        let regions = rs.encode(&ds, &traj).unwrap();
        assert_eq!(regions.len(), 3);
        for (i, &rid) in regions.iter().enumerate() {
            let r = rs.get(rid);
            assert!(r.members.contains(&traj.point(i).poi));
        }
    }

    #[test]
    fn deterministic_region_ids_across_runs() {
        let ds = dataset(250);
        let a = decompose(&ds, &MechanismConfig::default());
        let b = decompose(&ds, &MechanismConfig::default());
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.all().iter().zip(b.all()) {
            assert_eq!(ra.members, rb.members);
            assert_eq!(ra.time, rb.time);
            assert_eq!(ra.category, rb.category);
        }
    }

    #[test]
    fn category_merge_lifts_to_parent_nodes() {
        let ds = dataset(60); // sparse -> heavy merging
        let mut cfg = MechanismConfig::default();
        cfg.merge_order = vec![MergeDimension::Category, MergeDimension::Category];
        cfg.kappa = 50;
        let rs = decompose(&ds, &cfg);
        // After two category lifts, some regions should sit at level 1.
        let has_internal = rs
            .all()
            .iter()
            .any(|r| ds.hierarchy.level(r.category) < ds.hierarchy.max_level());
        assert!(has_internal, "expected lifted category nodes");
    }
}

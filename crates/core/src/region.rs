//! STC regions and the region set produced by hierarchical decomposition.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trajshare_geo::GeoPoint;
use trajshare_hierarchy::CategoryId;
use trajshare_model::{PoiId, TimeInterval, Timestep, Trajectory};

/// Index of an STC region within its [`RegionSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl RegionId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A space-time-category region `r_stc` (§4, §5.3).
#[derive(Debug, Clone)]
pub struct StcRegion {
    /// Member POIs (unique).
    pub members: Vec<PoiId>,
    /// Centroid of the member POI locations (§5.10).
    pub centroid: GeoPoint,
    /// Maximum member distance from the centroid, in meters. Together with
    /// centroids this gives a cheap bound on min/max inter-region POI
    /// distances.
    pub radius_m: f64,
    /// The region's time interval (merged intervals are widened).
    pub time: TimeInterval,
    /// Category node — a leaf before category merging, possibly an internal
    /// node after.
    pub category: CategoryId,
    /// Sum of member popularities (used for merge decisions and reporting).
    pub popularity: f64,
}

impl StcRegion {
    /// Number of member POIs.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the region has no members (never true after decomposition —
    /// empty regions are pruned per §5.3).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Key of a *base* (pre-merge) region: finest grid cell, time tile index,
/// and leaf category.
pub(crate) type BaseKey = (u32, u32, u32);

/// The decomposed region set with the base-key → region lookup needed to
/// convert trajectories to the region level.
#[derive(Debug, Clone)]
pub struct RegionSet {
    regions: Vec<StcRegion>,
    /// Maps the base key of every non-empty fine region to its final
    /// (possibly merged) region.
    lookup: HashMap<BaseKey, RegionId>,
    /// Width of a base time tile, in minutes.
    tile_min: u32,
    /// Finest grid used for the spatial component of base keys.
    pub(crate) grid: trajshare_geo::UniformGrid,
}

impl RegionSet {
    pub(crate) fn new(
        regions: Vec<StcRegion>,
        lookup: HashMap<BaseKey, RegionId>,
        tile_min: u32,
        grid: trajshare_geo::UniformGrid,
    ) -> Self {
        Self {
            regions,
            lookup,
            tile_min,
            grid,
        }
    }

    /// Number of regions `|R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The region for an id.
    #[inline]
    pub fn get(&self, id: RegionId) -> &StcRegion {
        &self.regions[id.index()]
    }

    /// All regions.
    #[inline]
    pub fn all(&self) -> &[StcRegion] {
        &self.regions
    }

    /// Iterator over region ids.
    pub fn ids(&self) -> impl Iterator<Item = RegionId> {
        (0..self.regions.len() as u32).map(RegionId)
    }

    /// Base time-tile width in minutes.
    #[inline]
    pub fn tile_min(&self) -> u32 {
        self.tile_min
    }

    /// Resolves a (POI, timestep) pair to its region, given the POI's
    /// location cell and leaf category.
    ///
    /// Returns `None` when the POI has no region for the tile containing
    /// `t` (i.e. the POI is closed then) — callers fall back to
    /// [`RegionSet::nearest_region_for`].
    pub fn region_of(
        &self,
        dataset: &trajshare_model::Dataset,
        poi: PoiId,
        t: Timestep,
    ) -> Option<RegionId> {
        let p = dataset.pois.get(poi);
        let cell = self.grid.cell_of(p.location).0;
        let tile = dataset.time.minute_of(t) / self.tile_min;
        self.lookup.get(&(cell, tile, p.category.0)).copied()
    }

    /// Like [`RegionSet::region_of`] but falls back to the tile (same cell
    /// and category) closest in time when the exact tile has no region.
    pub fn nearest_region_for(
        &self,
        dataset: &trajshare_model::Dataset,
        poi: PoiId,
        t: Timestep,
    ) -> Option<RegionId> {
        if let Some(r) = self.region_of(dataset, poi, t) {
            return Some(r);
        }
        let p = dataset.pois.get(poi);
        let cell = self.grid.cell_of(p.location).0;
        let tile = (dataset.time.minute_of(t) / self.tile_min) as i64;
        let tiles_per_day = (trajshare_model::time::MINUTES_PER_DAY / self.tile_min) as i64;
        for delta in 1..tiles_per_day {
            for cand in [tile - delta, tile + delta] {
                if (0..tiles_per_day).contains(&cand) {
                    if let Some(&r) = self.lookup.get(&(cell, cand as u32, p.category.0)) {
                        return Some(r);
                    }
                }
            }
        }
        None
    }

    /// Converts a trajectory to its region-level representation (§5.4,
    /// "convert each trajectory from a sequence of POI-timestep pairs to a
    /// sequence of STC regions").
    ///
    /// Returns `None` if any point cannot be assigned to a region (POI
    /// missing from every tile — cannot happen for POIs with at least one
    /// open hour).
    pub fn encode(
        &self,
        dataset: &trajshare_model::Dataset,
        trajectory: &Trajectory,
    ) -> Option<Vec<RegionId>> {
        trajectory
            .points()
            .iter()
            .map(|pt| self.nearest_region_for(dataset, pt.poi, pt.t))
            .collect()
    }
}

//! Continuous single-point sharing (§8 future work: "our solution can be
//! adapted ... to consider the setting where single location points are
//! shared continuously").
//!
//! Each report perturbs one (POI, timestep) visit as a 1-gram over the STC
//! region universe, spending a fixed ε per report from a total budget. The
//! accountant hard-stops further reports once the budget is gone — the
//! sequential-composition guarantee of §5.7 ("assuming each of k
//! trajectories is assigned a privacy budget of ε, the resultant release
//! provides (kε)-LDP") enforced mechanically.

use crate::config::MechanismConfig;
use crate::decomposition::decompose;
use crate::region::{RegionId, RegionSet};
use crate::regiongraph::RegionGraph;
use rand::Rng;
use trajshare_mech::{BudgetError, PrivacyBudget};
use trajshare_model::{Dataset, PoiId, Timestep, TrajectoryPoint};

/// A stateful per-user sharer for streaming location reports.
#[derive(Debug, Clone)]
pub struct ContinuousSharer {
    dataset: Dataset,
    regions: RegionSet,
    graph: RegionGraph,
    eps_per_report: f64,
    budget: PrivacyBudget,
}

impl ContinuousSharer {
    /// Builds the sharer: `total_epsilon` is the user's lifetime budget,
    /// `eps_per_report` the cost of each shared point.
    pub fn build(
        dataset: &Dataset,
        config: &MechanismConfig,
        total_epsilon: f64,
        eps_per_report: f64,
    ) -> Self {
        assert!(eps_per_report > 0.0 && eps_per_report <= total_epsilon);
        let regions = decompose(dataset, config);
        let graph = RegionGraph::build(dataset, &regions);
        Self {
            dataset: dataset.clone(),
            regions,
            graph,
            eps_per_report,
            budget: PrivacyBudget::new(total_epsilon),
        }
    }

    /// Budget still available.
    pub fn remaining_epsilon(&self) -> f64 {
        self.budget.remaining()
    }

    /// Number of reports still affordable.
    pub fn remaining_reports(&self) -> usize {
        (self.budget.remaining() / self.eps_per_report + 1e-9) as usize
    }

    /// Shares one visit under `eps_per_report`-LDP, or fails when the
    /// lifetime budget is exhausted (no partial spend on failure).
    pub fn share<R: Rng + ?Sized>(
        &mut self,
        poi: PoiId,
        t: Timestep,
        rng: &mut R,
    ) -> Result<TrajectoryPoint, BudgetError> {
        let region = self.share_region(poi, t, rng)?;
        Ok(self.sample_point(region, t, rng))
    }

    /// Shares one visit at the *region* level — the raw 1-gram EM draw a
    /// client uploads in the aggregation setting (`trajshare_aggregate`).
    /// Same budget accounting as [`ContinuousSharer::share`]; concretizing
    /// the region into a (POI, timestep) pair is post-processing.
    pub fn share_region<R: Rng + ?Sized>(
        &mut self,
        poi: PoiId,
        t: Timestep,
        rng: &mut R,
    ) -> Result<RegionId, BudgetError> {
        self.budget.consume(self.eps_per_report)?;
        let truth = self
            .regions
            .nearest_region_for(&self.dataset, poi, t)
            .expect("every POI with open hours has a region");
        // 1-gram EM draw over the region universe (§5.4 with n = 1).
        let sampled =
            crate::perturb::sample_window(&self.graph, &[truth], self.eps_per_report, rng);
        Ok(sampled[0])
    }

    /// Per-report budget ε each [`ContinuousSharer::share`] spends.
    #[inline]
    pub fn eps_per_report(&self) -> f64 {
        self.eps_per_report
    }

    /// The decomposed region universe the sharer reports over.
    #[inline]
    pub fn regions(&self) -> &RegionSet {
        &self.regions
    }

    /// The feasible n-gram universe over those regions.
    #[inline]
    pub fn graph(&self) -> &RegionGraph {
        &self.graph
    }

    /// Post-processing: concretize a region into a (POI, timestep) pair;
    /// keeps the report's time inside the region's interval.
    fn sample_point<R: Rng + ?Sized>(
        &self,
        region: RegionId,
        _true_t: Timestep,
        rng: &mut R,
    ) -> TrajectoryPoint {
        let r = self.regions.get(region);
        let gt = self.dataset.time.gt_minutes();
        let lo = r.time.start_min / gt;
        let hi = (r.time.end_min / gt).max(lo + 1);
        // Prefer members open at the drawn timestep; fall back to any member.
        for _ in 0..64 {
            let t = Timestep(rng.random_range(lo..hi) as u16);
            let open: Vec<PoiId> = r
                .members
                .iter()
                .copied()
                .filter(|&p| {
                    self.dataset
                        .pois
                        .get(p)
                        .opening
                        .is_open_at(&self.dataset.time, t)
                })
                .collect();
            if let Some(&poi) = open.get(
                rng.random_range(0..open.len().max(1))
                    .min(open.len().saturating_sub(1)),
            ) {
                return TrajectoryPoint { poi, t };
            }
        }
        let poi = r.members[rng.random_range(0..r.members.len())];
        let t = Timestep(lo as u16);
        TrajectoryPoint { poi, t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, TimeDomain};

    fn dataset() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..40)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m((i % 8) as f64 * 400.0, (i / 8) as f64 * 400.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn budget_limits_report_count() {
        let ds = dataset();
        let mut sharer = ContinuousSharer::build(&ds, &MechanismConfig::default(), 5.0, 1.0);
        assert_eq!(sharer.remaining_reports(), 5);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..5 {
            sharer
                .share(PoiId(3), Timestep(60 + i), &mut rng)
                .unwrap_or_else(|e| panic!("report {i}: {e}"));
        }
        assert_eq!(sharer.remaining_reports(), 0);
        let err = sharer.share(PoiId(3), Timestep(70), &mut rng);
        assert!(err.is_err(), "sixth report must be refused");
    }

    #[test]
    fn failed_share_does_not_consume_budget() {
        let ds = dataset();
        let mut sharer = ContinuousSharer::build(&ds, &MechanismConfig::default(), 1.0, 0.6);
        let mut rng = StdRng::seed_from_u64(2);
        sharer.share(PoiId(0), Timestep(60), &mut rng).unwrap();
        let before = sharer.remaining_epsilon();
        assert!(sharer.share(PoiId(0), Timestep(61), &mut rng).is_err());
        assert_eq!(sharer.remaining_epsilon(), before);
    }

    #[test]
    fn shared_points_are_valid_dataset_members() {
        let ds = dataset();
        let mut sharer = ContinuousSharer::build(&ds, &MechanismConfig::default(), 100.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..20u16 {
            let pt = sharer
                .share(PoiId(i as u32 % 40), Timestep(40 + i), &mut rng)
                .unwrap();
            assert!(pt.poi.index() < ds.pois.len());
            assert!(pt.t.index() < ds.time.num_timesteps());
        }
    }

    #[test]
    fn high_epsilon_reports_stay_near_truth() {
        let ds = dataset();
        let mut near = ContinuousSharer::build(&ds, &MechanismConfig::default(), 10_000.0, 100.0);
        let mut far = ContinuousSharer::build(&ds, &MechanismConfig::default(), 10.0, 0.01);
        let mut rng = StdRng::seed_from_u64(4);
        let truth = (PoiId(20), Timestep(72));
        let mean_dist = |s: &mut ContinuousSharer, rng: &mut StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..30 {
                let pt = s.share(truth.0, truth.1, rng).unwrap();
                total += crate::distances::point_distance(&ds, truth, (pt.poi, pt.t));
            }
            total / 30.0
        };
        let d_near = mean_dist(&mut near, &mut rng);
        let d_far = mean_dist(&mut far, &mut rng);
        assert!(
            d_near < d_far,
            "ε=100/report ({d_near}) must beat ε=0.01 ({d_far})"
        );
    }
}

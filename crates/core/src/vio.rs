//! Vectored-I/O helper shared by every scatter-gather socket writer in
//! the workspace (`std::io::Write::write_all_vectored` is unstable, so
//! the partial-write loop lives here once instead of in each caller).

use std::io::{self, IoSlice, Write};

/// Writes every byte of `bufs` with `write_vectored`, advancing across
/// partial writes — the scatter-gather equivalent of `write_all`. The
/// slice list is consumed (its elements are advanced in place).
pub fn write_all_vectored<W: Write + ?Sized>(
    w: &mut W,
    mut bufs: &mut [IoSlice<'_>],
) -> io::Result<()> {
    let mut remaining: usize = bufs.iter().map(|b| b.len()).sum();
    while remaining > 0 {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole vectored buffer",
                ));
            }
            Ok(n) => {
                remaining -= n.min(remaining);
                if remaining == 0 {
                    break;
                }
                IoSlice::advance_slices(&mut bufs, n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call and, when
    /// `vectored` is false, ignores all but the first buffer — both
    /// partial-write shapes the loop must survive.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut n = 0;
            for b in bufs {
                if n >= self.cap {
                    break;
                }
                let take = b.len().min(self.cap - n);
                self.out.extend_from_slice(&b[..take]);
                n += take;
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn survives_partial_writes_at_every_granularity() {
        let segs: [&[u8]; 4] = [b"alpha", b"", b"beta-gamma", b"d"];
        let want: Vec<u8> = segs.concat();
        for cap in 1..=want.len() + 1 {
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            let mut io: Vec<IoSlice> = segs.iter().map(|s| IoSlice::new(s)).collect();
            write_all_vectored(&mut w, &mut io).unwrap();
            assert_eq!(w.out, want, "cap {cap}");
        }
    }

    #[test]
    fn empty_and_all_empty_buffer_lists_are_noops() {
        let mut w = Dribble {
            out: Vec::new(),
            cap: 8,
        };
        write_all_vectored(&mut w, &mut []).unwrap();
        let mut io = [IoSlice::new(b""), IoSlice::new(b"")];
        write_all_vectored(&mut w, &mut io).unwrap();
        assert!(w.out.is_empty());
    }
}

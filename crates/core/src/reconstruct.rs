//! Optimal region-level trajectory reconstruction (§5.5).
//!
//! Given the perturbed n-gram multiset `Z`, we pick one region per
//! trajectory position by minimizing the total bigram error (Eq. 10) under
//! continuity (Eq. 11–12), restricted to the minimum bounding rectangle of
//! the regions observed in `Z` (the `R_mbr` pruning of §5.5). The problem
//! is a layered shortest path; we solve it with Viterbi by default or the
//! paper-faithful ILP on request. This is pure post-processing: no privacy
//! budget is consumed.

use crate::config::ReconstructionSolver;
use crate::perturb::PerturbedWindow;
use crate::region::{RegionId, RegionSet};
use crate::regiongraph::RegionGraph;
use std::time::{Duration, Instant};
use trajshare_geo::BoundingBox;
use trajshare_lp::LatticeProblem;
use trajshare_model::Dataset;

/// Result of region-level reconstruction with stage timings.
#[derive(Debug, Clone)]
pub struct RegionReconstruction {
    pub regions: Vec<RegionId>,
    pub prep: Duration,
    pub solve: Duration,
}

/// Reconstructs the region sequence of length `traj_len` from `Z`.
pub fn reconstruct_regions(
    dataset: &Dataset,
    regions: &RegionSet,
    graph: &RegionGraph,
    z: &[PerturbedWindow],
    traj_len: usize,
    solver: ReconstructionSolver,
) -> RegionReconstruction {
    assert!(traj_len >= 1);
    let t0 = Instant::now();

    // --- R_mbr restriction. ---
    let mut mbr: Option<BoundingBox> = None;
    for pw in z {
        for &r in &pw.regions {
            for &m in &regions.get(r).members {
                let loc = dataset.pois.get(m).location;
                match &mut mbr {
                    Some(bb) => bb.expand(loc),
                    None => mbr = Some(BoundingBox::from_point(loc)),
                }
            }
        }
    }
    let mbr = mbr.expect("Z is never empty").inflate(1e-6);
    let mut in_mbr: Vec<u32> = Vec::new();
    for rid in regions.ids() {
        let r = regions.get(rid);
        if r.members
            .iter()
            .any(|&m| mbr.contains(dataset.pois.get(m).location))
        {
            in_mbr.push(rid.0);
        }
    }
    // Local dense index for the restricted region set.
    let mut local_of = vec![u32::MAX; regions.len()];
    for (li, &g) in in_mbr.iter().enumerate() {
        local_of[g as usize] = li as u32;
    }

    // --- Node errors e(r, i) (Eq. 8). ---
    let nl = in_mbr.len();
    let mut node_err = vec![vec![0.0f64; nl]; traj_len];
    for pw in z {
        for (k, &zr) in pw.regions.iter().enumerate() {
            let i = pw.window.a + k;
            debug_assert!(i < traj_len);
            for (li, &g) in in_mbr.iter().enumerate() {
                node_err[i][li] += graph.distance.get(RegionId(g), zr);
            }
        }
    }

    // --- Degenerate single-point trajectory: argmin node error. ---
    if traj_len == 1 {
        let prep = t0.elapsed();
        let t1 = Instant::now();
        let best = (0..nl)
            .min_by(|&a, &b| node_err[0][a].total_cmp(&node_err[0][b]))
            .unwrap_or(0);
        return RegionReconstruction {
            regions: vec![RegionId(in_mbr[best])],
            prep,
            solve: t1.elapsed(),
        };
    }

    // --- W2_mbr arcs and per-position bigram costs (Eq. 9). ---
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    for &(u, v) in &graph.bigrams {
        let (lu, lv) = (local_of[u as usize], local_of[v as usize]);
        if lu != u32::MAX && lv != u32::MAX {
            arcs.push((lu as usize, lv as usize));
        }
    }
    let fallback = |prep: Duration| {
        // No usable lattice (empty W2 inside the MBR): return the
        // position-wise argmin — the best unconstrained post-processing.
        let t1 = Instant::now();
        let regions_out = (0..traj_len)
            .map(|i| {
                let best = (0..nl)
                    .min_by(|&a, &b| node_err[i][a].total_cmp(&node_err[i][b]))
                    .unwrap_or(0);
                RegionId(in_mbr[best])
            })
            .collect();
        RegionReconstruction {
            regions: regions_out,
            prep,
            solve: t1.elapsed(),
        }
    };
    if arcs.is_empty() {
        return fallback(t0.elapsed());
    }
    let costs: Vec<Vec<f64>> = (0..traj_len - 1)
        .map(|i| {
            arcs.iter()
                .map(|&(u, v)| node_err[i][u] + node_err[i + 1][v])
                .collect()
        })
        .collect();
    let lattice = LatticeProblem {
        num_nodes: nl,
        arcs,
        costs,
    };
    let prep = t0.elapsed();

    // --- Solve. ---
    let t1 = Instant::now();
    let solution = match solver {
        ReconstructionSolver::Viterbi => lattice.solve_viterbi(),
        ReconstructionSolver::Ilp => lattice.solve_ilp(200_000),
    };
    let solve = t1.elapsed();
    match solution {
        Some(s) => RegionReconstruction {
            regions: s.nodes.into_iter().map(|li| RegionId(in_mbr[li])).collect(),
            prep,
            solve,
        },
        None => fallback(prep),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MechanismConfig;
    use crate::decomposition::decompose;
    use crate::perturb::{perturb_region_sequence, PerturbedWindow, Window};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain, Trajectory};

    fn setup() -> (Dataset, RegionSet, RegionGraph) {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..60)
            .map(|i| {
                let loc = origin.offset_m((i % 6) as f64 * 400.0, (i / 6) as f64 * 400.0);
                Poi::new(
                    PoiId(i as u32),
                    format!("p{i}"),
                    loc,
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        let ds = Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            Some(8.0),
            DistanceMetric::Haversine,
        );
        let rs = decompose(&ds, &MechanismConfig::default());
        let g = RegionGraph::build(&ds, &rs);
        (ds, rs, g)
    }

    /// Z consisting of exact (unperturbed) windows for a region sequence.
    fn exact_z(seq: &[RegionId]) -> Vec<PerturbedWindow> {
        let mut z = Vec::new();
        for a in 0..seq.len() - 1 {
            z.push(PerturbedWindow {
                window: Window { a, b: a + 1 },
                regions: vec![seq[a], seq[a + 1]],
            });
        }
        z.push(PerturbedWindow {
            window: Window { a: 0, b: 0 },
            regions: vec![seq[0]],
        });
        z.push(PerturbedWindow {
            window: Window {
                a: seq.len() - 1,
                b: seq.len() - 1,
            },
            regions: vec![seq[seq.len() - 1]],
        });
        z
    }

    #[test]
    fn exact_windows_reconstruct_the_true_sequence() {
        let (ds, rs, g) = setup();
        let traj = Trajectory::from_pairs(&[(0, 60), (7, 62), (14, 65)]);
        let seq = rs.encode(&ds, &traj).unwrap();
        // The true sequence must itself be feasible for this test.
        for w in seq.windows(2) {
            assert!(
                g.is_feasible(w[0], w[1]),
                "test fixture produced infeasible truth"
            );
        }
        let z = exact_z(&seq);
        let rec = reconstruct_regions(&ds, &rs, &g, &z, seq.len(), ReconstructionSolver::Viterbi);
        assert_eq!(rec.regions, seq, "zero-error Z must reconstruct exactly");
    }

    #[test]
    fn viterbi_and_ilp_agree() {
        let (ds, rs, g) = setup();
        let traj = Trajectory::from_pairs(&[(0, 60), (7, 62), (14, 65), (20, 70)]);
        let seq = rs.encode(&ds, &traj).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let z = perturb_region_sequence(&g, &seq, 2, 1.0, &mut rng);
        let v = reconstruct_regions(&ds, &rs, &g, &z, seq.len(), ReconstructionSolver::Viterbi);
        let i = reconstruct_regions(&ds, &rs, &g, &z, seq.len(), ReconstructionSolver::Ilp);
        // Costs must agree (paths may tie); compare total bigram error.
        let cost = |rec: &RegionReconstruction| -> f64 {
            let node_err = |i: usize, r: RegionId| -> f64 {
                z.iter()
                    .filter(|pw| pw.window.covers(i))
                    .map(|pw| g.distance.get(r, pw.regions[i - pw.window.a]))
                    .sum()
            };
            (0..rec.regions.len() - 1)
                .map(|i| node_err(i, rec.regions[i]) + node_err(i + 1, rec.regions[i + 1]))
                .sum()
        };
        assert!(
            (cost(&v) - cost(&i)).abs() < 1e-6,
            "viterbi {} vs ilp {}",
            cost(&v),
            cost(&i)
        );
    }

    #[test]
    fn output_respects_bigram_feasibility() {
        let (ds, rs, g) = setup();
        let traj = Trajectory::from_pairs(&[(0, 60), (7, 63), (14, 66), (20, 69), (25, 72)]);
        let seq = rs.encode(&ds, &traj).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let z = perturb_region_sequence(&g, &seq, 2, 2.0, &mut rng);
            let rec =
                reconstruct_regions(&ds, &rs, &g, &z, seq.len(), ReconstructionSolver::Viterbi);
            assert_eq!(rec.regions.len(), seq.len());
            for w in rec.regions.windows(2) {
                assert!(
                    g.is_feasible(w[0], w[1]),
                    "trial {trial}: infeasible output bigram"
                );
            }
        }
    }

    #[test]
    fn single_point_trajectory_uses_argmin() {
        let (ds, rs, g) = setup();
        let r = RegionId(3);
        let z = vec![PerturbedWindow {
            window: Window { a: 0, b: 0 },
            regions: vec![r],
        }];
        let rec = reconstruct_regions(&ds, &rs, &g, &z, 1, ReconstructionSolver::Viterbi);
        assert_eq!(rec.regions.len(), 1);
        // The argmin of d(r, ·) is r itself.
        assert_eq!(rec.regions[0], r);
    }

    #[test]
    fn mbr_restriction_still_allows_observed_regions() {
        // Every region appearing in Z must survive the MBR restriction, so
        // reconstruction of exact Z can always return it (§5.5: "does not
        // prevent the optimal reconstructed trajectory from being found").
        let (ds, rs, g) = setup();
        let traj = Trajectory::from_pairs(&[(3, 60), (10, 64)]);
        let seq = rs.encode(&ds, &traj).unwrap();
        if g.is_feasible(seq[0], seq[1]) {
            let z = exact_z(&seq);
            let rec =
                reconstruct_regions(&ds, &rs, &g, &z, seq.len(), ReconstructionSolver::Viterbi);
            assert_eq!(rec.regions, seq);
        }
    }
}

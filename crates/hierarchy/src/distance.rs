//! The semantic category distance `d_c` of §5.10 / Figure 5.
//!
//! Anchor values from Figure 5, measured relative to a reference leaf in a
//! three-level hierarchy:
//!
//! | pair | `d_c` |
//! |------|-------|
//! | same node | 0 |
//! | sibling leaf (same level-2 parent) | 2 |
//! | leaf → its level-2 parent | 3.5 |
//! | cousin leaf (same level-1 root, different level-2) | 5 |
//! | leaf → its level-1 ancestor | 6.5 |
//! | leaf → "uncle" level-2 node (same level-1 root) | 8 |
//! | different level-1 roots ("unrelated") | 10 |
//!
//! Generalization rule (documented in DESIGN.md §6): let `ℓ` be the level of
//! the lowest common ancestor. The base distance is `sibling_base(ℓ)`
//! (2 for ℓ=2, 5 for ℓ=1, 10 when there is no common root). If one node is
//! an ancestor of the other, the dedicated ancestor values apply (3.5 per
//! single level up, 6.5 for two levels). Otherwise every *internal* (non-
//! leaf-level) endpoint adds `+3` per level above leaf depth. All distances
//! are capped at [`CategoryDistance::UNRELATED`] (= 10) and symmetric.

use crate::tree::{CategoryHierarchy, CategoryId};

/// Precomputed pairwise category distances for one hierarchy.
///
/// The matrix is `O(|nodes|²)` `f32`s — for the paper's three-level
/// hierarchies (a few hundred nodes) this is a handful of megabytes at most,
/// and lookups in the perturbation hot loop are a single indexed load.
#[derive(Debug, Clone)]
pub struct CategoryDistance {
    n: usize,
    matrix: Vec<f32>,
}

impl CategoryDistance {
    /// `d_c` for nodes in different level-1 subtrees; also the global cap.
    pub const UNRELATED: f64 = 10.0;

    /// Builds the full distance matrix for `hierarchy`.
    pub fn build(hierarchy: &CategoryHierarchy) -> Self {
        let n = hierarchy.len();
        let mut matrix = vec![0.0f32; n * n];
        for a in hierarchy.ids() {
            for b in hierarchy.ids() {
                if b.0 < a.0 {
                    continue;
                }
                let d = Self::pair_distance(hierarchy, a, b) as f32;
                matrix[a.index() * n + b.index()] = d;
                matrix[b.index() * n + a.index()] = d;
            }
        }
        Self { n, matrix }
    }

    /// Distance between two category nodes (symmetric, `O(1)` lookup).
    #[inline]
    pub fn get(&self, a: CategoryId, b: CategoryId) -> f64 {
        self.matrix[a.index() * self.n + b.index()] as f64
    }

    /// Number of nodes covered by the matrix.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Maximum pairwise distance (the cap, when any two unrelated roots
    /// exist; used in sensitivity computations).
    pub fn max_distance(&self) -> f64 {
        self.matrix.iter().copied().fold(0.0f32, f32::max) as f64
    }

    /// The Figure-5 distance for a single pair, computed from tree shape.
    fn pair_distance(h: &CategoryHierarchy, a: CategoryId, b: CategoryId) -> f64 {
        if a == b {
            return 0.0;
        }
        let Some(lca) = h.lca(a, b) else {
            return Self::UNRELATED;
        };
        let max_level = h.max_level() as f64;
        let (la, lb) = (h.level(a) as f64, h.level(b) as f64);
        let lca_level = h.level(lca) as f64;

        // Ancestor relationship: one endpoint *is* the LCA.
        if lca == a || lca == b {
            let levels_up = (la - lb).abs();
            // 1 level up -> 3.5, 2 levels -> 6.5 (Figure 5); +3 per extra level.
            let d = 3.5 + 3.0 * (levels_up - 1.0);
            return d.min(Self::UNRELATED);
        }

        // Sibling base by LCA level: level max-1 (parents) -> 2,
        // level max-2 -> 5; each further level towards the root adds 3
        // before the cap, mirroring the 2/5/10 leaf anchors.
        let depth_gap = max_level - 1.0 - lca_level; // 0 => share a parent level
        let base = 2.0 + 3.0 * depth_gap;
        // Internal endpoints (above leaf level) add +3 per level of
        // "internality" (leaf→uncle = 5 + 3 = 8 in Figure 5).
        let internal = (max_level - la) + (max_level - lb);
        (base + 3.0 * internal).min(Self::UNRELATED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::CategoryHierarchy;

    /// Builds the Figure-5 style hierarchy: 2 roots; root0 has 2 mids; the
    /// first mid has 3 leaves. Returns (h, ids) with ids laid out as:
    /// [root0, mid00, leaf0, leaf1, leaf2, mid01, leafX, root1, mid10, leafY]
    fn fig5() -> (CategoryHierarchy, Vec<CategoryId>) {
        let mut h = CategoryHierarchy::new();
        let root0 = h.add_root("root0");
        let mid00 = h.add_child(root0, "mid00");
        let leaf0 = h.add_child(mid00, "leaf0");
        let leaf1 = h.add_child(mid00, "leaf1");
        let leaf2 = h.add_child(mid00, "leaf2");
        let mid01 = h.add_child(root0, "mid01");
        let leafx = h.add_child(mid01, "leafX");
        let root1 = h.add_root("root1");
        let mid10 = h.add_child(root1, "mid10");
        let leafy = h.add_child(mid10, "leafY");
        (
            h,
            vec![
                root0, mid00, leaf0, leaf1, leaf2, mid01, leafx, root1, mid10, leafy,
            ],
        )
    }

    #[test]
    fn figure5_anchor_values() {
        let (h, ids) = fig5();
        let d = CategoryDistance::build(&h);
        let (root0, mid00, leaf0, leaf1, _leaf2, mid01, leafx, _root1, _mid10, leafy) = (
            ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7], ids[8], ids[9],
        );
        assert_eq!(d.get(leaf0, leaf0), 0.0, "same node");
        assert_eq!(d.get(leaf0, leaf1), 2.0, "sibling leaves");
        assert_eq!(d.get(leaf0, mid00), 3.5, "leaf to parent");
        assert_eq!(d.get(leaf0, leafx), 5.0, "cousin leaves");
        assert_eq!(d.get(leaf0, root0), 6.5, "leaf to grandparent");
        assert_eq!(d.get(leaf0, mid01), 8.0, "leaf to uncle");
        assert_eq!(d.get(leaf0, leafy), 10.0, "different roots");
    }

    #[test]
    fn symmetry_holds_for_all_pairs() {
        let (h, _) = fig5();
        let d = CategoryDistance::build(&h);
        for a in h.ids() {
            for b in h.ids() {
                assert_eq!(d.get(a, b), d.get(b, a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn distances_bounded_by_cap() {
        let (h, _) = fig5();
        let d = CategoryDistance::build(&h);
        for a in h.ids() {
            for b in h.ids() {
                let v = d.get(a, b);
                assert!((0.0..=CategoryDistance::UNRELATED).contains(&v));
            }
        }
        assert_eq!(d.max_distance(), CategoryDistance::UNRELATED);
    }

    #[test]
    fn zero_only_on_diagonal() {
        let (h, _) = fig5();
        let d = CategoryDistance::build(&h);
        for a in h.ids() {
            for b in h.ids() {
                if a != b {
                    assert!(d.get(a, b) > 0.0, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn sibling_closer_than_cousin_closer_than_unrelated() {
        let (h, ids) = fig5();
        let d = CategoryDistance::build(&h);
        let (leaf0, leaf1, leafx, leafy) = (ids[2], ids[3], ids[6], ids[9]);
        assert!(d.get(leaf0, leaf1) < d.get(leaf0, leafx));
        assert!(d.get(leaf0, leafx) < d.get(leaf0, leafy));
    }

    #[test]
    fn roots_of_distinct_subtrees_are_unrelated() {
        let (h, ids) = fig5();
        let d = CategoryDistance::build(&h);
        assert_eq!(d.get(ids[0], ids[7]), CategoryDistance::UNRELATED);
    }

    #[test]
    fn two_mid_siblings_distance() {
        let (h, ids) = fig5();
        let d = CategoryDistance::build(&h);
        // mid00 vs mid01: LCA root0 (level 1), both internal by one level:
        // base 5 + 3 + 3 = 11 -> capped at 10.
        assert_eq!(d.get(ids[1], ids[5]), 10.0);
        // mid00 vs root0: ancestor, one level -> 3.5.
        assert_eq!(d.get(ids[1], ids[0]), 3.5);
    }
}

//! Category hierarchies and the semantic category distance of the paper.
//!
//! POIs carry categories drawn from a multi-level classification hierarchy
//! (Foursquare's venue categories, NAICS, or a campus building taxonomy).
//! The paper's semantic distance `d_c` (§5.10, Figure 5) is defined over a
//! three-level hierarchy with fixed anchor values; [`CategoryDistance`]
//! reproduces those anchors exactly and generalizes to arbitrary node pairs.
//!
//! Synthetic stand-ins for the proprietary classification files are provided
//! in [`builders`] (see DESIGN.md §4).

pub mod builders;
pub mod distance;
pub mod tree;

pub use builders::{campus, foursquare, naics};
pub use distance::CategoryDistance;
pub use tree::{CategoryHierarchy, CategoryId, CategoryNode};

//! Generic multi-level category tree.
//!
//! Nodes are stored in a flat arena indexed by [`CategoryId`]; each node
//! records its parent and level (1 = top/root level, increasing downwards).
//! The paper uses the first three levels of the Foursquare and NAICS
//! hierarchies (§6.2), so three levels is the common case, but the tree is
//! depth-agnostic.

use serde::{Deserialize, Serialize};

/// Index of a category node within its [`CategoryHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CategoryId(pub u32);

impl CategoryId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single node of the hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryNode {
    /// Human-readable name, e.g. "Food" or "Shoe Shop".
    pub name: String,
    /// Parent node; `None` for level-1 roots.
    pub parent: Option<CategoryId>,
    /// 1-based level: 1 for roots, `max_level()` for the deepest leaves.
    pub level: u8,
}

/// An arena-backed category hierarchy.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CategoryHierarchy {
    nodes: Vec<CategoryNode>,
    children: Vec<Vec<CategoryId>>,
    max_level: u8,
}

impl CategoryHierarchy {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a level-1 root category and returns its id.
    pub fn add_root(&mut self, name: impl Into<String>) -> CategoryId {
        self.push(CategoryNode {
            name: name.into(),
            parent: None,
            level: 1,
        })
    }

    /// Adds a child of `parent` and returns its id.
    ///
    /// Panics if `parent` is out of bounds.
    pub fn add_child(&mut self, parent: CategoryId, name: impl Into<String>) -> CategoryId {
        let level = self.nodes[parent.index()].level + 1;
        self.push(CategoryNode {
            name: name.into(),
            parent: Some(parent),
            level,
        })
    }

    fn push(&mut self, node: CategoryNode) -> CategoryId {
        let id = CategoryId(self.nodes.len() as u32);
        self.max_level = self.max_level.max(node.level);
        if let Some(p) = node.parent {
            self.children[p.index()].push(id);
        }
        self.nodes.push(node);
        self.children.push(Vec::new());
        id
    }

    /// Number of nodes (all levels).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the hierarchy has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Deepest level present (0 for an empty hierarchy).
    #[inline]
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// The node for `id`. Panics if out of bounds.
    #[inline]
    pub fn node(&self, id: CategoryId) -> &CategoryNode {
        &self.nodes[id.index()]
    }

    /// Level of `id` (1-based).
    #[inline]
    pub fn level(&self, id: CategoryId) -> u8 {
        self.nodes[id.index()].level
    }

    /// Parent of `id`, if any.
    #[inline]
    pub fn parent(&self, id: CategoryId) -> Option<CategoryId> {
        self.nodes[id.index()].parent
    }

    /// Direct children of `id`.
    #[inline]
    pub fn children(&self, id: CategoryId) -> &[CategoryId] {
        &self.children[id.index()]
    }

    /// Whether `id` is a leaf (no children).
    #[inline]
    pub fn is_leaf(&self, id: CategoryId) -> bool {
        self.children[id.index()].is_empty()
    }

    /// Iterator over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = CategoryId> {
        (0..self.nodes.len() as u32).map(CategoryId)
    }

    /// All leaf node ids.
    pub fn leaves(&self) -> Vec<CategoryId> {
        self.ids().filter(|&id| self.is_leaf(id)).collect()
    }

    /// All level-1 roots.
    pub fn roots(&self) -> Vec<CategoryId> {
        self.ids().filter(|&id| self.parent(id).is_none()).collect()
    }

    /// The ancestor of `id` at `level`, or `None` if `level` is below the
    /// node's own level. `ancestor_at(id, level(id))` returns `id` itself.
    pub fn ancestor_at(&self, id: CategoryId, level: u8) -> Option<CategoryId> {
        let mut cur = id;
        loop {
            let l = self.level(cur);
            if l == level {
                return Some(cur);
            }
            if l < level {
                return None;
            }
            cur = self.parent(cur)?;
        }
    }

    /// Lowest common ancestor of `a` and `b`, or `None` if they are in
    /// different level-1 subtrees.
    pub fn lca(&self, a: CategoryId, b: CategoryId) -> Option<CategoryId> {
        let (mut a, mut b) = (a, b);
        while self.level(a) > self.level(b) {
            a = self.parent(a)?;
        }
        while self.level(b) > self.level(a) {
            b = self.parent(b)?;
        }
        while a != b {
            a = self.parent(a)?;
            b = self.parent(b)?;
        }
        Some(a)
    }

    /// Whether `anc` is an ancestor of `id` (or equal to it).
    pub fn is_ancestor_or_self(&self, anc: CategoryId, id: CategoryId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Full path of names from root to `id`, joined with " / ".
    pub fn path_name(&self, id: CategoryId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            parts.push(self.node(c).name.as_str());
            cur = self.parent(c);
        }
        parts.reverse();
        parts.join(" / ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two roots, each with two level-2 children, each with two leaves.
    fn sample() -> (CategoryHierarchy, Vec<CategoryId>) {
        let mut h = CategoryHierarchy::new();
        let mut ids = Vec::new();
        for r in 0..2 {
            let root = h.add_root(format!("root{r}"));
            ids.push(root);
            for m in 0..2 {
                let mid = h.add_child(root, format!("mid{r}{m}"));
                ids.push(mid);
                for l in 0..2 {
                    ids.push(h.add_child(mid, format!("leaf{r}{m}{l}")));
                }
            }
        }
        (h, ids)
    }

    #[test]
    fn levels_and_counts() {
        let (h, _) = sample();
        assert_eq!(h.len(), 14);
        assert_eq!(h.max_level(), 3);
        assert_eq!(h.roots().len(), 2);
        assert_eq!(h.leaves().len(), 8);
    }

    #[test]
    fn parent_child_links() {
        let (h, ids) = sample();
        let root = ids[0];
        let mid = ids[1];
        assert_eq!(h.parent(mid), Some(root));
        assert!(h.children(root).contains(&mid));
        assert_eq!(h.level(root), 1);
        assert_eq!(h.level(mid), 2);
    }

    #[test]
    fn ancestor_at_levels() {
        let (h, ids) = sample();
        let leaf = ids[2]; // first leaf under root0/mid00
        assert_eq!(h.level(leaf), 3);
        assert_eq!(h.ancestor_at(leaf, 3), Some(leaf));
        assert_eq!(h.ancestor_at(leaf, 2), Some(ids[1]));
        assert_eq!(h.ancestor_at(leaf, 1), Some(ids[0]));
        assert_eq!(h.ancestor_at(ids[0], 2), None);
    }

    #[test]
    fn lca_same_subtree() {
        let (h, ids) = sample();
        // leaves under the same mid -> mid; under different mids -> root.
        assert_eq!(h.lca(ids[2], ids[3]), Some(ids[1]));
        assert_eq!(h.lca(ids[2], ids[5]), Some(ids[0]));
        // node with its own ancestor -> the ancestor.
        assert_eq!(h.lca(ids[2], ids[0]), Some(ids[0]));
        assert_eq!(h.lca(ids[2], ids[2]), Some(ids[2]));
    }

    #[test]
    fn lca_across_roots_is_none() {
        let (h, ids) = sample();
        let left_leaf = ids[2];
        let right_leaf = *ids.last().unwrap();
        assert_eq!(h.lca(left_leaf, right_leaf), None);
    }

    #[test]
    fn is_ancestor_or_self_works() {
        let (h, ids) = sample();
        assert!(h.is_ancestor_or_self(ids[0], ids[2]));
        assert!(h.is_ancestor_or_self(ids[2], ids[2]));
        assert!(!h.is_ancestor_or_self(ids[2], ids[0]));
    }

    #[test]
    fn path_name_joins_levels() {
        let (h, ids) = sample();
        assert_eq!(h.path_name(ids[2]), "root0 / mid00 / leaf000");
    }
}

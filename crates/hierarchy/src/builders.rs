//! Synthetic stand-ins for the proprietary category classifications.
//!
//! The paper uses the first three levels of the Foursquare venue hierarchy
//! (Taxi-Foursquare data), the NAICS industry classification (Safegraph
//! data), and nine campus building categories (UBC data). Those files are
//! not redistributable, so we construct hierarchies with the same depth,
//! realistic fan-out, and recognizable names; the mechanism only ever
//! observes tree *shape* through [`crate::CategoryDistance`], so matching
//! shape preserves behaviour (DESIGN.md §4).

use crate::tree::{CategoryHierarchy, CategoryId};

/// Builds a Foursquare-like three-level venue hierarchy.
///
/// Nine roots mirroring Foursquare's top level ("Arts & Entertainment",
/// "Food", ...), each with 3–5 mid-level groups and 2–4 leaves per group
/// (≈ 100 leaves overall).
pub fn foursquare() -> CategoryHierarchy {
    let spec: &[(&str, &[(&str, &[&str])])] = &[
        (
            "Arts & Entertainment",
            &[
                (
                    "Museum",
                    &["Art Museum", "History Museum", "Science Museum"],
                ),
                (
                    "Performing Arts",
                    &["Theater", "Concert Hall", "Opera House"],
                ),
                (
                    "Stadium",
                    &["Baseball Stadium", "Football Stadium", "Basketball Arena"],
                ),
                ("Movie Theater", &["Multiplex", "Indie Movie Theater"]),
            ],
        ),
        (
            "Food",
            &[
                (
                    "Restaurant",
                    &[
                        "Italian Restaurant",
                        "Chinese Restaurant",
                        "Mexican Restaurant",
                        "American Restaurant",
                    ],
                ),
                (
                    "Fast Food",
                    &["Burger Joint", "Pizza Place", "Sandwich Place"],
                ),
                ("Café", &["Coffee Shop", "Tea Room", "Bakery"]),
                ("Dessert", &["Ice Cream Shop", "Donut Shop"]),
            ],
        ),
        (
            "Nightlife Spot",
            &[
                (
                    "Bar",
                    &["Dive Bar", "Wine Bar", "Cocktail Bar", "Sports Bar"],
                ),
                ("Nightclub", &["Dance Club", "Jazz Club"]),
                ("Pub", &["Irish Pub", "Gastropub"]),
            ],
        ),
        (
            "Outdoors & Recreation",
            &[
                ("Park", &["City Park", "Playground", "Botanical Garden"]),
                ("Gym / Fitness", &["Gym", "Yoga Studio", "Climbing Gym"]),
                ("Water", &["Beach", "Marina"]),
            ],
        ),
        (
            "Professional & Other Places",
            &[
                (
                    "Office",
                    &["Corporate Office", "Coworking Space", "Tech Startup Office"],
                ),
                (
                    "Medical",
                    &["Hospital", "Dentist's Office", "Doctor's Office"],
                ),
                (
                    "School",
                    &["Elementary School", "High School", "University Building"],
                ),
            ],
        ),
        (
            "Shop & Service",
            &[
                ("Clothing", &["Shoe Shop", "Boutique", "Department Store"]),
                (
                    "Food & Drink Shop",
                    &["Grocery Store", "Liquor Store", "Farmers Market"],
                ),
                (
                    "Services",
                    &["Bank", "Salon / Barbershop", "Laundry Service"],
                ),
                ("Electronics", &["Electronics Store", "Mobile Phone Shop"]),
            ],
        ),
        (
            "Travel & Transport",
            &[
                (
                    "Station",
                    &["Train Station", "Metro Station", "Bus Station"],
                ),
                ("Airport", &["Airport Terminal", "Airport Lounge"]),
                ("Lodging", &["Hotel", "Hostel", "Bed & Breakfast"]),
            ],
        ),
        (
            "Residence",
            &[
                ("Home", &["Home (private)", "Apartment Building"]),
                ("Student Housing", &["Dormitory", "Student Apartment"]),
            ],
        ),
        (
            "Event",
            &[
                ("Public Event", &["Street Fair", "Parade", "Festival"]),
                ("Private Event", &["Conference", "Convention", "Trade Show"]),
            ],
        ),
    ];
    build_from_spec(spec)
}

/// Builds a NAICS-like three-level industry hierarchy (sector → subsector →
/// industry group), mirroring the 2-/3-/4-digit NAICS structure that
/// Safegraph uses.
pub fn naics() -> CategoryHierarchy {
    let spec: &[(&str, &[(&str, &[&str])])] = &[
        (
            "44-45 Retail Trade",
            &[
                (
                    "441 Motor Vehicle Dealers",
                    &["4411 Automobile Dealers", "4413 Auto Parts Stores"],
                ),
                (
                    "445 Food & Beverage Stores",
                    &[
                        "4451 Grocery Stores",
                        "4452 Specialty Food",
                        "4453 Liquor Stores",
                    ],
                ),
                (
                    "448 Clothing Stores",
                    &["4481 Clothing", "4482 Shoe Stores", "4483 Jewelry"],
                ),
                (
                    "452 General Merchandise",
                    &["4522 Department Stores", "4523 Supercenters"],
                ),
            ],
        ),
        (
            "72 Accommodation & Food Services",
            &[
                ("721 Accommodation", &["7211 Hotels", "7213 Rooming Houses"]),
                (
                    "722 Food Services",
                    &[
                        "7223 Special Food Services",
                        "7224 Drinking Places",
                        "7225 Restaurants",
                    ],
                ),
            ],
        ),
        (
            "71 Arts, Entertainment & Recreation",
            &[
                (
                    "711 Performing Arts & Sports",
                    &["7111 Performing Arts Companies", "7112 Spectator Sports"],
                ),
                ("712 Museums & Historical Sites", &["7121 Museums & Parks"]),
                (
                    "713 Amusement & Recreation",
                    &["7131 Amusement Parks", "7139 Other Recreation"],
                ),
            ],
        ),
        (
            "62 Health Care & Social Assistance",
            &[
                (
                    "621 Ambulatory Health Care",
                    &["6211 Offices of Physicians", "6212 Offices of Dentists"],
                ),
                ("622 Hospitals", &["6221 General Hospitals"]),
                ("624 Social Assistance", &["6244 Child Day Care"]),
            ],
        ),
        (
            "61 Educational Services",
            &[(
                "611 Educational Services",
                &[
                    "6111 Elementary & Secondary Schools",
                    "6113 Colleges & Universities",
                    "6116 Other Schools",
                ],
            )],
        ),
        (
            "81 Other Services",
            &[
                ("811 Repair & Maintenance", &["8111 Automotive Repair"]),
                (
                    "812 Personal & Laundry",
                    &["8121 Personal Care Services", "8123 Drycleaning & Laundry"],
                ),
                (
                    "813 Religious & Civic Orgs",
                    &["8131 Religious Organizations"],
                ),
            ],
        ),
        (
            "48-49 Transportation & Warehousing",
            &[
                ("481 Air Transportation", &["4811 Scheduled Air"]),
                (
                    "485 Transit & Ground Passenger",
                    &["4851 Urban Transit", "4853 Taxi Service"],
                ),
            ],
        ),
        (
            "52 Finance & Insurance",
            &[
                (
                    "522 Credit Intermediation",
                    &["5221 Depository Credit (Banks)"],
                ),
                ("524 Insurance Carriers", &["5241 Insurance Carriers"]),
            ],
        ),
    ];
    build_from_spec(spec)
}

/// Builds the campus hierarchy: nine building categories as in the UBC
/// dataset (§6.1.3), grouped under three roots so the category distance has
/// more than one level of structure.
pub fn campus() -> CategoryHierarchy {
    let spec: &[(&str, &[(&str, &[&str])])] = &[
        (
            "Academic",
            &[
                ("Teaching", &["Academic Building", "Lecture Hall"]),
                ("Research", &["Laboratory", "Library"]),
            ],
        ),
        (
            "Student Life",
            &[
                ("Housing", &["Student Residence"]),
                ("Amenities", &["Dining Hall", "Student Union"]),
            ],
        ),
        (
            "Facilities",
            &[
                ("Sport", &["Stadium / Gym"]),
                ("Admin", &["Administrative Building"]),
            ],
        ),
    ];
    build_from_spec(spec)
}

/// Builds a hierarchy from a static three-level spec.
fn build_from_spec(spec: &[(&str, &[(&str, &[&str])])]) -> CategoryHierarchy {
    let mut h = CategoryHierarchy::new();
    for (root_name, mids) in spec {
        let root = h.add_root(*root_name);
        for (mid_name, leaves) in *mids {
            let mid = h.add_child(root, *mid_name);
            for leaf in *leaves {
                h.add_child(mid, *leaf);
            }
        }
    }
    h
}

/// Convenience: returns the leaf ids of a hierarchy in stable order.
pub fn leaf_ids(h: &CategoryHierarchy) -> Vec<CategoryId> {
    h.leaves()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::CategoryDistance;

    #[test]
    fn foursquare_shape() {
        let h = foursquare();
        assert_eq!(h.max_level(), 3);
        assert_eq!(h.roots().len(), 9);
        assert!(h.leaves().len() >= 70, "got {}", h.leaves().len());
        // Every leaf is at level 3.
        for l in h.leaves() {
            assert_eq!(h.level(l), 3);
        }
    }

    #[test]
    fn naics_shape() {
        let h = naics();
        assert_eq!(h.max_level(), 3);
        assert_eq!(h.roots().len(), 8);
        assert!(h.leaves().len() >= 25);
    }

    #[test]
    fn campus_has_nine_leaf_categories() {
        let h = campus();
        assert_eq!(h.leaves().len(), 9);
        assert_eq!(h.max_level(), 3);
    }

    #[test]
    fn cross_root_distances_hit_cap_in_all_builders() {
        for h in [foursquare(), naics(), campus()] {
            let d = CategoryDistance::build(&h);
            let roots = h.roots();
            assert_eq!(d.get(roots[0], roots[1]), CategoryDistance::UNRELATED);
            assert_eq!(d.max_distance(), CategoryDistance::UNRELATED);
        }
    }

    #[test]
    fn unique_names_within_each_builder() {
        for h in [foursquare(), naics(), campus()] {
            let mut names: Vec<&str> = h.ids().map(|i| h.node(i).name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate category names");
        }
    }
}

//! Co-location analysis — the §3 contact-tracing primitive at the pair
//! level: which pairs of users were at the same place in the same time
//! window?
//!
//! The aggregate version (hotspots) drives policy; the pair-count version
//! here measures how well perturbation preserves *meeting structure*
//! without identifying individuals (counts only, never pair identities in
//! the output metrics).

use std::collections::{HashMap, HashSet};
use trajshare_model::{Dataset, Trajectory};

/// A co-location event: two distinct users at the same POI during the same
/// hour bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Colocation {
    /// Lower user index.
    pub user_a: u32,
    /// Higher user index.
    pub user_b: u32,
    pub poi: u32,
    pub hour: u32,
}

/// Finds all pairwise co-locations in a trajectory set.
pub fn colocations(dataset: &Dataset, trajectories: &[Trajectory]) -> Vec<Colocation> {
    // (poi, hour) -> users present.
    let mut present: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (uid, t) in trajectories.iter().enumerate() {
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for pt in t.points() {
            let hour = dataset.time.minute_of(pt.t) / 60;
            if seen.insert((pt.poi.0, hour)) {
                present
                    .entry((pt.poi.0, hour))
                    .or_default()
                    .push(uid as u32);
            }
        }
    }
    let mut out = Vec::new();
    for ((poi, hour), users) in present {
        for i in 0..users.len() {
            for j in i + 1..users.len() {
                out.push(Colocation {
                    user_a: users[i].min(users[j]),
                    user_b: users[i].max(users[j]),
                    poi,
                    hour,
                });
            }
        }
    }
    out.sort_unstable();
    out
}

/// Number of co-location events (a scalar utility signal).
pub fn colocation_count(dataset: &Dataset, trajectories: &[Trajectory]) -> usize {
    colocations(dataset, trajectories).len()
}

/// Jaccard similarity of the (poi, hour) *meeting places* of two sets —
/// how well the perturbed data preserves where/when meetings happen,
/// ignoring who met whom (which LDP intentionally scrambles).
pub fn meeting_place_jaccard(
    dataset: &Dataset,
    real: &[Trajectory],
    perturbed: &[Trajectory],
) -> f64 {
    let places = |ts: &[Trajectory]| -> HashSet<(u32, u32)> {
        colocations(dataset, ts)
            .into_iter()
            .map(|c| (c.poi, c.hour))
            .collect()
    };
    let a = places(real);
    let b = places(perturbed);
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(&b).count() as f64;
    let union = a.union(&b).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain};

    fn dataset() -> Dataset {
        let h = campus();
        let leaf = h.leaves()[0];
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..5)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m(i as f64 * 300.0, 0.0),
                    leaf,
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            None,
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn detects_same_poi_same_hour() {
        let ds = dataset();
        // Users 0 and 1 both at POI 2 during hour 10 (timesteps 60..65).
        let ts = vec![
            Trajectory::from_pairs(&[(2, 61), (3, 80)]),
            Trajectory::from_pairs(&[(2, 64), (4, 90)]),
        ];
        let c = colocations(&ds, &ts);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c[0],
            Colocation {
                user_a: 0,
                user_b: 1,
                poi: 2,
                hour: 10
            }
        );
    }

    #[test]
    fn different_hours_do_not_colocate() {
        let ds = dataset();
        let ts = vec![
            Trajectory::from_pairs(&[(2, 60), (3, 80)]),
            Trajectory::from_pairs(&[(2, 66), (4, 90)]), // hour 11
        ];
        assert!(colocations(&ds, &ts).is_empty());
    }

    #[test]
    fn repeat_visits_within_hour_count_once_per_pair() {
        let ds = dataset();
        let ts = vec![
            Trajectory::from_pairs(&[(2, 60), (2, 62), (2, 64)]),
            Trajectory::from_pairs(&[(2, 61), (2, 63)]),
        ];
        assert_eq!(colocation_count(&ds, &ts), 1);
    }

    #[test]
    fn three_users_make_three_pairs() {
        let ds = dataset();
        let ts = vec![
            Trajectory::from_pairs(&[(2, 60), (3, 80)]),
            Trajectory::from_pairs(&[(2, 61), (4, 90)]),
            Trajectory::from_pairs(&[(2, 62), (0, 95)]),
        ];
        assert_eq!(colocation_count(&ds, &ts), 3);
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let ds = dataset();
        let ts = vec![
            Trajectory::from_pairs(&[(2, 60), (3, 80)]),
            Trajectory::from_pairs(&[(2, 61), (3, 82)]),
        ];
        assert_eq!(meeting_place_jaccard(&ds, &ts, &ts), 1.0);
        let other = vec![
            Trajectory::from_pairs(&[(4, 100), (0, 120)]),
            Trajectory::from_pairs(&[(4, 101), (1, 125)]),
        ];
        let j = meeting_place_jaccard(&ds, &ts, &other);
        assert_eq!(j, 0.0);
    }

    #[test]
    fn empty_sets_are_perfectly_similar() {
        let ds = dataset();
        assert_eq!(meeting_place_jaccard(&ds, &[], &[]), 1.0);
    }
}

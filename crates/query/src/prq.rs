//! Preservation range queries (§6.3.1, Eq. 17).
//!
//! For each point of each trajectory, check whether the perturbed point is
//! within δ of the true point in one dimension; report the percentage.

use trajshare_model::{Dataset, Trajectory};

/// The dimension a PRQ operates in, with its threshold δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrqDimension {
    /// δ in meters.
    Space(f64),
    /// δ in minutes.
    Time(f64),
    /// δ on the Figure-5 category scale.
    Category(f64),
}

/// `PR_χ` (Eq. 17): percentage of points preserved within δ.
pub fn preservation_range(
    dataset: &Dataset,
    real: &[Trajectory],
    perturbed: &[Trajectory],
    dim: PrqDimension,
) -> f64 {
    assert_eq!(real.len(), perturbed.len(), "trajectory sets must pair up");
    assert!(!real.is_empty());
    let mut total = 0.0;
    for (r, p) in real.iter().zip(perturbed) {
        assert_eq!(r.len(), p.len());
        let hits = r
            .points()
            .iter()
            .zip(p.points())
            .filter(|(a, b)| match dim {
                PrqDimension::Space(d) => dataset.poi_distance_m(a.poi, b.poi) <= d,
                PrqDimension::Time(d) => dataset.time.gap_minutes(a.t, b.t) as f64 <= d,
                PrqDimension::Category(d) => {
                    dataset.category_distance.get(
                        dataset.pois.get(a.poi).category,
                        dataset.pois.get(b.poi).category,
                    ) <= d
                }
            })
            .count();
        total += hits as f64 / r.len() as f64;
    }
    total / real.len() as f64 * 100.0
}

/// Sweeps δ values and returns `(δ, PR)` pairs — one Figure-10 curve.
pub fn prq_curve(
    dataset: &Dataset,
    real: &[Trajectory],
    perturbed: &[Trajectory],
    deltas: &[f64],
    make_dim: impl Fn(f64) -> PrqDimension,
) -> Vec<(f64, f64)> {
    deltas
        .iter()
        .map(|&d| (d, preservation_range(dataset, real, perturbed, make_dim(d))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain};

    fn dataset() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..10)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m(i as f64 * 500.0, 0.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            None,
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn exact_copy_scores_100_everywhere() {
        let ds = dataset();
        let t = vec![Trajectory::from_pairs(&[(0, 10), (1, 20)])];
        for dim in [
            PrqDimension::Space(0.1),
            PrqDimension::Time(0.0),
            PrqDimension::Category(0.0),
        ] {
            assert_eq!(preservation_range(&ds, &t, &t, dim), 100.0);
        }
    }

    #[test]
    fn space_threshold_separates_hits_and_misses() {
        let ds = dataset();
        let real = vec![Trajectory::from_pairs(&[(0, 10), (0, 20)])];
        // One point moved 500 m, one exact.
        let pert = vec![Trajectory::from_pairs(&[(1, 10), (0, 20)])];
        assert_eq!(
            preservation_range(&ds, &real, &pert, PrqDimension::Space(100.0)),
            50.0
        );
        assert_eq!(
            preservation_range(&ds, &real, &pert, PrqDimension::Space(600.0)),
            100.0
        );
    }

    #[test]
    fn time_threshold_in_minutes() {
        let ds = dataset();
        let real = vec![Trajectory::from_pairs(&[(0, 10), (0, 20)])];
        let pert = vec![Trajectory::from_pairs(&[(0, 13), (0, 20)])]; // +30 min on point 0
        assert_eq!(
            preservation_range(&ds, &real, &pert, PrqDimension::Time(20.0)),
            50.0
        );
        assert_eq!(
            preservation_range(&ds, &real, &pert, PrqDimension::Time(30.0)),
            100.0
        );
    }

    #[test]
    fn category_threshold_uses_figure5_scale() {
        let ds = dataset();
        // POIs 0 and 9 share leaf-category cycle (9 leaves): 0 and 9 have
        // the same category; 0 and 1 differ.
        let real = vec![Trajectory::from_pairs(&[(0, 10), (0, 20)])];
        let pert = vec![Trajectory::from_pairs(&[(9, 10), (1, 20)])];
        let pr0 = preservation_range(&ds, &real, &pert, PrqDimension::Category(0.0));
        assert_eq!(pr0, 50.0, "same-category hit + different-category miss");
        let pr10 = preservation_range(&ds, &real, &pert, PrqDimension::Category(10.0));
        assert_eq!(pr10, 100.0);
    }

    #[test]
    fn curve_is_monotone_in_delta() {
        let ds = dataset();
        let real = vec![Trajectory::from_pairs(&[(0, 10), (3, 20), (5, 30)])];
        let pert = vec![Trajectory::from_pairs(&[(1, 12), (3, 26), (8, 30)])];
        let curve = prq_curve(
            &ds,
            &real,
            &pert,
            &[0.0, 250.0, 600.0, 1500.0, 5000.0],
            PrqDimension::Space,
        );
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "PRQ must be monotone in δ: {curve:?}");
        }
        assert_eq!(curve.last().unwrap().1, 100.0);
    }
}

//! Origin–destination (trip-chain) analytics — the §3 transit-planning
//! application: "if a city council can identify popular trip chains among
//! residents, they can improve the public transport infrastructure that
//! links these popular places".

use std::collections::HashMap;
use trajshare_geo::UniformGrid;
use trajshare_model::{Dataset, Trajectory};

/// Counts of directed cell→cell transitions over a trajectory set.
#[derive(Debug, Clone, Default)]
pub struct OdMatrix {
    counts: HashMap<(u32, u32), usize>,
    total: usize,
}

impl OdMatrix {
    /// Builds the OD matrix at grid granularity `gs`, skipping
    /// within-cell hops.
    pub fn build(dataset: &Dataset, trajectories: &[Trajectory], gs: u32) -> Self {
        let grid = UniformGrid::new(*dataset.pois.bbox(), gs);
        let mut counts = HashMap::new();
        let mut total = 0;
        for t in trajectories {
            for w in t.points().windows(2) {
                let a = grid.cell_of(dataset.pois.get(w[0].poi).location).0;
                let b = grid.cell_of(dataset.pois.get(w[1].poi).location).0;
                if a != b {
                    *counts.entry((a, b)).or_insert(0) += 1;
                    total += 1;
                }
            }
        }
        Self { counts, total }
    }

    /// Number of recorded transitions.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count for one directed pair.
    pub fn get(&self, from: u32, to: u32) -> usize {
        self.counts.get(&(from, to)).copied().unwrap_or(0)
    }

    /// The `k` most frequent chains, ties broken by cell ids for
    /// determinism.
    pub fn top_k(&self, k: usize) -> Vec<((u32, u32), usize)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Fraction of this matrix's top-k chains that also appear in the
    /// other matrix's top-k — the planning-decision overlap metric used by
    /// the transit example.
    pub fn top_k_overlap(&self, other: &OdMatrix, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let mine: Vec<(u32, u32)> = self.top_k(k).into_iter().map(|(p, _)| p).collect();
        let theirs: Vec<(u32, u32)> = other.top_k(k).into_iter().map(|(p, _)| p).collect();
        mine.iter().filter(|p| theirs.contains(p)).count() as f64 / k as f64
    }

    /// L1 distance between the two matrices' transition *distributions*
    /// (total-variation ×2); 0 = identical flow structure.
    pub fn l1_distance(&self, other: &OdMatrix) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 2.0;
        }
        let mut keys: Vec<(u32, u32)> = self.counts.keys().copied().collect();
        keys.extend(other.counts.keys().copied());
        keys.sort_unstable();
        keys.dedup();
        keys.iter()
            .map(|&k| {
                let p = self.counts.get(&k).copied().unwrap_or(0) as f64 / self.total as f64;
                let q = other.counts.get(&k).copied().unwrap_or(0) as f64 / other.total as f64;
                (p - q).abs()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain};

    /// POIs at the four corners of a 2×2 grid.
    fn dataset() -> Dataset {
        let h = campus();
        let leaf = h.leaves()[0];
        let origin = GeoPoint::new(40.7, -74.0);
        let pois = vec![
            Poi::new(PoiId(0), "sw", origin, leaf),
            Poi::new(PoiId(1), "se", origin.offset_m(4000.0, 0.0), leaf),
            Poi::new(PoiId(2), "nw", origin.offset_m(0.0, 4000.0), leaf),
            Poi::new(PoiId(3), "ne", origin.offset_m(4000.0, 4000.0), leaf),
        ];
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            None,
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn counts_directed_transitions() {
        let ds = dataset();
        let ts = vec![
            Trajectory::from_pairs(&[(0, 10), (1, 20)]),
            Trajectory::from_pairs(&[(0, 10), (1, 20), (0, 30)]),
        ];
        let od = OdMatrix::build(&ds, &ts, 2);
        assert_eq!(od.total(), 3);
        // POI 0 in cell 0, POI 1 in cell 1 of the 2×2 grid.
        assert_eq!(od.get(0, 1), 2);
        assert_eq!(od.get(1, 0), 1);
        assert_eq!(od.get(0, 3), 0);
    }

    #[test]
    fn within_cell_hops_ignored() {
        let ds = dataset();
        let ts = vec![Trajectory::from_pairs(&[(0, 10), (0, 20)])];
        let od = OdMatrix::build(&ds, &ts, 2);
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn top_k_ranks_by_count() {
        let ds = dataset();
        let ts = vec![
            Trajectory::from_pairs(&[(0, 10), (1, 20)]),
            Trajectory::from_pairs(&[(0, 11), (1, 21)]),
            Trajectory::from_pairs(&[(2, 10), (3, 20)]),
        ];
        let od = OdMatrix::build(&ds, &ts, 2);
        let top = od.top_k(1);
        assert_eq!(top, vec![((0, 1), 2)]);
    }

    #[test]
    fn overlap_of_identical_matrices_is_one() {
        let ds = dataset();
        let ts = vec![
            Trajectory::from_pairs(&[(0, 10), (1, 20)]),
            Trajectory::from_pairs(&[(2, 10), (3, 20)]),
        ];
        let od = OdMatrix::build(&ds, &ts, 2);
        assert_eq!(od.top_k_overlap(&od, 2), 1.0);
        assert_eq!(od.l1_distance(&od), 0.0);
    }

    #[test]
    fn disjoint_matrices_have_max_l1() {
        let ds = dataset();
        let a = OdMatrix::build(&ds, &[Trajectory::from_pairs(&[(0, 10), (1, 20)])], 2);
        let b = OdMatrix::build(&ds, &[Trajectory::from_pairs(&[(2, 10), (3, 20)])], 2);
        assert_eq!(a.l1_distance(&b), 2.0);
        assert_eq!(a.top_k_overlap(&b, 1), 0.0);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let ds = dataset();
        let empty = OdMatrix::build(&ds, &[], 2);
        assert_eq!(empty.total(), 0);
        assert!(empty.top_k(3).is_empty());
        assert_eq!(empty.top_k_overlap(&empty, 0), 1.0);
    }
}

//! Spatio-temporal hotspots (§6.3.2).
//!
//! A hotspot `h = {t_s, t_e, key, c}` is a maximal run of hour-buckets in
//! which the number of *unique visitors* of a key (POI, grid cell, or
//! category subtree) stays at or above a threshold η; `c` is the peak count
//! in the run. The measures:
//!
//! * **AHD** (Eq. 18): for each perturbed hotspot, the minimum
//!   `|t_s − t̂_s| + |t_e − t̂_e|` over all real hotspots of the same
//!   granularity, averaged (hours),
//! * **ACD**: the matched pairs' absolute count difference, averaged.

use std::collections::HashSet;
use trajshare_geo::UniformGrid;
use trajshare_model::{Dataset, TrajectorySet};

/// Spatial/category granularity of hotspot extraction (§6.3.2 uses POI
/// level, 4×4 and 2×2 grids, and the three category levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotspotScope {
    /// Individual POIs.
    Poi,
    /// Cells of a `g × g` grid over the city.
    Grid(u32),
    /// Category hierarchy nodes at the given level (1 = roots).
    Category(u8),
}

/// One extracted hotspot.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Key identity within the scope (POI index / cell index / category
    /// node index).
    pub key: u32,
    /// Start hour (inclusive, 0..24).
    pub start_hour: u32,
    /// End hour (exclusive).
    pub end_hour: u32,
    /// Peak unique-visitor count within the run.
    pub peak: usize,
}

/// Extracts all hotspots of `scope` with threshold `eta`.
pub fn extract_hotspots(
    dataset: &Dataset,
    set: &TrajectorySet,
    scope: HotspotScope,
    eta: usize,
) -> Vec<Hotspot> {
    assert!(eta > 0, "a zero threshold makes everything a hotspot");
    let grid = match scope {
        HotspotScope::Grid(g) => Some(UniformGrid::new(*dataset.pois.bbox(), g)),
        _ => None,
    };
    // Unique (user, key, hour) visits.
    let mut seen: HashSet<(u32, u32, u32)> = HashSet::new();
    let mut counts: std::collections::HashMap<(u32, u32), usize> = std::collections::HashMap::new();
    for (uid, traj) in set.all().iter().enumerate() {
        for pt in traj.points() {
            let hour = dataset.time.minute_of(pt.t) / 60;
            let key = match scope {
                HotspotScope::Poi => pt.poi.0,
                HotspotScope::Grid(_) => {
                    grid.as_ref()
                        .unwrap()
                        .cell_of(dataset.pois.get(pt.poi).location)
                        .0
                }
                HotspotScope::Category(level) => {
                    let cat = dataset.pois.get(pt.poi).category;
                    match dataset.hierarchy.ancestor_at(cat, level) {
                        Some(a) => a.0,
                        None => cat.0, // node already above the level
                    }
                }
            };
            if seen.insert((uid as u32, key, hour)) {
                *counts.entry((key, hour)).or_insert(0) += 1;
            }
        }
    }

    // Collapse per-key hourly series into maximal ≥η runs.
    let mut keys: Vec<u32> = counts.keys().map(|&(k, _)| k).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut out = Vec::new();
    for key in keys {
        let series: Vec<usize> = (0..24)
            .map(|h| counts.get(&(key, h)).copied().unwrap_or(0))
            .collect();
        let mut h = 0usize;
        while h < 24 {
            if series[h] >= eta {
                let start = h;
                let mut peak = 0usize;
                while h < 24 && series[h] >= eta {
                    peak = peak.max(series[h]);
                    h += 1;
                }
                out.push(Hotspot {
                    key,
                    start_hour: start as u32,
                    end_hour: h as u32,
                    peak,
                });
            } else {
                h += 1;
            }
        }
    }
    out
}

/// Average hotspot distance (Eq. 18), in hours. For each perturbed hotspot
/// the nearest real hotspot (same granularity) is used; returns `None` when
/// either set is empty (no meaningful comparison, per the paper's
/// exclusion rule).
pub fn ahd(real: &[Hotspot], perturbed: &[Hotspot]) -> Option<f64> {
    if real.is_empty() || perturbed.is_empty() {
        return None;
    }
    let total: f64 = perturbed
        .iter()
        .map(|p| {
            real.iter()
                .map(|r| {
                    (r.start_hour as f64 - p.start_hour as f64).abs()
                        + (r.end_hour as f64 - p.end_hour as f64).abs()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    Some(total / perturbed.len() as f64)
}

/// Average count difference: |c − ĉ| over each perturbed hotspot and its
/// nearest (by AHD distance) real hotspot.
pub fn acd(real: &[Hotspot], perturbed: &[Hotspot]) -> Option<f64> {
    if real.is_empty() || perturbed.is_empty() {
        return None;
    }
    let total: f64 = perturbed
        .iter()
        .map(|p| {
            let nearest = real
                .iter()
                .min_by(|a, b| {
                    let da = (a.start_hour as f64 - p.start_hour as f64).abs()
                        + (a.end_hour as f64 - p.end_hour as f64).abs();
                    let db = (b.start_hour as f64 - p.start_hour as f64).abs()
                        + (b.end_hour as f64 - p.end_hour as f64).abs();
                    // total_cmp: a NaN distance (degenerate input) must
                    // not panic the query path.
                    da.total_cmp(&db)
                })
                .expect("real non-empty");
            (nearest.peak as f64 - p.peak as f64).abs()
        })
        .sum();
    Some(total / perturbed.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain, Trajectory, TrajectorySet};

    fn dataset() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..10)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m(i as f64 * 500.0, 0.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            None,
            DistanceMetric::Haversine,
        )
    }

    /// `n` distinct users visiting POI 3 during hour 14.
    fn crowd(n: usize) -> TrajectorySet {
        TrajectorySet::new(
            (0..n)
                .map(|i| {
                    // Two points so trajectories are realistic; the second
                    // point is at a quiet POI, staggered to avoid a second
                    // hotspot.
                    let quiet = (i % 5) as u32 + 4;
                    Trajectory::from_pairs(&[(3, 86), (quiet, (90 + i % 20) as u16)])
                })
                .collect(),
        )
    }

    #[test]
    fn dense_visits_form_one_hotspot() {
        let ds = dataset();
        let set = crowd(30);
        let hs = extract_hotspots(&ds, &set, HotspotScope::Poi, 20);
        assert_eq!(hs.len(), 1, "{hs:?}");
        let h = &hs[0];
        assert_eq!(h.key, 3);
        assert_eq!(h.start_hour, 14);
        assert_eq!(h.end_hour, 15);
        assert_eq!(h.peak, 30);
    }

    #[test]
    fn threshold_filters_small_crowds() {
        let ds = dataset();
        let set = crowd(10);
        assert!(extract_hotspots(&ds, &set, HotspotScope::Poi, 20).is_empty());
        assert_eq!(extract_hotspots(&ds, &set, HotspotScope::Poi, 10).len(), 1);
    }

    #[test]
    fn repeat_visits_by_one_user_count_once() {
        let ds = dataset();
        // One user visiting POI 3 at three timesteps within hour 14.
        let set = TrajectorySet::new(vec![Trajectory::from_pairs(&[(3, 84), (3, 86), (3, 88)])]);
        let hs = extract_hotspots(&ds, &set, HotspotScope::Poi, 1);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].peak, 1, "unique visitors, not visits");
    }

    #[test]
    fn consecutive_hours_merge_into_one_run() {
        let ds = dataset();
        // 25 users at hour 14 and 25 (same users) at hour 15.
        let set = TrajectorySet::new(
            (0..25)
                .map(|_| Trajectory::from_pairs(&[(3, 86), (3, 92)]))
                .collect(),
        );
        let hs = extract_hotspots(&ds, &set, HotspotScope::Poi, 20);
        assert_eq!(hs.len(), 1);
        assert_eq!((hs[0].start_hour, hs[0].end_hour), (14, 16));
    }

    #[test]
    fn grid_scope_aggregates_nearby_pois() {
        let ds = dataset();
        // 15 users at POI 0 plus 15 at POI 1 in the same hour: individually
        // below η=20, together above when the cell covers both.
        let mut trajs = Vec::new();
        for i in 0..15 {
            trajs.push(Trajectory::from_pairs(&[
                (0, 86),
                ((i % 3 + 5) as u32, 100 + i),
            ]));
            trajs.push(Trajectory::from_pairs(&[
                (1, 86),
                ((i % 3 + 5) as u32, 100 + i),
            ]));
        }
        let set = TrajectorySet::new(trajs);
        assert!(extract_hotspots(&ds, &set, HotspotScope::Poi, 20).is_empty());
        let hs = extract_hotspots(&ds, &set, HotspotScope::Grid(2), 20);
        assert!(!hs.is_empty(), "grid cell should aggregate the two POIs");
    }

    #[test]
    fn category_scope_lifts_to_ancestors() {
        let ds = dataset();
        // POIs 0 and 9 share a leaf category (9 leaves cycle).
        let set = TrajectorySet::new(
            (0..12)
                .flat_map(|i: u16| {
                    [
                        Trajectory::from_pairs(&[(0, 86), ((i % 3 + 4) as u32, 100 + i)]),
                        Trajectory::from_pairs(&[(9, 86), ((i % 3 + 4) as u32, 100 + i)]),
                    ]
                })
                .collect(),
        );
        let hs = extract_hotspots(&ds, &set, HotspotScope::Category(3), 20);
        assert!(!hs.is_empty(), "leaf-level category hotspot expected");
        let hs1 = extract_hotspots(&ds, &set, HotspotScope::Category(1), 20);
        assert!(!hs1.is_empty(), "root-level category hotspot expected");
    }

    #[test]
    fn ahd_zero_for_identical_sets() {
        let ds = dataset();
        let set = crowd(30);
        let hs = extract_hotspots(&ds, &set, HotspotScope::Poi, 20);
        assert_eq!(ahd(&hs, &hs), Some(0.0));
        assert_eq!(acd(&hs, &hs), Some(0.0));
    }

    #[test]
    fn ahd_measures_time_shift() {
        let a = vec![Hotspot {
            key: 1,
            start_hour: 14,
            end_hour: 16,
            peak: 30,
        }];
        let b = vec![Hotspot {
            key: 1,
            start_hour: 15,
            end_hour: 18,
            peak: 25,
        }];
        assert_eq!(ahd(&a, &b), Some(3.0)); // |14-15| + |16-18|
        assert_eq!(acd(&a, &b), Some(5.0));
    }

    #[test]
    fn ahd_takes_minimum_over_real_hotspots() {
        let real = vec![
            Hotspot {
                key: 1,
                start_hour: 2,
                end_hour: 4,
                peak: 40,
            },
            Hotspot {
                key: 2,
                start_hour: 14,
                end_hour: 16,
                peak: 30,
            },
        ];
        let pert = vec![Hotspot {
            key: 9,
            start_hour: 15,
            end_hour: 16,
            peak: 20,
        }];
        assert_eq!(
            ahd(&real, &pert),
            Some(1.0),
            "matches the nearer real hotspot"
        );
    }

    #[test]
    fn empty_sets_yield_none() {
        let h = vec![Hotspot {
            key: 0,
            start_hour: 0,
            end_hour: 1,
            peak: 1,
        }];
        assert_eq!(ahd(&[], &h), None);
        assert_eq!(ahd(&h, &[]), None);
        assert_eq!(acd(&[], &h), None);
    }
}

//! Utility measures of §6.3: how well does a perturbed trajectory set
//! preserve the real one?
//!
//! * [`ne`] — normalized error (per-dimension distance between real and
//!   perturbed trajectories, normalized by |τ|),
//! * [`prq`] — preservation range queries (Eq. 17),
//! * [`hotspot`] — spatio-temporal hotspot extraction with the AHD (Eq. 18)
//!   and ACD measures.

pub mod colocation;
pub mod hotspot;
pub mod ne;
pub mod od_matrix;
pub mod prq;

pub use colocation::{colocation_count, colocations, meeting_place_jaccard, Colocation};
pub use hotspot::{acd, ahd, extract_hotspots, Hotspot, HotspotScope};
pub use ne::{normalized_error, NormalizedError};
pub use od_matrix::OdMatrix;
pub use prq::{preservation_range, prq_curve, PrqDimension};

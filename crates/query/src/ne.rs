//! Normalized error (§6.3): the per-dimension distance between real and
//! perturbed trajectory sets, "normalized by |τ|", using the §5.10 distance
//! definitions (d_s in km, d_t in hours capped at 12, d_c on the Figure-5
//! scale).

use trajshare_core::distances::TIME_CAP_H;
use trajshare_model::{Dataset, Trajectory};

/// Mean per-point error in each dimension (Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NormalizedError {
    /// Time dimension, hours.
    pub dt: f64,
    /// Category dimension, Figure-5 units.
    pub dc: f64,
    /// Space dimension, kilometers.
    pub ds: f64,
}

/// Computes the mean NE over paired (real, perturbed) trajectories.
///
/// Panics if the slices have different lengths or any pair has mismatched
/// point counts — both indicate harness bugs, not data conditions.
pub fn normalized_error(
    dataset: &Dataset,
    real: &[Trajectory],
    perturbed: &[Trajectory],
) -> NormalizedError {
    assert_eq!(real.len(), perturbed.len(), "trajectory sets must pair up");
    assert!(!real.is_empty(), "cannot average over an empty set");
    let mut acc = NormalizedError::default();
    for (r, p) in real.iter().zip(perturbed) {
        assert_eq!(r.len(), p.len(), "perturbation must preserve |τ|");
        let mut t = NormalizedError::default();
        for (a, b) in r.points().iter().zip(p.points()) {
            t.dt += (dataset.time.gap_minutes(a.t, b.t) as f64 / 60.0).min(TIME_CAP_H);
            t.dc += dataset.category_distance.get(
                dataset.pois.get(a.poi).category,
                dataset.pois.get(b.poi).category,
            );
            t.ds += dataset.poi_distance_m(a.poi, b.poi) / 1000.0;
        }
        let n = r.len() as f64;
        acc.dt += t.dt / n;
        acc.dc += t.dc / n;
        acc.ds += t.ds / n;
    }
    let m = real.len() as f64;
    NormalizedError {
        dt: acc.dt / m,
        dc: acc.dc / m,
        ds: acc.ds / m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajshare_geo::{DistanceMetric, GeoPoint};
    use trajshare_hierarchy::builders::campus;
    use trajshare_model::{Poi, PoiId, TimeDomain};

    fn dataset() -> Dataset {
        let h = campus();
        let leaves = h.leaves();
        let origin = GeoPoint::new(40.7, -74.0);
        let pois: Vec<Poi> = (0..10)
            .map(|i| {
                Poi::new(
                    PoiId(i),
                    format!("p{i}"),
                    origin.offset_m(i as f64 * 1000.0, 0.0),
                    leaves[i as usize % leaves.len()],
                )
            })
            .collect();
        Dataset::new(
            pois,
            h,
            TimeDomain::new(10),
            None,
            DistanceMetric::Haversine,
        )
    }

    #[test]
    fn identical_sets_have_zero_error() {
        let ds = dataset();
        let t = vec![Trajectory::from_pairs(&[(0, 10), (1, 20)])];
        let ne = normalized_error(&ds, &t, &t);
        assert_eq!(ne, NormalizedError::default());
    }

    #[test]
    fn pure_time_shift_only_moves_dt() {
        let ds = dataset();
        let real = vec![Trajectory::from_pairs(&[(0, 10), (1, 20)])];
        // Shift both points by 6 timesteps = 1 hour.
        let pert = vec![Trajectory::from_pairs(&[(0, 16), (1, 26)])];
        let ne = normalized_error(&ds, &real, &pert);
        assert!((ne.dt - 1.0).abs() < 1e-9);
        assert_eq!(ne.dc, 0.0);
        assert_eq!(ne.ds, 0.0);
    }

    #[test]
    fn pure_space_shift_moves_ds_by_km() {
        let ds = dataset();
        let real = vec![Trajectory::from_pairs(&[(0, 10), (0, 20)])];
        let pert = vec![Trajectory::from_pairs(&[(1, 10), (1, 20)])]; // 1 km away, same category path? p0,p1 categories differ
        let ne = normalized_error(&ds, &real, &pert);
        assert!((ne.ds - 1.0).abs() < 0.01, "ds = {}", ne.ds);
        assert_eq!(ne.dt, 0.0);
    }

    #[test]
    fn time_error_capped_at_12_hours() {
        let ds = dataset();
        let real = vec![Trajectory::from_pairs(&[(0, 0), (0, 1)])];
        let pert = vec![Trajectory::from_pairs(&[(0, 142), (0, 143)])];
        let ne = normalized_error(&ds, &real, &pert);
        assert!((ne.dt - 12.0).abs() < 1e-9);
    }

    #[test]
    fn averaging_over_set_and_length() {
        let ds = dataset();
        let real = vec![
            Trajectory::from_pairs(&[(0, 10), (0, 20)]),
            Trajectory::from_pairs(&[(0, 10), (0, 20)]),
        ];
        // One exact, one shifted by 2 hours on both points.
        let pert = vec![
            Trajectory::from_pairs(&[(0, 10), (0, 20)]),
            Trajectory::from_pairs(&[(0, 22), (0, 32)]),
        ];
        let ne = normalized_error(&ds, &real, &pert);
        assert!((ne.dt - 1.0).abs() < 1e-9, "mean of 0 and 2 hours");
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_set_sizes_panic() {
        let ds = dataset();
        let real = vec![Trajectory::from_pairs(&[(0, 10), (1, 20)])];
        let _ = normalized_error(&ds, &real, &[]);
    }
}

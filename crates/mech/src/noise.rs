//! Laplace noise for numeric post-analyses.
//!
//! The trajectory mechanism itself is EM-based, but downstream consumers of
//! the perturbed sets (hotspot counting, histograms) sometimes want a
//! calibrated additive-noise primitive; we provide the classic Laplace
//! mechanism via inverse-CDF sampling.

use rand::Rng;

/// Samples Laplace(0, `sensitivity`/`epsilon`) noise.
///
/// Inverse-CDF method: for `u ~ U(-1/2, 1/2)`,
/// `X = -b · sgn(u) · ln(1 - 2|u|)` is Laplace(0, b).
pub fn laplace_noise<R: Rng + ?Sized>(sensitivity: f64, epsilon: f64, rng: &mut R) -> f64 {
    assert!(
        sensitivity > 0.0 && epsilon > 0.0,
        "sensitivity and epsilon must be positive"
    );
    let b = sensitivity / epsilon;
    let u: f64 = rng.random::<f64>() - 0.5;
    let mag = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
    -b * u.signum() * mag.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| laplace_noise(1.0, 1.0, &mut rng)).sum();
        assert!((sum / n as f64).abs() < 0.02);
    }

    #[test]
    fn variance_matches_2b_squared() {
        let mut rng = StdRng::seed_from_u64(2);
        let b: f64 = 2.0; // sensitivity 2, epsilon 1
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(2.0, 1.0, &mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let expect = 2.0 * b * b;
        assert!(
            (var - expect).abs() / expect < 0.05,
            "var {var}, expect {expect}"
        );
    }

    #[test]
    fn scale_shrinks_with_epsilon() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let spread = |eps: f64, rng: &mut StdRng| -> f64 {
            (0..n)
                .map(|_| laplace_noise(1.0, eps, rng).abs())
                .sum::<f64>()
                / n as f64
        };
        let wide = spread(0.5, &mut rng);
        let tight = spread(5.0, &mut rng);
        assert!(wide > tight * 5.0, "wide {wide}, tight {tight}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = laplace_noise(0.0, 1.0, &mut rng);
    }
}

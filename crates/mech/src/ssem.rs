//! Subsampled Exponential Mechanism (Lantz, Boyd & Page, AISec 2015).
//!
//! §5.1 notes that applying the EM to a uniform sample of the output space
//! makes the global solution tractable but loses utility when the quality
//! distribution is highly skewed — the sample rarely contains the few good
//! outputs. We implement it to reproduce that comparison.

use crate::em::ExponentialMechanism;
use rand::Rng;

/// Runs the EM over a uniform subsample of the candidate set.
///
/// `sample_size` candidates are drawn *with replacement* (matching the
/// analysis in the original paper, and cheap for huge candidate sets);
/// returns the index **into the original slice** of the winner, or `None`
/// when inputs are empty / `sample_size == 0`.
pub fn subsampled_em<R: Rng + ?Sized>(
    qualities: &[f64],
    epsilon: f64,
    sensitivity: f64,
    sample_size: usize,
    rng: &mut R,
) -> Option<usize> {
    if qualities.is_empty() || sample_size == 0 {
        return None;
    }
    let em = ExponentialMechanism::new(epsilon, sensitivity);
    let indices: Vec<usize> = (0..sample_size)
        .map(|_| rng.random_range(0..qualities.len()))
        .collect();
    let sampled: Vec<f64> = indices.iter().map(|&i| qualities[i]).collect();
    em.sample(&sampled, rng).map(|k| indices[k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_or_zero_sample_yields_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(subsampled_em(&[], 1.0, 1.0, 10, &mut rng), None);
        assert_eq!(subsampled_em(&[0.0], 1.0, 1.0, 0, &mut rng), None);
    }

    #[test]
    fn returns_valid_indices() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = [-1.0, -2.0, -3.0];
        for _ in 0..100 {
            let i = subsampled_em(&q, 1.0, 1.0, 2, &mut rng).unwrap();
            assert!(i < q.len());
        }
    }

    #[test]
    fn full_sample_behaves_like_em() {
        // With a large sample and strong ε the best candidate dominates.
        let mut rng = StdRng::seed_from_u64(3);
        let q = [-10.0, 0.0, -10.0, -10.0];
        let mut hits = 0;
        for _ in 0..500 {
            if subsampled_em(&q, 50.0, 1.0, 64, &mut rng) == Some(1) {
                hits += 1;
            }
        }
        assert!(hits > 490, "got {hits}");
    }

    #[test]
    fn skewed_quality_with_tiny_sample_misses_the_optimum() {
        // The §5.1 failure mode: one excellent output among many poor ones;
        // a sample of 1 selects uniformly, so the optimum is found with
        // probability ~1/n regardless of ε.
        let mut rng = StdRng::seed_from_u64(4);
        let mut q = vec![-100.0; 1000];
        q[123] = 0.0;
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            if subsampled_em(&q, 10.0, 100.0, 1, &mut rng) == Some(123) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(
            rate < 0.01,
            "tiny subsample should almost never find the optimum, rate {rate}"
        );
    }
}

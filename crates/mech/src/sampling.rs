//! Weighted-sampling utilities shared by the mechanisms.

use rand::Rng;

/// Samples an index proportionally to non-negative `weights`.
///
/// Returns `None` if the weights are empty, contain a negative/NaN entry, or
/// sum to zero. Linear scan over the cumulative sum — the candidate lists in
/// this codebase are built fresh per call, so a prefix-sum structure would
/// not amortize.
pub fn sample_from_weights<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let mut total = 0.0f64;
    for &w in weights {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: also catches NaN
        if !(w >= 0.0) {
            return None;
        }
        total += w;
    }
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    let u = rng.random::<f64>() * total;
    sample_index_by_cumsum(weights, u)
}

/// Finds the first index where the running sum of `weights` exceeds `target`.
///
/// Falls back to the last strictly-positive weight when floating-point
/// rounding leaves `target` marginally above the final cumulative sum.
pub fn sample_index_by_cumsum(weights: &[f64], target: f64) -> Option<usize> {
    let mut acc = 0.0f64;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last_positive = Some(i);
        }
        acc += w;
        if target < acc {
            return Some(i);
        }
    }
    last_positive
}

/// Gumbel-max sampling over *log*-weights: returns the argmax of
/// `log_w[i] + Gumbel(0,1)`, which is distributed as softmax(`log_w`).
///
/// Avoids overflow/underflow entirely, so it is the right tool when scores
/// span hundreds of nats (large ε′ · distance products). `-inf` entries are
/// never selected; returns `None` if all entries are `-inf` or the slice is
/// empty.
pub fn gumbel_argmax<R: Rng + ?Sized>(log_weights: &[f64], rng: &mut R) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &lw) in log_weights.iter().enumerate() {
        if lw == f64::NEG_INFINITY || lw.is_nan() {
            continue;
        }
        // Gumbel(0,1) = -ln(-ln U). Clamp U away from 0/1 endpoints.
        let u: f64 = rng.random::<f64>().clamp(1e-300, 1.0 - 1e-16);
        let g = -(-u.ln()).ln();
        let key = lw + g;
        if best.is_none_or(|(_, b)| key > b) {
            best = Some((i, key));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_weights_yield_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_from_weights(&[], &mut rng), None);
    }

    #[test]
    fn negative_or_nan_weights_yield_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_from_weights(&[1.0, -0.5], &mut rng), None);
        assert_eq!(sample_from_weights(&[1.0, f64::NAN], &mut rng), None);
    }

    #[test]
    fn all_zero_weights_yield_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_from_weights(&[0.0, 0.0], &mut rng), None);
    }

    #[test]
    fn deterministic_when_single_positive_weight() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sample_from_weights(&[0.0, 3.0, 0.0], &mut rng), Some(1));
        }
    }

    #[test]
    fn cumsum_rounding_falls_back_to_last_positive() {
        // target exactly equal to the total (can happen with rounding).
        assert_eq!(sample_index_by_cumsum(&[0.25, 0.75, 0.0], 1.0), Some(1));
        assert_eq!(sample_index_by_cumsum(&[0.0, 0.0], 0.5), None);
    }

    #[test]
    fn frequencies_roughly_match_weights() {
        let mut rng = StdRng::seed_from_u64(42);
        let weights = [1.0, 2.0, 7.0];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[sample_from_weights(&weights, &mut rng).unwrap()] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.02,
                "idx {i}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn gumbel_skips_neg_infinity() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let idx = gumbel_argmax(&[f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY], &mut rng);
            assert_eq!(idx, Some(1));
        }
        assert_eq!(gumbel_argmax(&[f64::NEG_INFINITY], &mut rng), None);
        assert_eq!(gumbel_argmax(&[], &mut rng), None);
    }

    #[test]
    fn gumbel_matches_softmax_frequencies() {
        let mut rng = StdRng::seed_from_u64(11);
        let logw = [0.0f64, (2.0f64).ln(), (7.0f64).ln()];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[gumbel_argmax(&logw, &mut rng).unwrap()] += 1;
        }
        for (i, &lw) in logw.iter().enumerate() {
            let expect = lw.exp() / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.02,
                "idx {i}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn gumbel_survives_extreme_log_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        // Scores that would overflow exp().
        let logw = [900.0, 850.0, -900.0];
        let mut saw0 = 0;
        for _ in 0..1000 {
            let i = gumbel_argmax(&logw, &mut rng).unwrap();
            assert!(i < 2, "the -900 entry should essentially never win");
            if i == 0 {
                saw0 += 1;
            }
        }
        assert!(saw0 > 990, "exp gap of 50 nats should dominate, got {saw0}");
    }
}

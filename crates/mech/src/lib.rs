//! Local differential privacy mechanism substrate.
//!
//! Provides the randomized primitives the trajectory mechanism is built on:
//!
//! * [`ExponentialMechanism`] — the EM of McSherry & Talwar (Definition 4.3),
//!   with numerically-stable log-space sampling and exact probability
//!   computation for tests,
//! * [`permute_and_flip`] — the Permute-and-Flip selection mechanism
//!   discussed as a global-solution variant in §5.1,
//! * [`subsampled_em`] — the subsampled EM of Lantz et al., the other §5.1
//!   variant,
//! * [`k_randomized_response`] — classic k-ary randomized response, used as
//!   a reference mechanism in tests,
//! * [`laplace_noise`] — Laplace noise for count post-analyses,
//! * [`PrivacyBudget`] — a sequential-composition accountant that enforces
//!   the ε′ = ε/(|τ|+n−1) split of Theorem 5.3 at runtime.
//!
//! All samplers take `&mut impl Rng` so callers control determinism.

pub mod budget;
pub mod em;
pub mod geoind;
pub mod noise;
pub mod pf;
pub mod rr;
pub mod sampling;
pub mod ssem;

pub use budget::{BudgetError, PrivacyBudget};
pub use em::ExponentialMechanism;
pub use geoind::{lambert_w_minus1, planar_laplace_displacement};
pub use noise::laplace_noise;
pub use pf::permute_and_flip;
pub use rr::{k_randomized_response, rr_truth_probability};
pub use sampling::{gumbel_argmax, sample_from_weights, sample_index_by_cumsum};
pub use ssem::subsampled_em;

//! Permute-and-Flip (McKenna & Sheldon, NeurIPS 2020).
//!
//! §5.1 considers Permute-and-Flip as a way to avoid enumerating the full
//! output set of the global solution: candidates are visited in random
//! order and each is accepted with probability `exp(ε(q - q*) / 2Δq)`
//! (where `q*` is the best quality). PF stochastically dominates the EM, is
//! ε-DP, and always terminates on the first pass with the best candidate
//! accepted with probability 1.

use rand::seq::SliceRandom;
use rand::Rng;

/// Samples an index from `qualities` using Permute-and-Flip.
///
/// Returns `None` for empty input or if every quality is NaN.
pub fn permute_and_flip<R: Rng + ?Sized>(
    qualities: &[f64],
    epsilon: f64,
    sensitivity: f64,
    rng: &mut R,
) -> Option<usize> {
    assert!(
        epsilon > 0.0 && sensitivity > 0.0,
        "epsilon and sensitivity must be positive"
    );
    if qualities.is_empty() {
        return None;
    }
    let q_star = qualities
        .iter()
        .copied()
        .filter(|q| !q.is_nan())
        .fold(f64::NEG_INFINITY, f64::max);
    if q_star == f64::NEG_INFINITY {
        return None;
    }
    let scale = epsilon / (2.0 * sensitivity);
    let mut order: Vec<usize> = (0..qualities.len()).collect();
    loop {
        order.shuffle(rng);
        for &i in &order {
            let q = qualities[i];
            if q.is_nan() {
                continue;
            }
            let accept = ((q - q_star) * scale).exp();
            if rng.random::<f64>() < accept {
                return Some(i);
            }
        }
        // A candidate with q == q* always accepts, so a full pass only
        // fails with probability 0 under exact arithmetic; loop defensively.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_yields_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(permute_and_flip(&[], 1.0, 1.0, &mut rng), None);
    }

    #[test]
    fn single_candidate_always_selected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(permute_and_flip(&[-3.0], 1.0, 1.0, &mut rng), Some(0));
    }

    #[test]
    fn best_candidate_dominates_at_high_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = [-10.0, 0.0, -8.0];
        let mut best = 0;
        for _ in 0..1000 {
            if permute_and_flip(&q, 50.0, 1.0, &mut rng) == Some(1) {
                best += 1;
            }
        }
        assert!(best > 995, "got {best}");
    }

    #[test]
    fn pf_satisfies_eps_dp_probability_ratio() {
        // Empirically estimate P[output = y] for two quality vectors that
        // differ as two inputs would, and check the e^ε bound.
        let eps = 1.0;
        let q_x = [0.0, -5.0, -10.0];
        let q_x2 = [-10.0, -5.0, 0.0];
        let n = 200_000;
        let mut rng = StdRng::seed_from_u64(3);
        let mut c1 = [0usize; 3];
        let mut c2 = [0usize; 3];
        for _ in 0..n {
            c1[permute_and_flip(&q_x, eps, 10.0, &mut rng).unwrap()] += 1;
            c2[permute_and_flip(&q_x2, eps, 10.0, &mut rng).unwrap()] += 1;
        }
        for i in 0..3 {
            let p1 = c1[i] as f64 / n as f64;
            let p2 = c2[i] as f64 / n as f64;
            let ratio = p1 / p2;
            // Allow 10% sampling slack on the e^ε bound.
            assert!(ratio < eps.exp() * 1.1, "ratio {ratio} at {i}");
            assert!(ratio > (-eps).exp() * 0.9, "ratio {ratio} at {i}");
        }
    }

    #[test]
    fn pf_stochastically_dominates_em_on_expected_quality() {
        use crate::em::ExponentialMechanism;
        let q = [0.0, -2.0, -4.0, -6.0, -8.0];
        let eps = 1.0;
        let sens = 8.0;
        let em = ExponentialMechanism::new(eps, sens);
        let p_em = em.probabilities(&q);
        let em_expected: f64 = p_em.iter().zip(&q).map(|(p, qi)| p * qi).sum();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mut total = 0.0;
        for _ in 0..n {
            total += q[permute_and_flip(&q, eps, sens, &mut rng).unwrap()];
        }
        let pf_expected = total / n as f64;
        assert!(
            pf_expected >= em_expected - 0.02,
            "PF {pf_expected} should dominate EM {em_expected}"
        );
    }
}

//! k-ary randomized response.
//!
//! The oldest LDP primitive: report the truth with probability
//! `e^ε / (e^ε + k - 1)`, otherwise a uniformly random *other* value.
//! Equivalent to the EM with a 0/1 quality function; used in tests as an
//! independent reference implementation and available to downstream users
//! for categorical attributes.

use rand::Rng;

/// Perturbs `truth ∈ [0, k)` under ε-LDP randomized response over `k`
/// categories. Panics if `k < 2` or `truth >= k`.
pub fn k_randomized_response<R: Rng + ?Sized>(
    truth: usize,
    k: usize,
    epsilon: f64,
    rng: &mut R,
) -> usize {
    assert!(k >= 2, "randomized response needs at least two categories");
    assert!(truth < k, "truth index {truth} out of range 0..{k}");
    assert!(epsilon > 0.0 && epsilon.is_finite());
    let e = epsilon.exp();
    let p_truth = e / (e + k as f64 - 1.0);
    if rng.random::<f64>() < p_truth {
        truth
    } else {
        // Uniform over the k-1 other values.
        let mut v = rng.random_range(0..k - 1);
        if v >= truth {
            v += 1;
        }
        v
    }
}

/// The probability that randomized response reports the truth.
pub fn rr_truth_probability(k: usize, epsilon: f64) -> f64 {
    let e = epsilon.exp();
    e / (e + k as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outputs_always_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = k_randomized_response(3, 10, 0.5, &mut rng);
            assert!(v < 10);
        }
    }

    #[test]
    fn truth_rate_matches_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let (k, eps) = (5usize, 1.0);
        let expect = rr_truth_probability(k, eps);
        let n = 50_000;
        let mut hits = 0;
        for _ in 0..n {
            if k_randomized_response(2, k, eps, &mut rng) == 2 {
                hits += 1;
            }
        }
        let got = hits as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "got {got}, expect {expect}");
    }

    #[test]
    fn epsilon_ldp_ratio_holds() {
        // P[out=y | truth=y] / P[out=y | truth=x≠y] = e^ε exactly.
        let (k, eps) = (4usize, 2.0);
        let p_true = rr_truth_probability(k, eps);
        let p_lie = (1.0 - p_true) / (k as f64 - 1.0);
        let ratio = p_true / p_lie;
        assert!((ratio - eps.exp()).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn large_epsilon_reports_truth() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(k_randomized_response(7, 10, 30.0, &mut rng), 7);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn truth_out_of_range_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = k_randomized_response(10, 10, 1.0, &mut rng);
    }

    #[test]
    fn non_truth_outputs_are_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let (k, eps, truth) = (4usize, 0.1, 1usize);
        let mut counts = vec![0usize; k];
        let n = 80_000;
        for _ in 0..n {
            counts[k_randomized_response(truth, k, eps, &mut rng)] += 1;
        }
        let p_true = rr_truth_probability(k, eps);
        let p_other = (1.0 - p_true) / 3.0;
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let expect = if i == truth { p_true } else { p_other };
            assert!(
                (got - expect).abs() < 0.01,
                "idx {i}: got {got}, expect {expect}"
            );
        }
    }
}

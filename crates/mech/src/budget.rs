//! Sequential-composition privacy accounting.
//!
//! LDP composes sequentially: running `k` mechanisms with budgets `ε_i`
//! yields `Σ ε_i`-LDP (§4.2). [`PrivacyBudget`] enforces this at runtime —
//! the trajectory pipeline draws `ε′ = ε/(|τ|+n−1)` per n-gram window and
//! the accountant guarantees the total never exceeds the user's ε
//! (Theorem 5.3).

use std::fmt;

/// Error returned when a draw would exceed the remaining budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetError {
    pub requested: f64,
    pub remaining: f64,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget exhausted: requested ε={}, remaining ε={}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetError {}

/// Tracks ε consumption under sequential composition.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
    /// Absolute slack for floating-point accumulation when splitting the
    /// budget into many equal shares.
    tolerance: f64,
}

impl PrivacyBudget {
    /// Creates an accountant with `total` budget. Panics on non-positive ε.
    pub fn new(total: f64) -> Self {
        assert!(
            total > 0.0 && total.is_finite(),
            "total budget must be positive"
        );
        Self {
            total,
            spent: 0.0,
            tolerance: total * 1e-9,
        }
    }

    /// Total budget.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget consumed so far.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Consumes `epsilon` from the budget, or fails without side effects.
    pub fn consume(&mut self, epsilon: f64) -> Result<(), BudgetError> {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "consumed ε must be positive"
        );
        if self.spent + epsilon > self.total + self.tolerance {
            return Err(BudgetError {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        Ok(())
    }

    /// Splits the *total* budget into `parts` equal shares (the paper's
    /// ε′ = ε/(|τ|+n−1)); does not consume anything.
    pub fn equal_share(&self, parts: usize) -> f64 {
        assert!(parts > 0, "cannot split into zero parts");
        self.total / parts as f64
    }

    /// Whether the whole budget has been used (within tolerance).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() <= self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_up_to_total() {
        let mut b = PrivacyBudget::new(1.0);
        assert!(b.consume(0.4).is_ok());
        assert!(b.consume(0.6).is_ok());
        assert!(b.is_exhausted());
        assert!((b.spent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overdraw_fails_and_leaves_state_unchanged() {
        let mut b = PrivacyBudget::new(1.0);
        b.consume(0.9).unwrap();
        let err = b.consume(0.2).unwrap_err();
        assert!((err.remaining - 0.1).abs() < 1e-12);
        assert!(
            (b.spent() - 0.9).abs() < 1e-12,
            "failed draw must not consume"
        );
    }

    #[test]
    fn equal_shares_compose_back_to_total() {
        // |τ| = 5, n = 2 -> 6 windows, each ε/6; composition = ε exactly.
        let mut b = PrivacyBudget::new(5.0);
        let parts = 6;
        let share = b.equal_share(parts);
        for _ in 0..parts {
            b.consume(share).unwrap();
        }
        assert!(b.is_exhausted());
        assert!(b.consume(share).is_err());
    }

    #[test]
    fn many_tiny_shares_tolerate_fp_accumulation() {
        let mut b = PrivacyBudget::new(1.0);
        let parts = 10_000;
        let share = b.equal_share(parts);
        for i in 0..parts {
            b.consume(share)
                .unwrap_or_else(|e| panic!("failed at {i}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_total_rejected() {
        let _ = PrivacyBudget::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_consume_rejected() {
        let mut b = PrivacyBudget::new(1.0);
        let _ = b.consume(0.0);
    }

    #[test]
    fn display_is_informative() {
        let mut b = PrivacyBudget::new(1.0);
        b.consume(0.75).unwrap();
        let e = b.consume(0.5).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("0.5") && s.contains("0.25"), "{s}");
    }
}

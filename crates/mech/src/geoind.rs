//! Geo-indistinguishability (Andrés et al., CCS 2013) — the *relaxed*
//! location-privacy notion the paper contrasts itself against (§2, §5.9:
//! "although these approaches possess their own theoretical guarantees,
//! they do not satisfy ε-LDP, which makes them incomparable with our
//! mechanism").
//!
//! We implement the planar Laplace mechanism so the comparison can be run:
//! a point is displaced by a polar-Laplace noise vector, guaranteeing
//! ε·d-privacy (the indistinguishability of two locations degrades with
//! their distance) — **not** ε-LDP. The API name makes the relaxation
//! explicit.

use rand::Rng;

/// A planar (polar) Laplace draw: returns `(east_m, north_m)` displacement
/// such that the mechanism satisfies ε-geo-indistinguishability, where
/// `epsilon_per_meter` is the privacy level per meter (often written ε/r).
///
/// Radius sampling uses the standard inverse-CDF via the Lambert-W branch
/// `W₋₁`, computed with Halley iterations.
pub fn planar_laplace_displacement<R: Rng + ?Sized>(
    epsilon_per_meter: f64,
    rng: &mut R,
) -> (f64, f64) {
    assert!(
        epsilon_per_meter > 0.0 && epsilon_per_meter.is_finite(),
        "epsilon_per_meter must be positive"
    );
    let theta = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
    // r = -(1/ε)(W₋₁((p−1)/e) + 1) for p ~ U(0,1).
    let p: f64 = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
    let w = lambert_w_minus1((p - 1.0) / std::f64::consts::E);
    let r = -(w + 1.0) / epsilon_per_meter;
    (r * theta.cos(), r * theta.sin())
}

/// The W₋₁ branch of the Lambert W function on `[-1/e, 0)`.
///
/// Accuracy ~1e-12 via a log-based seed plus Halley iterations; this is the
/// standard approach for planar-Laplace sampling.
pub fn lambert_w_minus1(x: f64) -> f64 {
    assert!(
        (-1.0 / std::f64::consts::E..0.0).contains(&x),
        "W₋₁ domain is [-1/e, 0), got {x}"
    );
    // Seed: for x -> 0⁻, W₋₁(x) ≈ ln(-x) - ln(-ln(-x)); near -1/e use the
    // series around the branch point.
    let mut w = if x > -0.25 {
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2
    } else {
        // Branch-point series: W ≈ -1 - p - p²/3 with p = -sqrt(2(1+ex)).
        let p = -(2.0 * (1.0 + std::f64::consts::E * x)).max(0.0).sqrt();
        -1.0 + p - p * p / 3.0
    };
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        if f.abs() < 1e-14 * x.abs().max(1e-300) {
            break;
        }
        // Halley's method.
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let step = f / denom;
        w -= step;
        if step.abs() < 1e-15 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lambert_w_satisfies_defining_equation() {
        for &x in &[-0.3678, -0.25, -0.1, -0.01, -1e-6] {
            let w = lambert_w_minus1(x);
            assert!(w <= -1.0, "W₋₁ must be ≤ -1, got {w} at {x}");
            let back = w * w.exp();
            assert!((back - x).abs() < 1e-9, "W({x}) = {w}: w e^w = {back}");
        }
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn lambert_w_rejects_out_of_domain() {
        let _ = lambert_w_minus1(0.5);
    }

    #[test]
    fn displacement_radius_has_gamma_2_mean() {
        // Polar Laplace radius ~ Gamma(2, 1/ε): mean 2/ε.
        let eps = 0.01; // per meter -> mean radius 200 m
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mean_r: f64 = (0..n)
            .map(|_| {
                let (dx, dy) = planar_laplace_displacement(eps, &mut rng);
                (dx * dx + dy * dy).sqrt()
            })
            .sum::<f64>()
            / n as f64;
        let expect = 2.0 / eps;
        assert!(
            (mean_r - expect).abs() / expect < 0.03,
            "mean radius {mean_r}, expect {expect}"
        );
    }

    #[test]
    fn displacement_is_isotropic() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let (mut sx, mut sy) = (0.0, 0.0);
        for _ in 0..n {
            let (dx, dy) = planar_laplace_displacement(0.01, &mut rng);
            sx += dx;
            sy += dy;
        }
        let mean_mag = 200.0; // mean radius for eps 0.01
        assert!(
            (sx / n as f64).abs() < mean_mag * 0.05,
            "x bias {}",
            sx / n as f64
        );
        assert!(
            (sy / n as f64).abs() < mean_mag * 0.05,
            "y bias {}",
            sy / n as f64
        );
    }

    #[test]
    fn higher_epsilon_means_smaller_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = |eps: f64, rng: &mut StdRng| -> f64 {
            (0..5000)
                .map(|_| {
                    let (dx, dy) = planar_laplace_displacement(eps, rng);
                    (dx * dx + dy * dy).sqrt()
                })
                .sum::<f64>()
                / 5000.0
        };
        let loose = mean(0.001, &mut rng);
        let tight = mean(0.1, &mut rng);
        assert!(loose > tight * 10.0, "loose {loose}, tight {tight}");
    }
}

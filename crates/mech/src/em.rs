//! The Exponential Mechanism (Definition 4.3).
//!
//! For input `x` and candidate outputs `y ∈ Y` with quality `q(x, y)`, the EM
//! samples `y` with probability proportional to `exp(ε·q(x,y) / 2Δq)`.
//! Choosing the quality function as a *negated distance* (`q = -d`) yields
//! Eq. 4 / Eq. 6 of the paper, and because the probability ratio between any
//! two inputs is bounded by `e^ε`, the result satisfies strict ε-LDP — not a
//! metric-LDP relaxation (§4.2).

use crate::sampling::gumbel_argmax;
use rand::Rng;

/// A configured exponential mechanism: privacy parameter ε and the
/// sensitivity Δq of the quality function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl ExponentialMechanism {
    /// Creates a mechanism. Panics on non-positive ε or sensitivity — both
    /// indicate a configuration bug, not a runtime condition.
    pub fn new(epsilon: f64, sensitivity: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive, got {epsilon}"
        );
        assert!(
            sensitivity > 0.0 && sensitivity.is_finite(),
            "sensitivity must be positive, got {sensitivity}"
        );
        Self {
            epsilon,
            sensitivity,
        }
    }

    /// The privacy parameter ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The sensitivity Δq.
    #[inline]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The exponent multiplier `ε / 2Δq` applied to each quality score.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.epsilon / (2.0 * self.sensitivity)
    }

    /// Samples an index from `qualities` (higher quality = more likely).
    ///
    /// Uses the Gumbel-max trick in log space, so arbitrarily large quality
    /// magnitudes are safe. Returns `None` for an empty candidate list.
    pub fn sample<R: Rng + ?Sized>(&self, qualities: &[f64], rng: &mut R) -> Option<usize> {
        let s = self.scale();
        // Log-weights are just scaled qualities; Gumbel-max handles the rest.
        let log_w: Vec<f64> = qualities.iter().map(|&q| q * s).collect();
        gumbel_argmax(&log_w, rng)
    }

    /// Samples using *distances* instead of qualities (`q = -d`), matching
    /// the paper's Eq. 4 / Eq. 6 formulation directly.
    pub fn sample_by_distance<R: Rng + ?Sized>(
        &self,
        distances: &[f64],
        rng: &mut R,
    ) -> Option<usize> {
        let s = self.scale();
        let log_w: Vec<f64> = distances.iter().map(|&d| -d * s).collect();
        gumbel_argmax(&log_w, rng)
    }

    /// Exact output probabilities for the given qualities (for tests and
    /// privacy audits). Numerically stabilized by subtracting the max.
    pub fn probabilities(&self, qualities: &[f64]) -> Vec<f64> {
        if qualities.is_empty() {
            return Vec::new();
        }
        let s = self.scale();
        let m = qualities.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = qualities.iter().map(|&q| ((q - m) * s).exp()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    /// The utility bound of Eq. 3/7: with probability at least `1 - e^{-ζ}`,
    /// the sampled quality is within `2Δq/ε · (ln(|Y|/|Y_OPT|) + ζ)` of the
    /// optimum. Returns that additive gap for given `|Y|`, `|Y_OPT|`, `ζ`.
    pub fn utility_gap(&self, num_outputs: usize, num_optimal: usize, zeta: f64) -> f64 {
        assert!(num_optimal >= 1 && num_outputs >= num_optimal);
        2.0 * self.sensitivity / self.epsilon
            * ((num_outputs as f64 / num_optimal as f64).ln() + zeta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_rejected() {
        let _ = ExponentialMechanism::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "sensitivity")]
    fn zero_sensitivity_rejected() {
        let _ = ExponentialMechanism::new(1.0, 0.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let em = ExponentialMechanism::new(1.0, 2.0);
        let p = em.probabilities(&[-1.0, -2.0, -3.0, 0.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_quality_is_more_likely() {
        let em = ExponentialMechanism::new(2.0, 1.0);
        let p = em.probabilities(&[0.0, -1.0, -5.0]);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn probability_ratio_bounded_by_exp_eps() {
        // ε-LDP check (Definition 4.2): for two *inputs* x, x' the ratio of
        // probabilities of any output y is bounded by e^ε. With q = -d and
        // Δq = max distance, the exponent difference per output is at most
        // ε/2 + ε/2 = ε across the numerator and normalizer.
        let eps = 1.5;
        let dmax: f64 = 10.0;
        let em = ExponentialMechanism::new(eps, dmax);
        // Distances from two different inputs to 5 candidate outputs.
        let d_x = [0.0, 3.0, 7.0, 10.0, 2.0];
        let d_x2 = [10.0, 6.0, 0.0, 1.0, 9.0];
        let q_x: Vec<f64> = d_x.iter().map(|d| -d).collect();
        let q_x2: Vec<f64> = d_x2.iter().map(|d| -d).collect();
        let p1 = em.probabilities(&q_x);
        let p2 = em.probabilities(&q_x2);
        for i in 0..p1.len() {
            let ratio = p1[i] / p2[i];
            assert!(ratio <= (eps).exp() + 1e-9, "ratio {ratio} at {i}");
            assert!(ratio >= (-eps).exp() - 1e-9, "ratio {ratio} at {i}");
        }
    }

    #[test]
    fn sampling_matches_probabilities() {
        let em = ExponentialMechanism::new(1.0, 5.0);
        let q = [0.0, -2.0, -4.0, -8.0];
        let p = em.probabilities(&q);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[em.sample(&q, &mut rng).unwrap()] += 1;
        }
        for i in 0..4 {
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - p[i]).abs() < 0.015,
                "idx {i}: got {got}, expect {}",
                p[i]
            );
        }
    }

    #[test]
    fn sample_by_distance_prefers_near() {
        let em = ExponentialMechanism::new(5.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let d = [0.0, 10.0, 20.0];
        let mut zero = 0;
        for _ in 0..1000 {
            if em.sample_by_distance(&d, &mut rng).unwrap() == 0 {
                zero += 1;
            }
        }
        assert!(zero > 990, "got {zero}");
    }

    #[test]
    fn empty_candidates_yield_none() {
        let em = ExponentialMechanism::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(em.sample(&[], &mut rng), None);
    }

    #[test]
    fn extreme_scores_do_not_overflow() {
        let em = ExponentialMechanism::new(100.0, 0.001);
        let p = em.probabilities(&[-1e6, 0.0, -1e6]);
        assert!((p[1] - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(em.sample(&[-1e6, 0.0, -1e6], &mut rng), Some(1));
    }

    #[test]
    fn utility_gap_monotone_in_outputs() {
        let em = ExponentialMechanism::new(1.0, 1.0);
        let g1 = em.utility_gap(10, 1, 1.0);
        let g2 = em.utility_gap(1000, 1, 1.0);
        assert!(g2 > g1);
    }

    #[test]
    fn uniform_when_epsilon_tiny() {
        let em = ExponentialMechanism::new(1e-9, 1.0);
        let p = em.probabilities(&[0.0, -5.0, -10.0]);
        for &pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-6);
        }
    }
}

//! Red-team evaluation tier: attack what the pipeline *publishes*.
//!
//! The ledger tier proves the accounting (Σ spend ≤ ε over every
//! horizon); this crate measures what those numbers buy an adversary in
//! practice, in the spirit of the reconstruction attacks on DP trajectory
//! mechanisms (arXiv 2210.09375). Two instruments:
//!
//! * [`harness::reconstruction_attack`] — a whole-trajectory MAP decoder
//!   (`trajshare_core::TrajectoryAdversary`, Viterbi over the `W₂`
//!   lattice) run against the client *uploads* the collector sees on the
//!   wire, optionally sharpened with the published population model as a
//!   prior. Scored by exact-recovery rate and mean reconstruction
//!   distance.
//! * [`mi`] + [`harness::membership_eps_lower_bound`] — empirical ε via
//!   membership inference on *neighboring streams*: run the full pipeline
//!   twice on datasets differing in one user, score the target under each
//!   published model, and convert the attacker's distinguishing advantage
//!   into a DKW-corrected lower bound on the privacy loss. Sound: with
//!   probability ≥ 1−δ the reported bound does not exceed the true ε of
//!   the end-to-end channel, so `empirical ≤ theoretical` is a testable
//!   invariant, not a hope.
//!
//! Threat model discipline: every attack entry point consumes only
//! (a) the wire uploads — visible to the collector by definition,
//! (b) public knowledge (dataset, mechanism config, region universe), and
//! (c) [`trajshare_aggregate::PublishedStream`] — the released surface.
//! Ground truth appears exclusively on the *scoring* side. Nothing in
//! this crate reads mechanism-internal state.

pub mod harness;
pub mod mi;

pub use harness::{membership_eps_lower_bound, reconstruction_attack, ReconSummary};
pub use mi::{eps_lower_bound, krr_empirical_eps, MiEstimate};

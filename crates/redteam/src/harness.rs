//! The attack harness: drives the adversaries against collector-visible
//! artifacts and scores them against ground truth.
//!
//! Observability contract (the whole point of this tier):
//!
//! * the reconstruction attacker sees the **wire uploads** — each user's
//!   `PerturbedTrajectory.windows`, which the collector receives by
//!   definition — plus public knowledge (the mechanism config and the
//!   region universe derived from it) and, optionally, the **published**
//!   population model as a prior;
//! * the membership attacker sees only [`PublishedStream`]s — it scores
//!   the target's path under the released model and never touches
//!   reports, counters, or any server-internal state;
//! * ground truth (the victims' real trajectories) is used exclusively to
//!   *grade* the attacks.

use crate::mi::{eps_lower_bound, MiEstimate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use trajshare_aggregate::{user_seed, PublishedStream};
use trajshare_core::{NGramMechanism, PathPrior, RegionSet, TrajectoryAdversary};
use trajshare_model::{Dataset, Trajectory, TrajectorySet};

/// Aggregate score of one reconstruction-attack run.
#[derive(Debug, Clone, Copy)]
pub struct ReconSummary {
    /// Trajectories attacked (victims that encode into the universe).
    pub trials: usize,
    /// Fraction of victims whose full region path was recovered exactly.
    pub exact_rate: f64,
    /// Mean per-position haversine distance (meters) between the decoded
    /// and true region centroids.
    pub mean_distance_m: f64,
}

/// Runs the whole-trajectory MAP attack against every victim's wire
/// upload. `published` supplies the released model as a decoding prior
/// (`None` = uninformed attacker); `seed` reproduces the exact uploads
/// the collector would have seen from the simulated clients, via the same
/// per-user derivation as the pipeline.
pub fn reconstruction_attack(
    dataset: &Dataset,
    mech: &NGramMechanism,
    victims: &TrajectorySet,
    published: Option<&PublishedStream>,
    seed: u64,
) -> ReconSummary {
    let graph = mech.graph();
    let prior = published.map(|p| PathPrior {
        start: &p.model.start,
        transition: &p.model.transition,
    });
    // One adversary per trajectory length (ε′ depends on |τ|), built
    // lazily and reused across victims.
    let mut adversaries: HashMap<usize, TrajectoryAdversary<'_>> = HashMap::new();

    let mut trials = 0usize;
    let mut exact = 0usize;
    let mut dist_sum = 0.0f64;
    let mut dist_n = 0usize;
    for (i, traj) in victims.all().iter().enumerate() {
        let Some(truth) = mech.regions().encode(dataset, traj) else {
            continue;
        };
        let len = truth.len();
        let mut rng = StdRng::seed_from_u64(user_seed(seed, i as u64));
        let upload = mech.perturb_raw(traj, &mut rng);
        let adv = adversaries.entry(len).or_insert_with(|| {
            let n_eff = mech.config().n.min(len);
            let lengths: Vec<usize> = (1..=n_eff).collect();
            TrajectoryAdversary::new(graph, upload.eps_prime, &lengths)
        });
        let decoded = adv.map_trajectory(&upload.windows, len, prior);
        trials += 1;
        if decoded == truth {
            exact += 1;
        }
        for (d, t) in decoded.iter().zip(&truth) {
            let dc = mech.regions().get(*d).centroid;
            let tc = mech.regions().get(*t).centroid;
            dist_sum += dc.haversine_m(&tc);
            dist_n += 1;
        }
    }
    ReconSummary {
        trials,
        exact_rate: if trials == 0 {
            0.0
        } else {
            exact as f64 / trials as f64
        },
        mean_distance_m: if dist_n == 0 {
            0.0
        } else {
            dist_sum / dist_n as f64
        },
    }
}

/// Empirical ε of the end-to-end pipeline by membership inference on
/// neighboring streams.
///
/// Per trial the *same* per-trial seed drives two full publication runs
/// on neighboring inputs — `base ∪ {target}` vs `base ∪ {decoy}` — which
/// is a valid coupling: the two worlds differ in exactly one user's data,
/// the ε-LDP unit. The attacker's score is the target path's
/// log-likelihood under each published model
/// ([`PublishedStream::path_log_likelihood`]); the score pairs feed the
/// DKW-corrected estimator ([`eps_lower_bound`]).
///
/// `publish` abstracts the pipeline so the n-gram system and baselines
/// (LDPTrace) are measured by the *same* attacker: it must map
/// `(input set, seed)` to the released surface and nothing else.
#[allow(clippy::too_many_arguments)]
pub fn membership_eps_lower_bound<F>(
    dataset: &Dataset,
    regions: &RegionSet,
    base: &TrajectorySet,
    target: &Trajectory,
    decoy: &Trajectory,
    trials: usize,
    delta: f64,
    seed: u64,
    publish: F,
) -> MiEstimate
where
    F: Fn(&TrajectorySet, u64) -> PublishedStream,
{
    assert!(trials > 0);
    let target_path = regions
        .encode(dataset, target)
        .expect("target must encode into the region universe");

    let mut world_in: Vec<Trajectory> = base.all().to_vec();
    world_in.push(target.clone());
    let world_in = TrajectorySet::new(world_in);
    let mut world_out: Vec<Trajectory> = base.all().to_vec();
    world_out.push(decoy.clone());
    let world_out = TrajectorySet::new(world_out);

    let mut scores_in = Vec::with_capacity(trials);
    let mut scores_out = Vec::with_capacity(trials);
    for t in 0..trials {
        let trial_seed = user_seed(seed, t as u64);
        let pub_in = publish(&world_in, trial_seed);
        let pub_out = publish(&world_out, trial_seed);
        scores_in.push(pub_in.path_log_likelihood(&target_path));
        scores_out.push(pub_out.path_log_likelihood(&target_path));
    }
    eps_lower_bound(&scores_in, &scores_out, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajshare_aggregate::{
        aggregate_and_synthesize_matching_with, collect_reports, EstimatorBackend,
        FrequencyEstimator,
    };
    use trajshare_core::MechanismConfig;
    use trajshare_datagen::{
        generate_taxi_foursquare, CityConfig, SyntheticCity, TaxiFoursquareConfig,
    };
    use trajshare_hierarchy::builders::foursquare;

    fn world() -> (Dataset, TrajectorySet) {
        let mut rng = StdRng::seed_from_u64(1);
        let city = SyntheticCity::generate(
            &CityConfig {
                num_pois: 60,
                speed_kmh: Some(8.0),
                ..Default::default()
            },
            foursquare(),
            &mut rng,
        );
        let set = generate_taxi_foursquare(
            &city.dataset,
            &TaxiFoursquareConfig {
                num_trajectories: 24,
                len_bounds: (3, 3),
                ..Default::default()
            },
            &mut rng,
        );
        (city.dataset, set)
    }

    fn mech(ds: &Dataset, eps: f64) -> NGramMechanism {
        let mut cfg = MechanismConfig::default().with_epsilon(eps);
        cfg.time_interval_min = 240;
        NGramMechanism::build(ds, &cfg)
    }

    #[test]
    fn huge_epsilon_reconstruction_is_near_total() {
        let (ds, set) = world();
        let m = mech(&ds, 400.0);
        let r = reconstruction_attack(&ds, &m, &set, None, 3);
        assert_eq!(r.trials, set.len());
        assert!(r.exact_rate > 0.9, "rate {}", r.exact_rate);
        assert!(r.mean_distance_m < 100.0, "dist {}", r.mean_distance_m);
    }

    #[test]
    fn tiny_epsilon_reconstruction_is_poor() {
        let (ds, set) = world();
        let m = mech(&ds, 0.05);
        let r = reconstruction_attack(&ds, &m, &set, None, 3);
        assert!(r.exact_rate < 0.3, "rate {}", r.exact_rate);
        assert!(r.mean_distance_m > 0.0);
    }

    #[test]
    fn reconstruction_is_deterministic_in_seed() {
        let (ds, set) = world();
        let m = mech(&ds, 2.0);
        let a = reconstruction_attack(&ds, &m, &set, None, 5);
        let b = reconstruction_attack(&ds, &m, &set, None, 5);
        assert_eq!(a.exact_rate, b.exact_rate);
        assert_eq!(a.mean_distance_m, b.mean_distance_m);
    }

    #[test]
    fn membership_bound_is_sound_on_the_real_pipeline() {
        let (ds, set) = world();
        let eps = 2.0;
        let m = mech(&ds, eps);
        let all = set.all();
        let base = TrajectorySet::new(all[..all.len() - 2].to_vec());
        let target = all[all.len() - 2].clone();
        let decoy = all[all.len() - 1].clone();
        let estimator = FrequencyEstimator::Ibu {
            iters: 10,
            backend: EstimatorBackend::SparseW2,
        };
        let est = membership_eps_lower_bound(
            &ds,
            m.regions(),
            &base,
            &target,
            &decoy,
            6,
            0.05,
            9,
            |input, s| {
                let reports = collect_reports(&m, input, s);
                let outcome =
                    aggregate_and_synthesize_matching_with(&ds, &m, &reports, s, estimator);
                PublishedStream::from_outcome(eps, &outcome)
            },
        );
        assert_eq!(est.trials_in, 6);
        assert!(est.eps_lower.is_finite());
        // 6 trials → the DKW band is so wide no leakage can be certified;
        // the sound answer is (well under) the theoretical ε.
        assert!(est.eps_lower <= eps, "empirical {} > ε", est.eps_lower);
    }
}

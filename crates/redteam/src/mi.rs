//! Membership-inference empirical-ε estimation.
//!
//! The attacker plays the standard distinguishing game behind the ε-LDP
//! definition: two neighboring inputs (target present vs. a decoy in its
//! place), one observable channel output per trial, one real-valued score
//! per output. If any score threshold separates the two worlds with true
//! rates (TPR, FPR), the data-processing inequality forces
//! `TPR ≤ e^ε · FPR` and `(1−FPR) ≤ e^ε · (1−TPR)` — so
//! `ln(TPR/FPR)` and `ln((1−FPR)/(1−TPR))` are both lower bounds on ε.
//!
//! Empirical rates are not true rates, so the estimator debits each side
//! by a Dvoretzky–Kiefer–Wolfowitz band before taking the logarithm:
//! with `n` trials per world, `sup_t |F̂(t) − F(t)| ≤ √(ln(2/δ′)/2n)`
//! with probability ≥ 1 − δ′, *uniformly over thresholds* — which is what
//! licenses sweeping every threshold and keeping the best. Splitting δ
//! across the two worlds, the reported [`MiEstimate::eps_lower`] is a
//! valid ε lower bound with probability ≥ 1 − δ. Small trial counts make
//! the band wide and the bound conservative — the sound direction for a
//! `empirical ≤ theoretical` CI gate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_aggregate::user_seed;
use trajshare_mech::{k_randomized_response, rr_truth_probability};

/// One membership-inference measurement.
#[derive(Debug, Clone, Copy)]
pub struct MiEstimate {
    /// Best uncorrected distinguishing advantage `max_t (TPR − FPR)`.
    pub advantage: f64,
    /// DKW-corrected lower bound on ε; ≥ 0, and 0 when the trials cannot
    /// certify any leakage.
    pub eps_lower: f64,
    /// Trials in the target-present world.
    pub trials_in: usize,
    /// Trials in the target-absent world.
    pub trials_out: usize,
    /// Total failure probability of the bound.
    pub delta: f64,
}

/// Converts paired attacker scores (target present / absent) into a
/// sound empirical-ε lower bound. Higher scores must indicate "target
/// present"; any monotone score works, the bound is just weaker for bad
/// ones.
pub fn eps_lower_bound(scores_in: &[f64], scores_out: &[f64], delta: f64) -> MiEstimate {
    assert!(!scores_in.is_empty() && !scores_out.is_empty());
    assert!(delta > 0.0 && delta < 1.0);
    let n_in = scores_in.len();
    let n_out = scores_out.len();
    // δ split across the two empirical CDFs; DKW band per side.
    let half = delta / 2.0;
    let slack_in = (f64::ln(2.0 / half) / (2.0 * n_in as f64)).sqrt();
    let slack_out = (f64::ln(2.0 / half) / (2.0 * n_out as f64)).sqrt();

    let mut thresholds: Vec<f64> = scores_in.iter().chain(scores_out).copied().collect();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();

    let mut advantage: f64 = 0.0;
    let mut eps: f64 = 0.0;
    for &t in &thresholds {
        let tpr = scores_in.iter().filter(|&&s| s >= t).count() as f64 / n_in as f64;
        let fpr = scores_out.iter().filter(|&&s| s >= t).count() as f64 / n_out as f64;
        advantage = advantage.max(tpr - fpr);
        // Accept direction: TPR ≤ e^ε FPR.
        let num = tpr - slack_in;
        if num > 0.0 {
            eps = eps.max((num / (fpr + slack_out)).ln());
        }
        // Reject direction: 1−FPR ≤ e^ε (1−TPR).
        let num = (1.0 - fpr) - slack_out;
        if num > 0.0 {
            eps = eps.max((num / ((1.0 - tpr) + slack_in)).ln());
        }
    }
    MiEstimate {
        advantage,
        eps_lower: eps.max(0.0),
        trials_in: n_in,
        trials_out: n_out,
        delta,
    }
}

/// Calibration instrument: the membership game against *plain k-RR*,
/// whose exact ε is known, with the optimal (likelihood-ratio) attacker.
/// Pins the estimator sound before it judges the pipeline: for any
/// `(epsilon, k, trials)` the returned bound must not exceed `epsilon`
/// (up to probability `delta`).
pub fn krr_empirical_eps(
    epsilon: f64,
    k: usize,
    trials: usize,
    delta: f64,
    seed: u64,
) -> MiEstimate {
    assert!(k >= 2);
    let p = rr_truth_probability(k, epsilon);
    let q = (1.0 - p) / (k as f64 - 1.0);
    let (truth, decoy) = (0usize, 1usize);
    // Exact log-likelihood ratio of one report: ln P(z|truth)/P(z|decoy).
    let llr = |z: usize| -> f64 {
        if z == truth {
            (p / q).ln()
        } else if z == decoy {
            (q / p).ln()
        } else {
            0.0
        }
    };
    let mut scores_in = Vec::with_capacity(trials);
    let mut scores_out = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(user_seed(seed, t as u64));
        scores_in.push(llr(k_randomized_response(truth, k, epsilon, &mut rng)));
        scores_out.push(llr(k_randomized_response(decoy, k, epsilon, &mut rng)));
    }
    eps_lower_bound(&scores_in, &scores_out, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_bounded_by_the_dkw_band() {
        // Even perfectly separated scores cannot certify unbounded ε: the
        // band caps the claim at ln((1−s)/s).
        let scores_in = vec![1.0; 200];
        let scores_out = vec![0.0; 200];
        let est = eps_lower_bound(&scores_in, &scores_out, 0.05);
        let slack = (f64::ln(2.0 / 0.025) / 400.0).sqrt();
        let cap = ((1.0 - slack) / slack).ln();
        assert!(est.eps_lower > 0.0);
        assert!(est.eps_lower <= cap + 1e-9, "{} > {cap}", est.eps_lower);
        assert!((est.advantage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_scores_certify_nothing() {
        let s = vec![0.3; 150];
        let est = eps_lower_bound(&s, &s, 0.05);
        assert_eq!(est.eps_lower, 0.0);
        assert_eq!(est.advantage, 0.0);
    }

    #[test]
    fn krr_bound_respects_theoretical_eps() {
        for &(eps, k) in &[(0.5, 4usize), (1.0, 8), (2.0, 4), (4.0, 16)] {
            let est = krr_empirical_eps(eps, k, 600, 0.05, 42);
            assert!(
                est.eps_lower <= eps + 1e-9,
                "ε={eps} k={k}: empirical {} exceeds theoretical",
                est.eps_lower
            );
        }
    }

    #[test]
    fn krr_bound_detects_leakage_at_moderate_eps() {
        // ε = 2 with 800 trials: the optimal attacker's advantage is
        // large enough that the certified bound must be strictly positive.
        let est = krr_empirical_eps(2.0, 4, 800, 0.05, 7);
        assert!(est.eps_lower > 0.3, "bound {} too weak", est.eps_lower);
        assert!(est.advantage > 0.2);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = krr_empirical_eps(1.0, 6, 200, 0.05, 11);
        let b = krr_empirical_eps(1.0, 6, 200, 0.05, 11);
        assert_eq!(a.eps_lower, b.eps_lower);
        assert_eq!(a.advantage, b.advantage);
    }
}

//! Synthetic city generator.
//!
//! Produces a [`Dataset`] with clustered POI placement (cities are not
//! uniform), Zipf-distributed popularity (check-in counts are heavy-
//! tailed), leaf categories from a supplied hierarchy, and per-root-category
//! opening hours — exactly the external knowledge the paper assigns
//! manually in §6.1.1 ("we manually specify opening hours for each broad
//! category").

use crate::distributions::Zipf;
use rand::Rng;
use trajshare_geo::{DistanceMetric, GeoPoint};
use trajshare_hierarchy::{CategoryHierarchy, CategoryId};
use trajshare_model::{Dataset, OpeningHours, Poi, PoiId, TimeDomain};

/// Configuration of the synthetic city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// `|P|` — number of POIs (§6.2 default 2 000).
    pub num_pois: usize,
    /// Number of density clusters (neighbourhoods).
    pub num_clusters: usize,
    /// Side length of the (square) city, meters.
    pub extent_m: f64,
    /// Zipf exponent for POI popularity.
    pub popularity_s: f64,
    /// Time granularity `g_t`, minutes (§6.2 default 10).
    pub gt_minutes: u32,
    /// Assumed travel speed, km/h; `None` = unconstrained.
    pub speed_kmh: Option<f64>,
    /// §8 extension: jitter each POI's opening hours by up to this many
    /// hours around its category default ("POI-specific opening hours can
    /// be incorporated easily"). 0 = category-uniform hours as in §6.1.1.
    pub opening_jitter_h: u32,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            num_pois: 2000,
            num_clusters: 12,
            extent_m: 8000.0,
            popularity_s: 1.0,
            gt_minutes: 10,
            speed_kmh: Some(8.0),
            opening_jitter_h: 0,
        }
    }
}

/// A generated city (currently just the dataset; kept as a struct so later
/// extensions — road networks, transit schedules — have a home).
#[derive(Debug, Clone)]
pub struct SyntheticCity {
    pub dataset: Dataset,
}

impl SyntheticCity {
    /// Generates a city over the given category hierarchy.
    pub fn generate<R: Rng + ?Sized>(
        config: &CityConfig,
        hierarchy: CategoryHierarchy,
        rng: &mut R,
    ) -> Self {
        assert!(config.num_pois >= 2, "need at least two POIs");
        assert!(config.num_clusters >= 1);
        let origin = GeoPoint::new(40.70, -74.02); // anchor; location is arbitrary
        let leaves = hierarchy.leaves();
        assert!(!leaves.is_empty(), "hierarchy has no leaf categories");

        // Cluster centers, uniform over the city square.
        let centers: Vec<(f64, f64)> = (0..config.num_clusters)
            .map(|_| {
                (
                    rng.random::<f64>() * config.extent_m,
                    rng.random::<f64>() * config.extent_m,
                )
            })
            .collect();
        // Clusters themselves have Zipf-ish sizes: downtown is denser.
        let cluster_dist = Zipf::new(config.num_clusters, 0.8);
        let popularity = Zipf::new(config.num_pois, config.popularity_s);

        let std_m = config.extent_m / (config.num_clusters as f64).sqrt() / 4.0;
        let pois: Vec<Poi> = (0..config.num_pois)
            .map(|i| {
                let c = cluster_dist.sample(rng);
                let (gx, gy) = gaussian_pair(rng);
                let x = (centers[c].0 + gx * std_m).clamp(0.0, config.extent_m);
                let y = (centers[c].1 + gy * std_m).clamp(0.0, config.extent_m);
                let leaf = leaves[rng.random_range(0..leaves.len())];
                // Popularity: Zipf mass of a random rank, scaled so values
                // are comfortably > 0 and heavy-tailed.
                let pop =
                    popularity.pmf(rng.random_range(0..config.num_pois)) * config.num_pois as f64;
                let opening = jitter_opening(
                    opening_for_root(&hierarchy, leaf),
                    config.opening_jitter_h,
                    rng,
                );
                Poi::new(
                    PoiId(i as u32),
                    format!("poi-{i}"),
                    origin.offset_m(x, y),
                    leaf,
                )
                .with_popularity(pop.max(1e-6))
                .with_opening(opening)
            })
            .collect();

        let dataset = Dataset::new(
            pois,
            hierarchy,
            TimeDomain::new(config.gt_minutes),
            config.speed_kmh,
            DistanceMetric::Haversine,
        );
        Self { dataset }
    }
}

/// Opening hours chosen by the POI's level-1 (root) category, mirroring the
/// paper's manual per-broad-category assignment.
pub fn opening_for_root(hierarchy: &CategoryHierarchy, leaf: CategoryId) -> OpeningHours {
    let root = hierarchy.ancestor_at(leaf, 1).expect("leaf has a root");
    let name = hierarchy.node(root).name.as_str();
    match name {
        n if n.contains("Food") || n.contains("Accommodation") => OpeningHours::between(7, 23),
        n if n.contains("Nightlife") => OpeningHours::between(18, 3),
        n if n.contains("Shop") || n.contains("Retail") => OpeningHours::between(9, 19),
        n if n.contains("Arts") || n.contains("Entertainment") => OpeningHours::between(10, 23),
        n if n.contains("Outdoors") || n.contains("Recreation") => OpeningHours::always(),
        n if n.contains("Professional") || n.contains("Health") || n.contains("Finance") => {
            OpeningHours::between(7, 19)
        }
        n if n.contains("Travel") || n.contains("Transport") => OpeningHours::always(),
        n if n.contains("Residence") || n.contains("Student") => OpeningHours::always(),
        n if n.contains("Educational") || n.contains("Academic") => OpeningHours::between(7, 22),
        n if n.contains("Event") => OpeningHours::between(9, 23),
        _ => OpeningHours::between(8, 20),
    }
}

/// Shifts an hour-range opening mask by up to ±`jitter_h` hours (wrapping),
/// giving each POI individual hours while preserving the category's daily
/// duration. Always-open and never-open masks are returned unchanged.
pub fn jitter_opening<R: Rng + ?Sized>(
    base: OpeningHours,
    jitter_h: u32,
    rng: &mut R,
) -> OpeningHours {
    if jitter_h == 0 {
        return base;
    }
    let open: Vec<u32> = (0..24).filter(|&h| base.is_open_hour(h)).collect();
    if open.is_empty() || open.len() == 24 {
        return base;
    }
    let shift = rng.random_range(0..=2 * jitter_h) as i32 - jitter_h as i32;
    let shifted: Vec<u32> = open
        .iter()
        .map(|&h| ((h as i32 + shift).rem_euclid(24)) as u32)
        .collect();
    OpeningHours::from_hours(&shifted)
}

/// One standard-normal pair via Box–Muller.
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let th = 2.0 * std::f64::consts::PI * u2;
    (r * th.cos(), r * th.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_hierarchy::builders::foursquare;

    #[test]
    fn generates_requested_poi_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let city = SyntheticCity::generate(&CityConfig::default(), foursquare(), &mut rng);
        assert_eq!(city.dataset.pois.len(), 2000);
    }

    #[test]
    fn pois_stay_within_the_city_extent() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = CityConfig {
            num_pois: 500,
            extent_m: 4000.0,
            ..Default::default()
        };
        let city = SyntheticCity::generate(&cfg, foursquare(), &mut rng);
        let diag = city.dataset.pois.bbox().diagonal_m();
        assert!(diag <= 4000.0 * 1.5 + 100.0, "diagonal {diag} too large");
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let city = SyntheticCity::generate(&CityConfig::default(), foursquare(), &mut rng);
        let mut pops: Vec<f64> = city
            .dataset
            .pois
            .all()
            .iter()
            .map(|p| p.popularity)
            .collect();
        pops.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_decile: f64 = pops[..200].iter().sum();
        let total: f64 = pops.iter().sum();
        assert!(
            top_decile / total > 0.3,
            "top 10% hold {:.2} of mass — not heavy-tailed",
            top_decile / total
        );
    }

    #[test]
    fn nightlife_wraps_midnight_and_food_does_not() {
        let h = foursquare();
        let nightlife_leaf = h
            .leaves()
            .into_iter()
            .find(|&l| h.path_name(l).contains("Nightlife"))
            .unwrap();
        let o = opening_for_root(&h, nightlife_leaf);
        assert!(o.is_open_hour(23) && o.is_open_hour(1) && !o.is_open_hour(12));
        let food_leaf = h
            .leaves()
            .into_iter()
            .find(|&l| h.path_name(l).contains("Food"))
            .unwrap();
        let o = opening_for_root(&h, food_leaf);
        assert!(o.is_open_hour(12) && !o.is_open_hour(3));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = SyntheticCity::generate(
            &CityConfig::default(),
            foursquare(),
            &mut StdRng::seed_from_u64(7),
        );
        let b = SyntheticCity::generate(
            &CityConfig::default(),
            foursquare(),
            &mut StdRng::seed_from_u64(7),
        );
        for (x, y) in a.dataset.pois.all().iter().zip(b.dataset.pois.all()) {
            assert_eq!(x.location, y.location);
            assert_eq!(x.popularity, y.popularity);
        }
    }

    #[test]
    fn clustering_produces_nonuniform_density() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = CityConfig {
            num_pois: 1000,
            num_clusters: 4,
            ..Default::default()
        };
        let city = SyntheticCity::generate(&cfg, foursquare(), &mut rng);
        // Split the bbox into a 4x4 grid and check occupancy is skewed.
        let grid = trajshare_geo::UniformGrid::new(*city.dataset.pois.bbox(), 4);
        let mut counts = [0usize; 16];
        for p in city.dataset.pois.all() {
            counts[grid.cell_of(p.location).0 as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(max > 1000 / 16 * 2, "max cell {max} not dense enough");
        assert!(nonzero >= 4);
    }
}

#[cfg(test)]
mod jitter_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_jitter_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = OpeningHours::between(9, 17);
        assert_eq!(jitter_opening(base, 0, &mut rng), base);
    }

    #[test]
    fn jitter_preserves_open_duration() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = OpeningHours::between(9, 17);
        for _ in 0..50 {
            let j = jitter_opening(base, 3, &mut rng);
            assert_eq!(j.open_hours_count(), base.open_hours_count());
        }
    }

    #[test]
    fn jitter_leaves_always_open_alone() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            jitter_opening(OpeningHours::always(), 5, &mut rng),
            OpeningHours::always()
        );
    }

    #[test]
    fn jittered_city_has_varied_hours_within_a_category() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = CityConfig {
            num_pois: 300,
            opening_jitter_h: 2,
            ..Default::default()
        };
        let city =
            SyntheticCity::generate(&cfg, trajshare_hierarchy::builders::foursquare(), &mut rng);
        // Pick one category with bounded hours and check variation exists.
        use std::collections::HashMap;
        let mut by_cat: HashMap<_, Vec<OpeningHours>> = HashMap::new();
        for p in city.dataset.pois.all() {
            if p.opening.open_hours_count() < 24 {
                by_cat.entry(p.category).or_default().push(p.opening);
            }
        }
        let varied = by_cat
            .values()
            .any(|v| v.len() >= 3 && v.iter().any(|o| o != &v[0]));
        assert!(
            varied,
            "expected POI-specific hours to differ within categories"
        );
    }
}

//! Taxi-Foursquare-like trajectory generation (§6.1.1 stand-in).
//!
//! The paper concatenates taxi pick-up/drop-off points snapped to the most
//! popular Foursquare venues. Our stand-in generates check-in walks over
//! the synthetic city: start at a popularity-weighted open POI during the
//! day, then repeatedly hop to a popularity-weighted *reachable, open* POI
//! after a 10–60 minute gap — producing the skewed, hotspot-heavy visit
//! distribution the real data exhibits.

use crate::distributions::{uniform_incl, weighted_index};
use rand::Rng;
use trajshare_model::{
    Dataset, PoiId, ReachabilityOracle, Timestep, Trajectory, TrajectoryPoint, TrajectorySet,
};

/// Configuration for the Taxi-Foursquare-like generator.
#[derive(Debug, Clone)]
pub struct TaxiFoursquareConfig {
    /// Number of trajectories to generate (pre-filtering).
    pub num_trajectories: usize,
    /// Trajectory length bounds (inclusive).
    pub len_bounds: (u32, u32),
    /// Start-time bounds in hours (inclusive start, exclusive end).
    pub start_hours: (u32, u32),
    /// Gap bounds between consecutive points, minutes.
    pub gap_minutes: (u32, u32),
}

impl Default for TaxiFoursquareConfig {
    fn default() -> Self {
        Self {
            num_trajectories: 500,
            len_bounds: (3, 8),
            start_hours: (6, 22),
            gap_minutes: (10, 60),
        }
    }
}

/// Generates the trajectory set; the output is filtered to valid
/// trajectories (§6.2) so some attrition from `num_trajectories` is normal.
pub fn generate_taxi_foursquare<R: Rng + ?Sized>(
    dataset: &Dataset,
    config: &TaxiFoursquareConfig,
    rng: &mut R,
) -> TrajectorySet {
    let oracle = ReachabilityOracle::new(dataset);
    let num_steps = dataset.time.num_timesteps() as u32;
    let gt = dataset.time.gt_minutes();

    let mut set = TrajectorySet::default();
    for _ in 0..config.num_trajectories {
        if let Some(t) = one_walk(dataset, &oracle, config, num_steps, gt, rng) {
            set.push(t);
        }
    }
    set.filter_valid(dataset)
}

fn one_walk<R: Rng + ?Sized>(
    dataset: &Dataset,
    oracle: &ReachabilityOracle,
    config: &TaxiFoursquareConfig,
    num_steps: u32,
    gt: u32,
    rng: &mut R,
) -> Option<Trajectory> {
    let len = uniform_incl(config.len_bounds.0, config.len_bounds.1, rng) as usize;
    let start_min = uniform_incl(
        config.start_hours.0 * 60,
        config.start_hours.1 * 60 - 1,
        rng,
    );
    let mut t = dataset.time.timestep_at(start_min);

    // Start POI: popularity-weighted among open.
    let open: Vec<PoiId> = dataset
        .pois
        .ids()
        .filter(|&p| dataset.pois.get(p).opening.is_open_at(&dataset.time, t))
        .collect();
    if open.is_empty() {
        return None;
    }
    let w: Vec<f64> = open
        .iter()
        .map(|&p| dataset.pois.get(p).popularity)
        .collect();
    let mut poi = open[weighted_index(&w, rng)];
    let mut points = vec![TrajectoryPoint { poi, t }];

    for _ in 1..len {
        let gap = uniform_incl(config.gap_minutes.0.max(gt), config.gap_minutes.1, rng);
        let next_step = t.0 as u32 + gap.div_ceil(gt);
        if next_step >= num_steps {
            break;
        }
        let next_t = Timestep(next_step as u16);
        let gap_min = dataset.time.gap_minutes(t, next_t) as f64;
        let candidates: Vec<PoiId> = oracle
            .reachable_set(poi, gap_min)
            .into_iter()
            .filter(|&p| {
                p != poi
                    && dataset
                        .pois
                        .get(p)
                        .opening
                        .is_open_at(&dataset.time, next_t)
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let w: Vec<f64> = candidates
            .iter()
            .map(|&p| dataset.pois.get(p).popularity)
            .collect();
        poi = candidates[weighted_index(&w, rng)];
        t = next_t;
        points.push(TrajectoryPoint { poi, t });
    }
    (points.len() >= 2).then(|| Trajectory::new(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, SyntheticCity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajshare_hierarchy::builders::foursquare;

    fn dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = CityConfig {
            num_pois: 400,
            ..Default::default()
        };
        SyntheticCity::generate(&cfg, foursquare(), &mut rng).dataset
    }

    #[test]
    fn generates_valid_trajectories() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TaxiFoursquareConfig {
            num_trajectories: 100,
            ..Default::default()
        };
        let set = generate_taxi_foursquare(&ds, &cfg, &mut rng);
        assert!(set.len() >= 80, "only {} of 100 valid", set.len());
        for t in set.all() {
            assert!(t.validate(&ds).is_ok());
        }
    }

    #[test]
    fn lengths_respect_bounds() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TaxiFoursquareConfig {
            num_trajectories: 100,
            ..Default::default()
        };
        let set = generate_taxi_foursquare(&ds, &cfg, &mut rng);
        for t in set.all() {
            assert!((2..=8).contains(&t.len()), "len {}", t.len());
        }
    }

    #[test]
    fn popular_pois_are_visited_more() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TaxiFoursquareConfig {
            num_trajectories: 400,
            ..Default::default()
        };
        let set = generate_taxi_foursquare(&ds, &cfg, &mut rng);
        let mut visits = vec![0usize; ds.pois.len()];
        for t in set.all() {
            for p in t.points() {
                visits[p.poi.index()] += 1;
            }
        }
        // Correlation check via mean popularity of visited vs all POIs.
        let total_visits: usize = visits.iter().sum();
        let visit_weighted_pop: f64 = visits
            .iter()
            .enumerate()
            .map(|(i, &v)| v as f64 * ds.pois.get(PoiId(i as u32)).popularity)
            .sum::<f64>()
            / total_visits as f64;
        let mean_pop: f64 =
            ds.pois.all().iter().map(|p| p.popularity).sum::<f64>() / ds.pois.len() as f64;
        assert!(
            visit_weighted_pop > mean_pop,
            "visited popularity {visit_weighted_pop} not above mean {mean_pop}"
        );
    }

    #[test]
    fn starts_fall_in_configured_window() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = TaxiFoursquareConfig {
            num_trajectories: 120,
            ..Default::default()
        };
        let set = generate_taxi_foursquare(&ds, &cfg, &mut rng);
        for t in set.all() {
            let m = ds.time.minute_of(t.point(0).t);
            assert!((6 * 60..22 * 60).contains(&m), "start at minute {m}");
        }
    }
}

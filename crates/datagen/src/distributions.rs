//! Small sampling utilities (Zipf, categorical, uniform ranges).
//!
//! Implemented by hand so the workspace does not depend on `rand_distr`
//! (DESIGN.md §5).

use rand::Rng;

/// A Zipf(s) distribution over ranks `1..=n`: `P(k) ∝ k^{-s}`.
///
/// POI popularity is famously heavy-tailed; the city generator uses Zipf
/// weights so the synthetic data exhibits the hotspot structure the paper's
/// hotspot queries (§6.3.2) rely on.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k` (0-based index = rank k+1).
    pub fn pmf(&self, idx: usize) -> f64 {
        if idx == 0 {
            self.cdf[0]
        } else {
            self.cdf[idx] - self.cdf[idx - 1]
        }
    }

    /// Samples a 0-based rank index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples an index from non-negative weights; panics if all weights are
/// zero/empty (generator inputs are validated upstream).
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index requires positive total weight");
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Uniform integer in `[lo, hi]` (inclusive).
pub fn uniform_incl<R: Rng + ?Sized>(lo: u32, hi: u32, rng: &mut R) -> u32 {
    assert!(lo <= hi);
    rng.random_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.0);
        for i in 1..50 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(5, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in 0..5 {
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - z.pmf(i)).abs() < 0.01,
                "rank {i}: {got} vs {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = 0;
        for _ in 0..1000 {
            if weighted_index(&[0.0, 1.0, 0.0], &mut rng) == 1 {
                hits += 1;
            }
        }
        assert_eq!(hits, 1000);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn weighted_index_rejects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = weighted_index(&[0.0, 0.0], &mut rng);
    }

    #[test]
    fn uniform_incl_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = uniform_incl(3, 5, &mut rng);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }
}

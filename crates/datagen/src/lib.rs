//! Synthetic data substrate (§6.1).
//!
//! The paper evaluates on Foursquare+taxi data, Safegraph Patterns, and UBC
//! campus buildings — none redistributable. This crate builds statistically
//! matching stand-ins (DESIGN.md §4):
//!
//! * [`city`] — a synthetic city: clustered POIs, Zipf popularity, category
//!   hierarchy, per-category opening hours,
//! * [`taxi_foursquare`] — check-in-style trajectories over the city
//!   (popularity- and reachability-biased walks),
//! * [`safegraph`] — the §6.1.2 semi-synthetic recipe (uniform |τ| ∈ \[3,8\],
//!   start ∈ [6am, 10pm], dwell-time sampling, popularity-weighted hops),
//! * [`campus`] — the §6.1.3 campus generator with 262 buildings, nine
//!   categories, and the three induced popular events,
//! * [`distributions`] — Zipf and categorical samplers (no external crates).
//!
//! All generators are deterministic given an RNG seed.

pub mod campus;
pub mod city;
pub mod distributions;
pub mod safegraph;
pub mod taxi_foursquare;

pub use campus::{generate_campus, CampusConfig, CampusData};
pub use city::{CityConfig, SyntheticCity};
pub use safegraph::{generate_safegraph, SafegraphConfig};
pub use taxi_foursquare::{generate_taxi_foursquare, TaxiFoursquareConfig};

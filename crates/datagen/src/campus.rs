//! UBC-campus-like data (§6.1.3 stand-in).
//!
//! 262 campus buildings act as POIs across nine categories. Trajectory
//! length and start time are drawn as for the Safegraph data; successive
//! gaps ~ Uniform(g_t, 120) minutes; each subsequent POI is drawn uniformly
//! from the reachable, open set. Three popular events are induced:
//!
//! * 500 people at **Residence A**, 8–10 pm,
//! * 1 000 people at **Stadium A**, 2–4 pm,
//! * 2 000 people in **academic buildings**, 9–11 am.
//!
//! Event counts scale proportionally when fewer trajectories are requested.

use crate::distributions::uniform_incl;
use rand::Rng;
use trajshare_geo::{DistanceMetric, GeoPoint};
use trajshare_hierarchy::builders::campus as campus_hierarchy;
use trajshare_model::{
    Dataset, OpeningHours, Poi, PoiId, ReachabilityOracle, Timestep, Trajectory, TrajectoryPoint,
    TrajectorySet,
};

/// Configuration for the campus generator.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// Number of buildings (paper: 262).
    pub num_buildings: usize,
    /// Campus side length, meters (UBC's core is roughly 2 km square).
    pub extent_m: f64,
    /// Number of trajectories (pre-filtering). The paper uses 5–10 k; event
    /// sizes scale with `num_trajectories / 5000`.
    pub num_trajectories: usize,
    /// Trajectory length bounds.
    pub len_bounds: (u32, u32),
    /// Gap bounds in minutes (paper: (g_t, 120)).
    pub gap_minutes_max: u32,
    /// Time granularity g_t, minutes.
    pub gt_minutes: u32,
    /// Travel speed (paper: 4 km/h on campus).
    pub speed_kmh: Option<f64>,
}

impl Default for CampusConfig {
    fn default() -> Self {
        Self {
            num_buildings: 262,
            extent_m: 2000.0,
            num_trajectories: 500,
            len_bounds: (3, 8),
            gap_minutes_max: 120,
            gt_minutes: 10,
            speed_kmh: Some(4.0),
        }
    }
}

/// The generated campus: dataset, trajectories, and the event anchors (for
/// hotspot-query ground truth).
#[derive(Debug, Clone)]
pub struct CampusData {
    pub dataset: Dataset,
    pub trajectories: TrajectorySet,
    /// "Residence A" — the 8–10 pm event venue.
    pub residence_a: PoiId,
    /// "Stadium A" — the 2–4 pm event venue.
    pub stadium_a: PoiId,
    /// Academic buildings hosting the 9–11 am event.
    pub academic: Vec<PoiId>,
}

/// Generates the campus dataset and trajectory set.
pub fn generate_campus<R: Rng + ?Sized>(config: &CampusConfig, rng: &mut R) -> CampusData {
    assert!(
        config.num_buildings >= 20,
        "campus needs a reasonable building count"
    );
    let hierarchy = campus_hierarchy();
    let leaves = hierarchy.leaves();
    let origin = GeoPoint::new(49.2606, -123.2460); // UBC-ish anchor

    // Buildings on a jittered grid covering the campus quad.
    let side = (config.num_buildings as f64).sqrt().ceil() as usize;
    let spacing = config.extent_m / side as f64;
    let pois: Vec<Poi> = (0..config.num_buildings)
        .map(|i| {
            let gx = (i % side) as f64 * spacing + rng.random::<f64>() * spacing * 0.5;
            let gy = (i / side) as f64 * spacing + rng.random::<f64>() * spacing * 0.5;
            let leaf = leaves[i % leaves.len()];
            let name = hierarchy.node(leaf).name.clone();
            let opening = if name.contains("Residence") {
                OpeningHours::always()
            } else if name.contains("Stadium") {
                OpeningHours::between(8, 23)
            } else {
                OpeningHours::between(7, 23)
            };
            Poi::new(
                PoiId(i as u32),
                format!("{name} {i}"),
                origin.offset_m(gx, gy),
                leaf,
            )
            .with_opening(opening)
        })
        .collect();

    // Event anchors.
    let find_leaf = |needle: &str| -> Vec<PoiId> {
        pois.iter()
            .filter(|p| hierarchy.node(p.category).name.contains(needle))
            .map(|p| p.id)
            .collect()
    };
    let residence_a = find_leaf("Residence")[0];
    let stadium_a = find_leaf("Stadium")[0];
    let academic = find_leaf("Academic");

    let dataset = Dataset::new(
        pois,
        hierarchy,
        trajshare_model::TimeDomain::new(config.gt_minutes),
        config.speed_kmh,
        DistanceMetric::Haversine,
    );
    let oracle = ReachabilityOracle::new(&dataset);

    // Event sizes scale with the requested set size (paper baseline 5000).
    let scale = config.num_trajectories as f64 / 5000.0;
    let events: Vec<(PoiId, u32, u32, usize)> = {
        let mut ev: Vec<(PoiId, u32, u32, usize)> = vec![
            (residence_a, 20, 22, (500.0 * scale).round() as usize),
            (stadium_a, 14, 16, (1000.0 * scale).round() as usize),
        ];
        // Spread the 2000-person academic event over the academic buildings.
        let per = ((2000.0 * scale) / academic.len() as f64).round() as usize;
        for &a in &academic {
            ev.push((a, 9, 11, per));
        }
        ev
    };

    let mut set = TrajectorySet::default();
    let mut event_cursor: Vec<usize> = events.iter().map(|e| e.3).collect();
    for i in 0..config.num_trajectories {
        // Does this trajectory participate in an event?
        let event = events
            .iter()
            .enumerate()
            .find(|(k, _)| event_cursor[*k] > 0)
            .filter(|_| i < events.iter().map(|e| e.3).sum::<usize>())
            .map(|(k, e)| {
                event_cursor[k] -= 1;
                *e
            });
        if let Some(t) = one_trajectory(&dataset, &oracle, config, event, rng) {
            set.push(t);
        }
    }
    let trajectories = set.filter_valid(&dataset);
    CampusData {
        dataset,
        trajectories,
        residence_a,
        stadium_a,
        academic,
    }
}

/// Generates one trajectory, optionally pinning one point to an event
/// `(poi, start_hour, end_hour, _)` as §6.1.3 prescribes ("picking a point
/// in the trajectory, and controlling the time, POI, and category").
fn one_trajectory<R: Rng + ?Sized>(
    dataset: &Dataset,
    oracle: &ReachabilityOracle,
    config: &CampusConfig,
    event: Option<(PoiId, u32, u32, usize)>,
    rng: &mut R,
) -> Option<Trajectory> {
    let num_steps = dataset.time.num_timesteps() as u32;
    let gt = dataset.time.gt_minutes();
    let len = uniform_incl(config.len_bounds.0, config.len_bounds.1, rng) as usize;

    // Anchor: either the event point or a random open start.
    let (anchor_poi, anchor_t) = match event {
        Some((poi, h_start, h_end, _)) => {
            let m = uniform_incl(h_start * 60, h_end * 60 - gt, rng);
            (poi, dataset.time.timestep_at(m))
        }
        None => {
            let m = uniform_incl(6 * 60, 22 * 60 - 1, rng);
            let t = dataset.time.timestep_at(m);
            let open: Vec<PoiId> = dataset
                .pois
                .ids()
                .filter(|&p| dataset.pois.get(p).opening.is_open_at(&dataset.time, t))
                .collect();
            if open.is_empty() {
                return None;
            }
            (open[rng.random_range(0..open.len())], t)
        }
    };

    // Build forward from the anchor; the anchor occupies a random slot.
    let slot = rng.random_range(0..len);
    let mut points = vec![TrajectoryPoint {
        poi: anchor_poi,
        t: anchor_t,
    }];
    // Backward fill.
    for _ in 0..slot {
        let first = points[0];
        let gap = uniform_incl(gt, config.gap_minutes_max, rng);
        let steps = gap.div_ceil(gt);
        if (first.t.0 as u32) < steps {
            break;
        }
        let t = Timestep(first.t.0 - steps as u16);
        let cands: Vec<PoiId> = oracle
            .reachable_set(first.poi, dataset.time.gap_minutes(t, first.t) as f64)
            .into_iter()
            .filter(|&p| dataset.pois.get(p).opening.is_open_at(&dataset.time, t))
            .collect();
        if cands.is_empty() {
            break;
        }
        points.insert(
            0,
            TrajectoryPoint {
                poi: cands[rng.random_range(0..cands.len())],
                t,
            },
        );
    }
    // Forward fill.
    while points.len() < len {
        let last = *points.last().unwrap();
        let gap = uniform_incl(gt, config.gap_minutes_max, rng);
        let next = last.t.0 as u32 + gap.div_ceil(gt);
        if next >= num_steps {
            break;
        }
        let t = Timestep(next as u16);
        let cands: Vec<PoiId> = oracle
            .reachable_set(last.poi, dataset.time.gap_minutes(last.t, t) as f64)
            .into_iter()
            .filter(|&p| dataset.pois.get(p).opening.is_open_at(&dataset.time, t))
            .collect();
        if cands.is_empty() {
            break;
        }
        points.push(TrajectoryPoint {
            poi: cands[rng.random_range(0..cands.len())],
            t,
        });
    }
    (points.len() >= 2).then(|| Trajectory::new(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> CampusData {
        let mut rng = StdRng::seed_from_u64(21);
        generate_campus(
            &CampusConfig {
                num_trajectories: 400,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn builds_262_buildings_and_nine_categories() {
        let d = data();
        assert_eq!(d.dataset.pois.len(), 262);
        let mut cats: Vec<_> = d.dataset.pois.all().iter().map(|p| p.category).collect();
        cats.sort();
        cats.dedup();
        assert_eq!(cats.len(), 9);
    }

    #[test]
    fn trajectories_are_valid() {
        let d = data();
        assert!(
            d.trajectories.len() >= 300,
            "only {} valid",
            d.trajectories.len()
        );
        for t in d.trajectories.all() {
            assert!(t.validate(&d.dataset).is_ok());
        }
    }

    #[test]
    fn residence_event_creates_evening_hotspot() {
        let d = data();
        // Count visitors at Residence A during 8-10pm vs a quiet window.
        let count = |poi: PoiId, h0: u32, h1: u32| -> usize {
            d.trajectories
                .all()
                .iter()
                .filter(|t| {
                    t.points().iter().any(|p| {
                        p.poi == poi && (h0 * 60..h1 * 60).contains(&d.dataset.time.minute_of(p.t))
                    })
                })
                .count()
        };
        let evening = count(d.residence_a, 20, 22);
        let morning = count(d.residence_a, 8, 10);
        assert!(
            evening >= morning + 10,
            "evening {evening} vs morning {morning}: induced event missing"
        );
    }

    #[test]
    fn stadium_event_creates_afternoon_hotspot() {
        let d = data();
        let afternoon = d
            .trajectories
            .all()
            .iter()
            .filter(|t| {
                t.points().iter().any(|p| {
                    p.poi == d.stadium_a
                        && (14 * 60..16 * 60).contains(&d.dataset.time.minute_of(p.t))
                })
            })
            .count();
        // 1000 scaled by 400/5000 = 80 seeded; filtering loses some.
        assert!(afternoon >= 40, "stadium event too small: {afternoon}");
    }

    #[test]
    fn campus_is_small_enough_for_walking() {
        let d = data();
        assert!(d.dataset.pois.bbox().diagonal_m() < 4000.0);
        assert_eq!(d.dataset.speed_kmh, Some(4.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_campus(
            &CampusConfig {
                num_trajectories: 50,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(3),
        );
        let b = generate_campus(
            &CampusConfig {
                num_trajectories: 50,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a.trajectories.len(), b.trajectories.len());
        for (x, y) in a.trajectories.all().iter().zip(b.trajectories.all()) {
            assert_eq!(x, y);
        }
    }
}

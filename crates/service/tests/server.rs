//! Live-server behavior tests over loopback: correct ingestion, the ack
//! durability contract, slow-reader and hostile-client handling,
//! queue-full backpressure, and crash → restart recovery (toy universe;
//! the full 10k-report mechanism-driven run lives in the root
//! `tests/service_e2e.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use trajshare_aggregate::{
    eps_to_nano, Aggregator, AllocationPolicy, Report, ReportBatch, WindowBudgetConfig,
    WindowConfig, WindowedAggregator,
};
use trajshare_service::{
    stream_reports, stream_reports_batched, IngestServer, ServerConfig, StreamServerConfig,
    SyncPolicy,
};

const REGIONS: usize = 6;

fn toy_report(i: u32) -> Report {
    toy_report_at(i, 0)
}

fn toy_report_at(i: u32, t: u64) -> Report {
    toy_report_eps(i, t, 0.75)
}

fn toy_report_eps(i: u32, t: u64, eps_prime: f64) -> Report {
    let a = i % REGIONS as u32;
    let b = (a + 1) % REGIONS as u32;
    Report {
        t,
        eps_prime,
        len: 2,
        unigrams: vec![(0, a), (1, b)],
        exact: vec![(0, a), (1, b)],
        transitions: vec![(a, b)],
    }
}

fn direct_counts(reports: &[Report]) -> trajshare_aggregate::AggregateCounts {
    let mut agg = Aggregator::from_region_tiles(vec![0; REGIONS]);
    for r in reports {
        agg.ingest(r);
    }
    agg.into_counts()
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trajshare-svc-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(tag: &str) -> (ServerConfig, PathBuf) {
    let dir = test_dir(tag);
    let mut cfg = ServerConfig::new(&dir, vec![0u16; REGIONS]);
    cfg.workers = 3;
    cfg.snapshot_every = 500;
    cfg.wal_flush_every = 16;
    cfg.read_timeout = Duration::from_secs(5);
    (cfg, dir)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn streamed_reports_match_direct_ingestion() {
    let (cfg, dir) = config("stream");
    let server = IngestServer::start(cfg).unwrap();
    let reports: Vec<Report> = (0..2_000).map(toy_report).collect();
    let acked = stream_reports(server.addr(), &reports, 5).unwrap();
    assert_eq!(acked, reports.len() as u64);
    // Acked ⇒ already counted: no waiting, no sleep.
    assert_eq!(server.counts(), direct_counts(&reports));
    let final_counts = server.shutdown().unwrap();
    assert_eq!(final_counts, direct_counts(&reports));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_then_restart_recovers_exact_counters_across_reshard() {
    let (cfg, dir) = config("crash");
    let reports: Vec<Report> = (0..3_000).map(toy_report).collect();
    let expected = direct_counts(&reports);

    let server = IngestServer::start(cfg.clone()).unwrap();
    let acked = stream_reports(server.addr(), &reports, 4).unwrap();
    assert_eq!(acked, 3_000);
    server.crash(); // no final snapshot — recovery works from WAL tails

    // Restart with a *different* shard count: per-shard counter files and
    // logs from the old layout must merge exactly.
    let mut cfg2 = cfg.clone();
    cfg2.workers = 1;
    let server2 = IngestServer::start(cfg2).unwrap();
    assert_eq!(server2.counts(), expected);
    assert_eq!(server2.recovery().recovered_reports, 3_000);

    // The restarted server keeps ingesting on top of recovered state.
    let more: Vec<Report> = (0..500).map(|i| toy_report(i + 7)).collect();
    let acked = stream_reports(server2.addr(), &more, 2).unwrap();
    assert_eq!(acked, 500);
    let mut expected2 = expected.clone();
    expected2.merge(&direct_counts(&more));
    let final_counts = server2.shutdown().unwrap();
    assert_eq!(final_counts, expected2);

    // Third start after a *clean* shutdown sees the same totals.
    let server3 = IngestServer::start(cfg).unwrap();
    assert_eq!(server3.counts(), expected2);
    server3.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn data_dir_lock_refuses_second_server_and_load_is_read_only() {
    let (cfg, dir) = config("lock");
    let server = IngestServer::start(cfg.clone()).unwrap();
    // A second server (or any recovery) on a live directory must be
    // refused — compacting under a running server would unlink its WALs.
    assert!(IngestServer::start(cfg.clone()).is_err());
    assert!(trajshare_service::load(&dir, &[0u16; REGIONS], None).is_err());

    let reports: Vec<Report> = (0..100).map(toy_report).collect();
    assert_eq!(stream_reports(server.addr(), &reports, 2).unwrap(), 100);
    let expected = server.shutdown().unwrap();

    // After shutdown the lock is free; load() reconstructs without
    // advancing the generation (read-only inspection).
    let loaded = trajshare_service::load(&dir, &[0u16; REGIONS], None).unwrap();
    assert_eq!(loaded.counts, expected);
    let again = trajshare_service::load(&dir, &[0u16; REGIONS], None).unwrap();
    assert_eq!(again.gen, loaded.gen, "load must not compact or advance");

    let server2 = IngestServer::start(cfg).unwrap();
    assert_eq!(server2.counts(), expected);
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_reader_is_disconnected() {
    let (mut cfg, dir) = config("slow");
    cfg.read_timeout = Duration::from_millis(150);
    let server = IngestServer::start(cfg).unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // A partial frame, then silence: the server must not wait forever.
    stream.write_all(&[0x10, 0x00]).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.stats().disconnected_slow.load(Ordering::Relaxed) >= 1
        }),
        "stalled client was not disconnected"
    );
    // The dropped connection must not poison subsequent ingestion.
    let reports: Vec<Report> = (0..50).map(toy_report).collect();
    assert_eq!(stream_reports(server.addr(), &reports, 1).unwrap(), 50);
    server.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_frames_drop_the_connection_but_keep_prior_reports() {
    let (cfg, dir) = config("hostile");
    let server = IngestServer::start(cfg).unwrap();

    // One valid frame followed by garbage on the same connection.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let good = toy_report(1);
    stream.write_all(&good.encode_frame()).unwrap();
    let mut evil = 12u32.to_le_bytes().to_vec();
    evil.extend_from_slice(b"NOT A REPORT");
    stream.write_all(&evil).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.stats().disconnected_protocol.load(Ordering::Relaxed) >= 1
        }),
        "hostile client was not dropped"
    );
    // No ack arrives; the socket just closes.
    let mut byte = [0u8; 1];
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert!(matches!(stream.read(&mut byte), Ok(0) | Err(_)));

    // An oversized length prefix is rejected before any buffering.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        server.stats().disconnected_protocol.load(Ordering::Relaxed) >= 2
    }));

    // The valid report that preceded the garbage was still counted.
    assert!(wait_until(Duration::from_secs(5), || {
        server.counts().num_reports == 1
    }));
    assert_eq!(server.counts(), direct_counts(&[good]));
    server.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eof_mid_frame_gets_no_ack_but_keeps_complete_reports() {
    let (cfg, dir) = config("eof");
    let server = IngestServer::start(cfg).unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let good = toy_report(2);
    stream.write_all(&good.encode_frame()).unwrap();
    // First half of a second frame, then a clean write-side close: the
    // upload is incomplete, so no ack may be sent.
    let partial = toy_report(3).encode_frame();
    stream.write_all(&partial[..partial.len() / 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut ack = [0u8; 8];
    assert!(
        matches!(stream.read(&mut ack), Ok(0) | Err(_)),
        "truncated stream must not be acked"
    );
    assert!(wait_until(Duration::from_secs(5), || {
        server.stats().disconnected_protocol.load(Ordering::Relaxed) >= 1
    }));
    // The complete frame before the truncation still counts.
    assert!(wait_until(Duration::from_secs(5), || {
        server.counts().num_reports == 1
    }));
    assert_eq!(server.counts(), direct_counts(&[good]));
    server.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn windowed_server_publishes_and_recovers_the_ring() {
    let (mut cfg, dir) = config("window");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 3,
    };
    cfg.stream = Some(StreamServerConfig::new(window, Duration::from_millis(50)));
    let server = IngestServer::start(cfg.clone()).unwrap();

    // Windows 0, 1, 2 live; then window 3 evicts window 0.
    let reports: Vec<Report> = (0..800)
        .map(|i| toy_report_at(i, (i as u64 % 4) * 60))
        .collect();
    assert_eq!(
        stream_reports(server.addr(), &reports, 4).unwrap(),
        reports.len() as u64
    );
    // Reference ring: serial ingestion of the same reports.
    let mut expected = WindowedAggregator::new(vec![0u16; REGIONS], window);
    for r in &reports {
        expected.ingest(r);
    }
    let view = server.windowed_counts().expect("streaming enabled");
    assert_eq!(
        view.merged(),
        expected.merged(),
        "bit-identical window view"
    );
    assert_eq!(view.newest_window(), 3);
    assert!(view.window_counts(0).is_none(), "window 0 evicted");
    for (id, counts) in expected.windows() {
        assert_eq!(view.window_counts(id), Some(counts), "window {id}");
    }
    // The publication thread reports the same shape.
    assert!(
        wait_until(Duration::from_secs(5), || server
            .latest_publication()
            .map(|p| p.merged_reports == expected.merged().num_reports)
            .unwrap_or(false)),
        "no publication with the full merged view arrived"
    );
    let p = server.latest_publication().unwrap();
    assert_eq!(p.newest_window, 3);
    assert_eq!(p.windows.len(), expected.windows().len());

    // Crash (no final snapshot); the restarted, re-sharded server must
    // restore the ring bit-identically from ring blobs + WAL tails.
    server.crash();
    let mut cfg2 = cfg.clone();
    cfg2.workers = 1;
    let server2 = IngestServer::start(cfg2).unwrap();
    let restored = server2.windowed_counts().unwrap();
    assert_eq!(restored.merged(), expected.merged(), "ring survives crash");
    for (id, counts) in expected.windows() {
        assert_eq!(restored.window_counts(id), Some(counts));
    }
    // And it keeps sliding after the restart.
    let more: Vec<Report> = (0..100).map(|i| toy_report_at(i, 4 * 60)).collect();
    assert_eq!(stream_reports(server2.addr(), &more, 2).unwrap(), 100);
    for r in &more {
        expected.ingest(r);
    }
    let after = server2.windowed_counts().unwrap();
    assert_eq!(after.merged(), expected.merged());
    assert_eq!(after.newest_window(), 4);
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn online_compaction_bounds_wal_size_and_keeps_counters_exact() {
    let (mut cfg, dir) = config("compact");
    cfg.workers = 2;
    // Tiny WAL budget: a few dozen records trip compaction.
    cfg.wal_max_bytes = 2_048;
    cfg.stream = Some(StreamServerConfig::new(
        WindowConfig {
            window_len: 60,
            num_windows: 3,
        },
        Duration::from_millis(100),
    ));
    let server = IngestServer::start(cfg.clone()).unwrap();
    let reports: Vec<Report> = (0..3_000)
        .map(|i| toy_report_at(i, (i as u64 / 1_500) * 60))
        .collect();
    assert_eq!(
        stream_reports(server.addr(), &reports, 4).unwrap(),
        reports.len() as u64
    );
    assert!(
        wait_until(Duration::from_secs(10), || {
            server.stats().compactions.load(Ordering::Relaxed) >= 1
        }),
        "no online compaction despite a tiny WAL budget"
    );
    let gen_after = server.generation();
    assert!(gen_after > 1, "generation must bump on compaction");
    // Totals and window view stay exact through any number of folds.
    assert_eq!(server.counts(), direct_counts(&reports));
    let mut expected_ring =
        WindowedAggregator::new(vec![0u16; REGIONS], cfg.stream.as_ref().unwrap().window);
    for r in &reports {
        expected_ring.ingest(r);
    }
    assert_eq!(
        server.windowed_counts().unwrap().merged(),
        expected_ring.merged()
    );
    // Old-generation files are deleted: disk usage is bounded.
    let gen_of = |name: &str| -> Option<u64> {
        let rest = name
            .strip_prefix("shard-")
            .or_else(|| name.strip_prefix("base-"))
            .or_else(|| name.strip_prefix("ring-"))?;
        rest.split(['-', '.']).next()?.parse().ok()
    };
    let stale: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| matches!(gen_of(n), Some(g) if g != gen_after))
        .collect();
    assert!(stale.is_empty(), "stale generation files remain: {stale:?}");

    // Crash right after compactions; recovery must still be exact.
    server.crash();
    let server2 = IngestServer::start(cfg.clone()).unwrap();
    assert_eq!(server2.counts(), direct_counts(&reports));
    assert_eq!(
        server2.windowed_counts().unwrap().merged(),
        expected_ring.merged()
    );
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_sync_policy_keeps_the_ack_contract() {
    let (mut cfg, dir) = config("fsync");
    cfg.sync_policy = SyncPolicy::GroupCommit {
        records: 32,
        max_delay: Duration::from_millis(20),
    };
    let server = IngestServer::start(cfg.clone()).unwrap();
    let reports: Vec<Report> = (0..500).map(toy_report).collect();
    assert_eq!(stream_reports(server.addr(), &reports, 3).unwrap(), 500);
    assert_eq!(server.counts(), direct_counts(&reports));
    server.crash();
    let server2 = IngestServer::start(cfg).unwrap();
    assert_eq!(server2.counts(), direct_counts(&reports));
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_refuses_connections_instead_of_buffering() {
    let (mut cfg, dir) = config("backpressure");
    cfg.workers = 1;
    cfg.queue_depth = 1;
    cfg.read_timeout = Duration::from_secs(2);
    let server = IngestServer::start(cfg).unwrap();

    // Occupy the only worker with a half-open stream, fill the queue
    // with a second connection, then pile on more: the acceptor must
    // shed them immediately rather than queueing without bound.
    let mut busy = TcpStream::connect(server.addr()).unwrap();
    busy.write_all(&[0x01]).unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        server.stats().accepted.load(Ordering::Relaxed) >= 1
    }));
    let _queued = TcpStream::connect(server.addr()).unwrap();
    let _spill: Vec<_> = (0..5)
        .map(|_| TcpStream::connect(server.addr()).unwrap())
        .collect();
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.stats().refused.load(Ordering::Relaxed) >= 1
        }),
        "no connection was refused under a full queue"
    );
    server.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watermark_advance_is_rate_limited_per_connection() {
    let (mut cfg, dir) = config("throttle");
    cfg.workers = 1; // one shard: the ring watermark is global
    let mut stream_cfg = StreamServerConfig::new(
        WindowConfig {
            window_len: 60,
            num_windows: 3,
        },
        Duration::from_millis(50),
    );
    stream_cfg.max_conn_advance = 2;
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg.clone()).unwrap();

    // One connection: windows 0, 1, 2 (advance budget 2 consumed), then
    // a hostile far-future jump that would wipe the whole ring — the
    // budget is spent, so the jump is refused and the ring stands.
    let reports = vec![
        toy_report_at(0, 0),
        toy_report_at(1, 60),
        toy_report_at(2, 120),
        toy_report_at(3, 1_000_000),
        toy_report_at(4, 125), // still in-window: accepted after the refusal
    ];
    let acked = stream_reports(server.addr(), &reports, 1).unwrap();
    assert_eq!(acked, 4, "the far-future report must not be acked");
    assert_eq!(
        server.stats().watermark_throttled.load(Ordering::Relaxed),
        1
    );
    let view = server.windowed_counts().unwrap();
    assert_eq!(view.newest_window(), 2, "watermark must not jump");
    assert_eq!(view.merged().num_reports, 4);

    // A fresh connection gets a fresh budget: it may advance (by ≤ 2).
    assert_eq!(
        stream_reports(server.addr(), &[toy_report_at(5, 180)], 1).unwrap(),
        1
    );
    let view = server.windowed_counts().unwrap();
    assert_eq!(view.newest_window(), 3);

    // Restart: throttled reports never reached the WAL, so recovery
    // reproduces exactly the accepted set.
    server.crash();
    let server2 = IngestServer::start(cfg).unwrap();
    assert_eq!(server2.counts().num_reports, 5);
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_clock_stamps_reports_at_the_collector_edge() {
    let (mut cfg, dir) = config("server-clock");
    let mut stream_cfg = StreamServerConfig::new(
        WindowConfig {
            window_len: 60,
            num_windows: 4,
        },
        Duration::from_millis(50),
    );
    stream_cfg.server_clock = true;
    // Regression: a tight advance budget must not refuse edge-stamped
    // reports — the stamp is the server's own clock, trusted by
    // construction (a fresh ring starts at the "now" window, and the
    // budget only polices client-declared timestamps).
    stream_cfg.max_conn_advance = 2;
    cfg.stream = Some(stream_cfg);
    let before = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs()
        / 60;
    let server = IngestServer::start(cfg.clone()).unwrap();

    // Clients declare absurd timestamps in both directions; the collector
    // overrides them all with its own clock, so everything lands in the
    // "now" window and nothing is late or evicted.
    let reports = vec![
        toy_report_at(0, 0),
        toy_report_at(1, u64::MAX / 2),
        toy_report_at(2, 7),
    ];
    assert_eq!(stream_reports(server.addr(), &reports, 1).unwrap(), 3);
    assert_eq!(
        server.stats().watermark_throttled.load(Ordering::Relaxed),
        0,
        "server-clock stamps must bypass the advance budget"
    );
    let view = server.windowed_counts().unwrap();
    assert_eq!(view.merged().num_reports, 3);
    assert_eq!(view.late(), 0);
    assert!(
        view.newest_window() >= before,
        "stamped window {} must be the server's clock, not the client's",
        view.newest_window()
    );
    assert!(view.windows().len() <= 2, "all reports land around now");

    // The *stamped* timestamps are what the WAL holds: recovery lands
    // the reports back in the server-clock windows, not window 0.
    server.crash();
    let server2 = IngestServer::start(cfg).unwrap();
    let restored = server2.windowed_counts().unwrap();
    assert_eq!(restored.merged().num_reports, 3);
    assert!(restored.newest_window() >= before);
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn advance_budget_is_free_on_an_empty_ring() {
    // Clients stamping epoch seconds must be able to reach "now" from a
    // cold start's watermark 0 even under a tight budget: advancing an
    // empty ring evicts nothing, so it costs nothing. Once live data
    // exists, the budget bites.
    let (mut cfg, dir) = config("cold-start-budget");
    cfg.workers = 1;
    let mut stream_cfg = StreamServerConfig::new(
        WindowConfig {
            window_len: 60,
            num_windows: 3,
        },
        Duration::from_millis(50),
    );
    stream_cfg.max_conn_advance = 1;
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg).unwrap();

    let epoch = 1_700_000_000u64;
    assert_eq!(
        stream_reports(server.addr(), &[toy_report_at(0, epoch)], 1).unwrap(),
        1,
        "first epoch-stamped report must be free on the empty ring"
    );
    let view = server.windowed_counts().unwrap();
    assert_eq!(view.newest_window(), epoch / 60);
    // Now the ring holds live data: a 100-window jump overdraws budget 1.
    assert_eq!(
        stream_reports(server.addr(), &[toy_report_at(1, epoch + 6_000)], 1).unwrap(),
        0
    );
    assert_eq!(
        server.stats().watermark_throttled.load(Ordering::Relaxed),
        1
    );
    assert_eq!(
        server.windowed_counts().unwrap().newest_window(),
        epoch / 60
    );
    server.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_accountant_enforces_the_sliding_invariant_across_restart() {
    let (mut cfg, dir) = config("budget");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 4,
    };
    let mut stream_cfg = StreamServerConfig::new(window, Duration::from_millis(30));
    // Reports claim ε′ = 0.75; a 3ε / 3-window contract grants each
    // window 1.0ε uniform, so every window is accepted with 0.25ε
    // recycled.
    let budget_cfg = WindowBudgetConfig::new(eps_to_nano(3.0), 3, AllocationPolicy::Uniform);
    stream_cfg.budget = Some(budget_cfg);
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg.clone()).unwrap();

    // Four windows of reports: the 3-window sliding sum must stay ≤ 3ε
    // while windows enter and leave the horizon.
    for w in 0..4u64 {
        let reports: Vec<Report> = (0..200).map(|i| toy_report_at(i, w * 60)).collect();
        assert_eq!(stream_reports(server.addr(), &reports, 2).unwrap(), 200);
        assert!(
            wait_until(Duration::from_secs(5), || server
                .budget_ledger()
                .and_then(|a| a.decided())
                .is_some_and(|d| d >= w)),
            "window {w} never decided"
        );
    }
    let ledger = server.budget_ledger().unwrap();
    let per_window = eps_to_nano(0.75);
    // Every live decision settled to the observed worst-case (max)
    // per-report ε′ — here every report claims 0.75, so max == mean;
    // nothing refused; the sliding sum is within the contract.
    for d in ledger.decisions() {
        assert!(!d.refused, "window {} refused", d.window);
        assert_eq!(d.spent_nano, per_window, "window {}", d.window);
    }
    assert!(ledger.sliding_spend_nano() <= budget_cfg.total_nano);
    assert_eq!(ledger.sliding_spend_nano(), 3 * per_window);
    assert!(server.budget_refused_windows().is_empty());
    let p = server.latest_publication().unwrap();
    let b = p.budget.expect("budgeted publication");
    assert_eq!(b.sliding_spent_nano, 3 * per_window);
    assert_eq!(b.newest_spent_nano, per_window);
    assert!(!b.newest_refused);

    // Kill (no graceful snapshot) → restart: the ledger must come back
    // from the BUDGET blob with the same decisions and sliding sum.
    server.crash();
    let server2 = IngestServer::start(cfg.clone()).unwrap();
    let restored = server2.budget_ledger().unwrap();
    assert_eq!(restored.decided(), ledger.decided());
    assert_eq!(restored.sliding_spend_nano(), ledger.sliding_spend_nano());
    assert!(restored.sliding_spend_nano() <= budget_cfg.total_nano);
    // The restored ring carries the spend annotations too.
    let view = server2.windowed_counts().unwrap();
    for d in restored.decisions() {
        if d.window >= view.oldest_window() && view.window_counts(d.window).is_some() {
            assert_eq!(
                view.window_spend(d.window),
                d.spent_nano,
                "window {}",
                d.window
            );
        }
    }
    // A fifth window keeps the invariant rolling post-restart.
    let reports: Vec<Report> = (0..200).map(|i| toy_report_at(i, 4 * 60)).collect();
    assert_eq!(stream_reports(server2.addr(), &reports, 2).unwrap(), 200);
    assert!(wait_until(Duration::from_secs(5), || server2
        .budget_ledger()
        .and_then(|a| a.decided())
        == Some(4)));
    let after = server2.budget_ledger().unwrap();
    assert!(after.sliding_spend_nano() <= budget_cfg.total_nano);
    server2.crash();

    // Read-only inspection surfaces the ledger as well.
    let rec = trajshare_service::load(&dir, &[0u16; REGIONS], Some(window)).unwrap();
    let dumped = rec.budget.expect("BUDGET blob restored");
    assert_eq!(dumped.decided(), after.decided());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_budget_windows_are_refused_and_excluded_from_estimates() {
    let (mut cfg, dir) = config("budget-refuse");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 3,
    };
    let mut stream_cfg = StreamServerConfig::new(window, Duration::from_millis(30));
    // 1ε over 2 windows ⇒ 0.5ε per-window grant, but the cohort claims
    // ε′ = 0.75 — every decided window must be refused.
    let budget_cfg = WindowBudgetConfig::new(eps_to_nano(1.0), 2, AllocationPolicy::Uniform);
    stream_cfg.budget = Some(budget_cfg);
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg).unwrap();

    let reports: Vec<Report> = (0..300)
        .map(|i| toy_report_at(i, (i as u64 % 2) * 60))
        .collect();
    assert_eq!(stream_reports(server.addr(), &reports, 3).unwrap(), 300);
    assert!(
        wait_until(Duration::from_secs(5), || server
            .stats()
            .budget_refusals
            .load(Ordering::Relaxed)
            >= 2),
        "refusals never recorded"
    );
    let refused = server.budget_refused_windows();
    assert_eq!(refused, vec![0, 1], "both windows over budget");
    let ledger = server.budget_ledger().unwrap();
    // Refusal keeps the full grant on the books: the cohort randomized
    // against the broadcast grant, so that ε is consumed whether or not
    // the window is published — zeroing it would recycle spent budget.
    let grant = eps_to_nano(0.5);
    for d in ledger.decisions() {
        assert!(d.refused);
        assert_eq!(d.spent_nano, grant, "refused windows keep their grant");
    }
    assert_eq!(ledger.sliding_spend_nano(), 2 * grant);
    assert!(ledger.sliding_spend_nano() <= eps_to_nano(1.0));
    let p = server.latest_publication().unwrap();
    let b = p.budget.unwrap();
    assert!(b.newest_refused);
    assert_eq!(b.refused_windows, 2);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_over_claiming_reporter_refuses_the_window_despite_a_low_mean() {
    let (mut cfg, dir) = config("budget-max");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 3,
    };
    let mut stream_cfg = StreamServerConfig::new(window, Duration::from_millis(30));
    // 1ε over 2 windows ⇒ 0.5ε grant. 200 reports at ε′ = 0.01 keep the
    // cohort mean ≈ 0.014 — far under the grant — but one reporter
    // claims ε′ = 0.9: that user alone blows the per-user contract, so
    // the window must be refused. (Settling against the mean would have
    // accepted it.)
    let budget_cfg = WindowBudgetConfig::new(eps_to_nano(1.0), 2, AllocationPolicy::Uniform);
    stream_cfg.budget = Some(budget_cfg);
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg).unwrap();

    let mut reports: Vec<Report> = (0..200).map(|i| toy_report_eps(i, 0, 0.01)).collect();
    reports.push(toy_report_eps(7, 0, 0.9));
    assert_eq!(stream_reports(server.addr(), &reports, 2).unwrap(), 201);
    assert!(
        wait_until(Duration::from_secs(5), || server
            .budget_refused_windows()
            .contains(&0)),
        "the over-claiming reporter's window was never refused"
    );
    let d = server.budget_ledger().unwrap().decision(0).unwrap();
    assert!(d.refused);
    assert_eq!(d.spent_nano, eps_to_nano(0.5), "grant stays on the books");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn expired_but_live_windows_stay_frozen_against_late_over_claims() {
    let (mut cfg, dir) = config("budget-expired");
    // Ring deeper than the budget horizon: window 0 is still live when
    // its ledger entry expires from the 3-window horizon.
    let window = WindowConfig {
        window_len: 60,
        num_windows: 5,
    };
    let mut stream_cfg = StreamServerConfig::new(window, Duration::from_millis(30));
    let budget_cfg = WindowBudgetConfig::new(eps_to_nano(3.0), 3, AllocationPolicy::Uniform);
    stream_cfg.budget = Some(budget_cfg);
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg.clone()).unwrap();

    // Windows 0..=3 at ε′ = 0.75 against a 1ε uniform grant: all
    // accepted. Once window 3 is decided, window 0's ledger entry has
    // expired (3 − 0 ≥ horizon 3) while the 5-deep ring keeps it live.
    for w in 0..4u64 {
        let reports: Vec<Report> = (0..50).map(|i| toy_report_at(i, w * 60)).collect();
        assert_eq!(stream_reports(server.addr(), &reports, 2).unwrap(), 50);
        assert!(
            wait_until(Duration::from_secs(5), || server
                .budget_ledger()
                .and_then(|a| a.decided())
                .is_some_and(|d| d >= w)),
            "window {w} never decided"
        );
    }
    assert!(wait_until(Duration::from_secs(5), || !server
        .budget_refused_windows()
        .contains(&0)));
    assert!(
        server.budget_ledger().unwrap().decision(0).is_none(),
        "window 0 must have expired from the ledger for this test to bite"
    );
    // Late reports raise window 0's worst-case ε′ above its settled
    // 0.75: the surplus is unaccounted (the entry is gone, so nothing
    // can re-settle it), and the frozen-window rule must refuse the
    // window instead of letting it keep publishing.
    let late: Vec<Report> = (0..5).map(|i| toy_report_eps(i, 0, 0.9)).collect();
    assert_eq!(stream_reports(server.addr(), &late, 1).unwrap(), 5);
    assert!(
        wait_until(Duration::from_secs(5), || server
            .budget_refused_windows()
            .contains(&0)),
        "expired-but-live window escaped the frozen-refusal guard"
    );
    assert!(
        !server.budget_refused_windows().contains(&3),
        "in-horizon windows unaffected"
    );

    // Restart (graceful, so shard snapshots persist the spend mirrors):
    // the recovered books must re-refuse window 0 — its over-claiming
    // cohort is still in the ring — while in-horizon windows come back
    // unrefused.
    server.shutdown().unwrap();
    let server2 = IngestServer::start(cfg).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || server2
            .budget_refused_windows()
            .contains(&0)),
        "recovered books lost the frozen refusal across restart"
    );
    assert!(!server2.budget_refused_windows().contains(&3));
    server2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_frames_match_single_ingestion_and_recover_from_the_wal() {
    let (mut cfg, dir) = config("batched");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 4,
    };
    cfg.stream = Some(StreamServerConfig::new(window, Duration::from_millis(50)));
    let server = IngestServer::start(cfg.clone()).unwrap();

    // Timestamps cycle across windows so TSR4 frames straddle window
    // boundaries; the batched path must still aggregate bit-identically
    // to serial ingestion of the same stream.
    let reports: Vec<Report> = (0..2_000)
        .map(|i| toy_report_at(i, (i as u64 % 3) * 60))
        .collect();
    let acked = stream_reports_batched(server.addr(), &reports, 4, 128).unwrap();
    assert_eq!(acked, reports.len() as u64);
    assert_eq!(server.counts(), direct_counts(&reports));
    let mut expected = WindowedAggregator::new(vec![0u16; REGIONS], window);
    for r in &reports {
        expected.ingest(r);
    }
    assert_eq!(
        server.windowed_counts().unwrap().merged(),
        expected.merged()
    );

    // Crash without a final snapshot: recovery replays whole-batch WAL
    // records (one record per TSR4 frame) across a reshard.
    server.crash();
    let mut cfg2 = cfg.clone();
    cfg2.workers = 1;
    let server2 = IngestServer::start(cfg2).unwrap();
    assert_eq!(server2.recovery().recovered_reports, 2_000);
    assert_eq!(server2.counts(), direct_counts(&reports));
    assert_eq!(
        server2.windowed_counts().unwrap().merged(),
        expected.merged()
    );

    // And the recovered server keeps taking batches.
    let more: Vec<Report> = (0..300).map(|i| toy_report_at(i, 3 * 60)).collect();
    assert_eq!(
        stream_reports_batched(server2.addr(), &more, 2, 64).unwrap(),
        300
    );
    for r in &more {
        expected.ingest(r);
    }
    assert_eq!(
        server2.windowed_counts().unwrap().merged(),
        expected.merged()
    );
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_batch_frames_get_no_ack_and_keep_prior_batches() {
    let (cfg, dir) = config("batch-hostile");
    let server = IngestServer::start(cfg.clone()).unwrap();

    // A valid TSR4 frame is acked per-frame (cumulative count)...
    let good: Vec<Report> = (0..10).map(toy_report).collect();
    let batch = ReportBatch::from_reports(&good).unwrap();
    let mut frame = Vec::new();
    batch.encode_frame_into(&mut frame);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&frame).unwrap();
    let mut ack = [0u8; 8];
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(u64::from_le_bytes(ack), 10, "per-frame cumulative ack");

    // ...then the same frame with one flipped column byte: the CRC (or
    // column-sum) check rejects it, the connection drops, and no ack —
    // not even a repeated cumulative one — follows.
    let mut evil = frame.clone();
    let mid = evil.len() / 2;
    evil[mid] ^= 0x41;
    stream.write_all(&evil).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.stats().disconnected_protocol.load(Ordering::Relaxed) >= 1
        }),
        "corrupt batch frame did not drop the connection"
    );
    let mut byte = [0u8; 1];
    assert!(matches!(stream.read(&mut byte), Ok(0) | Err(_)));

    // A batch frame truncated by a clean half-close is mid-frame EOF:
    // protocol violation, no ack.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    assert!(matches!(stream.read(&mut ack), Ok(0) | Err(_)));
    assert!(wait_until(Duration::from_secs(5), || {
        server.stats().disconnected_protocol.load(Ordering::Relaxed) >= 2
    }));

    // The acked batch survived both hostile connections, exactly.
    assert_eq!(server.counts(), direct_counts(&good));
    server.crash();
    // The WAL holds exactly the acked batch (corrupt frames were never
    // appended): recovery reproduces it.
    let server2 = IngestServer::start(cfg).unwrap();
    assert_eq!(server2.recovery().recovered_reports, 10);
    assert_eq!(server2.counts(), direct_counts(&good));
    server2.crash();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gap_windows_behind_the_watermark_are_unaccountable() {
    let (mut cfg, dir) = config("budget-gap");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 6,
    };
    let mut stream_cfg = StreamServerConfig::new(window, Duration::from_millis(30));
    let budget_cfg = WindowBudgetConfig::new(eps_to_nano(3.0), 3, AllocationPolicy::Uniform);
    stream_cfg.budget = Some(budget_cfg);
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg).unwrap();

    // Window 3 arrives first and is decided...
    let ahead: Vec<Report> = (0..100).map(|i| toy_report_at(i, 3 * 60)).collect();
    assert_eq!(stream_reports(server.addr(), &ahead, 2).unwrap(), 100);
    assert!(wait_until(Duration::from_secs(5), || server
        .budget_ledger()
        .and_then(|a| a.decided())
        == Some(3)));
    // ...then reports land in the still-live gap window 1. It can never
    // be granted retroactively (allocation is monotonic), so its spend
    // is unaccountable: it must be refused, never silently published.
    let behind: Vec<Report> = (0..100).map(|i| toy_report_at(i, 60)).collect();
    assert_eq!(stream_reports(server.addr(), &behind, 2).unwrap(), 100);
    assert!(
        wait_until(Duration::from_secs(5), || server
            .budget_refused_windows()
            .contains(&1)),
        "gap window was never refused"
    );
    let ledger = server.budget_ledger().unwrap();
    assert!(ledger.decision(1).is_none(), "no retroactive grant");
    assert!(!ledger.decision(3).unwrap().refused, "window 3 unaffected");
    assert!(server.stats().budget_refusals.load(Ordering::Relaxed) >= 1);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grant_session_closes_the_loop_with_zero_refusals() {
    let (mut cfg, dir) = config("grant-loop");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 8,
    };
    let mut stream_cfg = StreamServerConfig::new(window, Duration::from_millis(30));
    // Uniform keeps every grant at the deterministic total/horizon
    // share; the adaptive bootstrap would legally grant window 0 the
    // whole budget (cold start = full divergence) and the loop would
    // then follow ε′ = 0 windows — sound, but a weaker assertion.
    stream_cfg.budget = Some(WindowBudgetConfig::new(
        eps_to_nano(4.0),
        4,
        AllocationPolicy::Uniform,
    ));
    stream_cfg.grants = true;
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg).unwrap();

    // Closed loop: wait for each window's announced ε′, randomize the
    // cohort at exactly that rate, stream it, move to the next window.
    let mut client = trajshare_service::GrantClient::connect(server.addr()).unwrap();
    let mut sent = 0u64;
    let mut min_window = 0u64;
    let mut granted = Vec::new();
    for _ in 0..3 {
        let g = client
            .wait_grant(min_window, Duration::from_secs(10))
            .unwrap()
            .expect("grant before timeout");
        assert_eq!(
            g.granted_nano,
            eps_to_nano(4.0) / 4,
            "uniform grants are exactly the per-window share"
        );
        let g_eps = trajshare_aggregate::nano_to_eps(g.granted_nano);
        let slice: Vec<Report> = (0..40)
            .map(|i| toy_report_eps(i, g.window * 60 + (i as u64 % 60), g_eps))
            .collect();
        client
            .send(&trajshare_service::encode_wire(&slice, 8))
            .unwrap();
        sent += 40;
        granted.push(g);
        min_window = g.window + 1;
    }
    let (acked, grants_seen) = client.finish().unwrap();
    assert_eq!(acked, sent, "framed TSAK acks certify the same durability");
    assert!(grants_seen.len() >= 3);
    for pair in grants_seen.windows(2) {
        assert!(pair[1].epoch > pair[0].epoch, "epochs strictly increase");
        assert!(pair[1].window > pair[0].window, "windows strictly increase");
    }

    // Settlement observes spend == grant for every filled window: the
    // refusal path is the exception path, asserted exactly zero.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let h = server.budget_grant_history();
            granted
                .iter()
                .all(|g| h.iter().any(|r| r.window == g.window && !r.refused))
        }),
        "filled windows never settled cleanly"
    );
    assert!(server.budget_refused_windows().is_empty());
    assert_eq!(server.stats().budget_refusals.load(Ordering::Relaxed), 0);
    assert_eq!(
        server.stats().grant_subscriptions.load(Ordering::Relaxed),
        1
    );
    assert!(server.stats().grants_published.load(Ordering::Relaxed) >= 3);
    for g in &granted {
        let r = server
            .budget_grant_history()
            .into_iter()
            .rev()
            .find(|r| r.window == g.window)
            .expect("history holds every announced grant");
        assert_eq!(r.granted_nano, g.granted_nano);
        assert!(r.settled_nano <= r.granted_nano, "spend bounded by grant");
    }
    let ledger = server.budget_ledger().unwrap();
    assert!(ledger.sliding_spend_nano() <= eps_to_nano(4.0));
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn late_joiner_catches_up_on_the_standing_grant() {
    let (mut cfg, dir) = config("grant-late");
    let window = WindowConfig {
        window_len: 60,
        num_windows: 4,
    };
    let mut stream_cfg = StreamServerConfig::new(window, Duration::from_millis(20));
    stream_cfg.budget = Some(WindowBudgetConfig::new(
        eps_to_nano(2.0),
        4,
        AllocationPolicy::Uniform,
    ));
    stream_cfg.grants = true;
    cfg.stream = Some(stream_cfg);
    let server = IngestServer::start(cfg).unwrap();

    // Let the maintenance thread publish the bootstrap grant before any
    // client exists.
    assert!(wait_until(Duration::from_secs(5), || server
        .latest_grant()
        .is_some()));
    let standing = server.latest_grant().unwrap();

    // A connection subscribing *after* the announcement still gets the
    // current grant immediately (the board's catch-up write), not at
    // the next rollover.
    let mut client = trajshare_service::GrantClient::connect(server.addr()).unwrap();
    let g = client
        .wait_grant(0, Duration::from_secs(5))
        .unwrap()
        .expect("late joiner sees the standing grant");
    assert_eq!(g, standing);

    // A grant session that streams nothing still gets the framed EOF
    // ack (cumulative 0) on half-close.
    let (acked, grants_seen) = client.finish().unwrap();
    assert_eq!(acked, 0);
    assert!(!grants_seen.is_empty());
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hello_to_a_grantless_server_is_a_protocol_violation() {
    // Subscribing against a server that runs no grant session must be
    // refused by dropping the connection — not silently accepted with
    // grants that will never come.
    let (cfg, dir) = config("grant-off");
    let server = IngestServer::start(cfg).unwrap();
    let mut client = trajshare_service::GrantClient::connect(server.addr()).unwrap();
    let err = match client.wait_grant(0, Duration::from_secs(5)) {
        Err(e) => e,
        Ok(g) => panic!("grantless server produced {g:?}"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Durable streaming ingestion for population-scale LDP reports.
//!
//! `trajshare_aggregate` answers *"how do millions of ε-LDP reports fold
//! into counters?"* for in-memory batches; this crate puts a network and
//! a disk in front of it, following the collector architecture of
//! LDPTrace and RetraSyn: the aggregator is a long-running server on an
//! untrusted machine, fed by millions of devices it must assume are
//! adversarial, and it must survive restarts without losing or double
//! counting a single report.
//!
//! * [`server`] — the TCP ingestion server: length-prefixed frames of
//!   `Report::encode`, a thread-pool over bounded channels, explicit
//!   backpressure, per-shard aggregation, WAL-then-count durability,
//!   and (optionally) the real-time sliding-window workload: per-shard
//!   window rings over timestamped reports, a publication thread, and
//!   size-triggered online WAL compaction.
//! * [`storage`] — write-ahead logs (with a configurable fsync policy),
//!   per-shard counter + ring files, the generation manifest, and
//!   snapshot + log-tail recovery that restores totals *and* the window
//!   ring bit-identically.
//! * [`client`] — the streaming client used by `loadgen`, benches, and
//!   tests; its ack protocol certifies durability, not just delivery.
//!
//! Binaries: `ingestd` (the server; `--dump-counts` prints a recovered
//! state fingerprint) and `loadgen` (deterministic report generator +
//! streamer for smoke tests and load measurements).

pub mod client;
pub mod server;
pub mod storage;

pub use client::{
    encode_frames, encode_wire, encode_wire_multi, stream_bytes_once, stream_frames_once,
    stream_once, stream_once_batched, stream_reports, stream_reports_batched, stream_reports_multi,
    stream_reports_multi_batched, stream_wires, EncodedFrame, GrantClient,
};
pub use server::{
    BudgetPublication, CountsSummary, IngestProfile, IngestProfileSnapshot, IngestServer,
    RecoverySummary, ServerConfig, ServerHandle, ServerStats, StreamPublication,
    StreamServerConfig,
};
pub use storage::{
    load, lock_dir, recover, replay_wal, Recovery, ReplayStats, SyncPolicy, WalWriter,
};

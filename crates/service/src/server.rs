//! The long-running ingestion server.
//!
//! Architecture (all `std::net` + OS threads — no async runtime is
//! reachable offline, and a thread-per-worker accept/worker pool is the
//! right shape for a CPU-light, syscall-bound byte funnel anyway):
//!
//! ```text
//!            ┌────────────┐   bounded channel    ┌──────────────────┐
//!  clients ─▶│  acceptor  │──(conns; try_send)──▶│ worker 0..N-1    │
//!            └────────────┘     full ⇒ refuse    │  shard Aggregator│
//!                                                │  shard WAL       │
//!                                                └──────────────────┘
//! ```
//!
//! * **Backpressure** is explicit at two levels: the bounded connection
//!   queue (a full queue means new connections are closed immediately —
//!   shed, not buffered), and TCP itself (a worker busy ingesting stops
//!   reading, so the client's sends block). A client that stalls
//!   mid-frame past `read_timeout` is disconnected (slow-reader guard).
//! * **Sharding**: each worker owns one [`Aggregator`] shard and one
//!   write-ahead log; totals are merged on demand ([`ServerHandle::counts`])
//!   — counters are plain sums, so shard count and scheduling never
//!   change the result.
//! * **Durability**: every validated report is appended to the worker's
//!   WAL before it is counted, and the WAL is flushed before a
//!   connection is acked, so an acked report survives any process kill.
//!   Workers snapshot their counters every `snapshot_every` reports;
//!   restart recovery = base + shard snapshots + log tails (see
//!   [`crate::storage`]).
//!
//! Protocol: the client streams [`Report::encode_frame`] frames, then
//! shuts down its write half; the server ingests to EOF, flushes the
//! WAL, and replies with the number of accepted reports as a `u64` LE
//! ack before closing.

use crate::storage::{self, Recovery, WalWriter};
use crossbeam::channel::{self, RecvTimeoutError, TrySendError};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use trajshare_aggregate::snapshot::crc32;
use trajshare_aggregate::{AggregateCounts, Aggregator, Report, StreamDecoder};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: SocketAddr,
    /// Directory for logs, counter snapshots, and the manifest.
    pub data_dir: PathBuf,
    /// Public per-region hour tiles; its length is the universe size
    /// (`trajshare_aggregate::region_tiles` derives it from a
    /// `RegionSet`).
    pub region_tiles: Vec<u16>,
    /// Worker threads = ingestion shards.
    pub workers: usize,
    /// Pending-connection queue depth; a full queue refuses connections.
    pub queue_depth: usize,
    /// Reports a shard ingests between counter-snapshot writes.
    pub snapshot_every: u64,
    /// WAL records buffered between automatic flushes.
    pub wal_flush_every: u32,
    /// Socket read timeout — a client stalling longer is disconnected.
    pub read_timeout: Duration,
}

impl ServerConfig {
    /// Sensible defaults for loopback deployments and tests.
    pub fn new(data_dir: impl Into<PathBuf>, region_tiles: Vec<u16>) -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            data_dir: data_dir.into(),
            region_tiles,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            queue_depth: 64,
            snapshot_every: 10_000,
            wal_flush_every: 64,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Monotonic event counters, shared across all server threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections handed to a worker.
    pub accepted: AtomicU64,
    /// Connections closed immediately because the queue was full.
    pub refused: AtomicU64,
    /// Connections that streamed to EOF and were acked.
    pub completed: AtomicU64,
    /// Connections dropped by the slow-reader timeout.
    pub disconnected_slow: AtomicU64,
    /// Connections dropped for protocol violations (bad magic, oversized
    /// or inconsistent frames, trailing garbage).
    pub disconnected_protocol: AtomicU64,
    /// Reports validated, logged, and counted.
    pub reports_ingested: AtomicU64,
    /// Connections dropped by I/O errors (socket or WAL).
    pub io_errors: AtomicU64,
}

impl ServerStats {
    fn bump(&self, field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }
}

/// One worker's mutable state: its counter shard and its WAL. The mutex
/// is held per report by the owning worker and briefly by merge-on-demand
/// readers ([`ServerHandle::counts`]) and shutdown.
struct Shard {
    agg: Aggregator,
    wal: WalWriter,
    counts_path: PathBuf,
    since_snapshot: u64,
    snapshot_every: u64,
}

impl Shard {
    /// WAL-then-count ingestion of one validated report. `payload` is the
    /// exact wire payload (already validated by decode), logged verbatim.
    fn ingest(&mut self, report: &Report, payload: &[u8]) -> std::io::Result<()> {
        self.wal.append(payload)?;
        self.agg.ingest(report);
        self.since_snapshot += 1;
        if self.since_snapshot >= self.snapshot_every {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Flushes the WAL and atomically persists the shard counters with
    /// the log offset they cover.
    fn snapshot(&mut self) -> std::io::Result<()> {
        self.wal.flush()?;
        storage::write_shard_counts(&self.counts_path, self.agg.counts(), self.wal.offset())?;
        self.since_snapshot = 0;
        Ok(())
    }
}

/// The running server: owns its threads; query or stop it through this.
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    base: AggregateCounts,
    shards: Vec<Arc<Mutex<Shard>>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    recovery: RecoverySummary,
    /// Exclusive data-dir lock, held for the server's lifetime so no
    /// other process can recover/compact the directory underneath it.
    _dir_lock: std::fs::File,
}

/// What recovery found at startup (surfaced for operators and tests).
#[derive(Debug, Clone, Serialize)]
pub struct RecoverySummary {
    /// The file generation this run writes.
    pub generation: u64,
    /// Reports recovered by log replay (beyond snapshots).
    pub replayed_reports: u64,
    /// Shards whose previous log ended in a torn record.
    pub torn_tails: u64,
    /// Total reports in the recovered base counters.
    pub recovered_reports: u64,
}

/// Marker type for [`IngestServer::start`].
pub struct IngestServer;

impl IngestServer {
    /// Recovers durable state from `config.data_dir`, binds the listener,
    /// and spawns the acceptor and worker threads.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(!config.region_tiles.is_empty(), "empty region universe");
        let dir_lock = storage::lock_dir(&config.data_dir)?;
        let Recovery {
            counts: base,
            gen,
            replayed_reports,
            torn_tails,
        } = storage::recover_locked(&config.data_dir, &config.region_tiles)?;
        let recovery = RecoverySummary {
            generation: gen,
            replayed_reports,
            torn_tails,
            recovered_reports: base.num_reports,
        };

        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::bounded::<TcpStream>(config.queue_depth);

        let mut shards = Vec::with_capacity(config.workers);
        let mut threads = Vec::with_capacity(config.workers + 1);
        for i in 0..config.workers {
            let shard = Arc::new(Mutex::new(Shard {
                agg: Aggregator::from_region_tiles(config.region_tiles.clone()),
                wal: WalWriter::create(
                    &storage::wal_path(&config.data_dir, gen, i),
                    config.wal_flush_every,
                )?,
                counts_path: storage::shard_counts_path(&config.data_dir, gen, i),
                since_snapshot: 0,
                snapshot_every: config.snapshot_every.max(1),
            }));
            shards.push(Arc::clone(&shard));
            let rx = rx.clone();
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let read_timeout = config.read_timeout;
            threads.push(std::thread::spawn(move || {
                worker_loop(rx, shard, stats, stop, read_timeout)
            }));
        }
        drop(rx);

        {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                acceptor_loop(listener, tx, stats, stop)
            }));
        }

        Ok(ServerHandle {
            addr,
            stats,
            base,
            shards,
            stop,
            threads,
            recovery,
            _dir_lock: dir_lock,
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live event counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// What startup recovery reconstructed.
    pub fn recovery(&self) -> &RecoverySummary {
        &self.recovery
    }

    /// Merge-on-demand total: recovered base plus every live shard.
    pub fn counts(&self) -> AggregateCounts {
        let mut total = self.base.clone();
        for shard in &self.shards {
            total.merge(shard.lock().unwrap().agg.counts());
        }
        total
    }

    /// Graceful stop: refuse new connections, join all threads, persist a
    /// final snapshot of every shard, and return the final counters.
    pub fn shutdown(mut self) -> std::io::Result<AggregateCounts> {
        self.stop_threads();
        for shard in &self.shards {
            shard.lock().unwrap().snapshot()?;
        }
        Ok(self.counts())
    }

    /// Abrupt stop for crash-recovery tests: threads are stopped but *no*
    /// final snapshot is written — recovery must reconstruct the tail
    /// from the WAL alone, exactly as after a SIGKILL.
    pub fn crash(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    tx: channel::Sender<TcpStream>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => stats.bump(&stats.accepted),
                // Queue full: shed the connection immediately (the stream
                // drops ⇒ RST/close) instead of buffering unboundedly.
                Err(TrySendError::Full(_)) => stats.bump(&stats.refused),
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(
    rx: channel::Receiver<TcpStream>,
    shard: Arc<Mutex<Shard>>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
) {
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(stream) => handle_conn(stream, &shard, &stats, &stop, read_timeout),
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Reads one client stream to EOF, ingesting every framed report, then
/// flushes the WAL and acks. Any protocol violation or stall drops the
/// connection without an ack.
fn handle_conn(
    mut stream: TcpStream,
    shard: &Mutex<Shard>,
    stats: &ServerStats,
    stop: &AtomicBool,
    read_timeout: Duration,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() || stream.set_nodelay(true).is_err() {
        stats.bump(&stats.io_errors);
        return;
    }
    let mut decoder = StreamDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut accepted = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            let _ = shard.lock().unwrap().wal.flush();
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: make everything durable first (already-validated
                // reports stand regardless of how the stream ended).
                if shard.lock().unwrap().wal.flush().is_err() {
                    stats.bump(&stats.io_errors);
                    return;
                }
                // A stream that ends mid-frame is a protocol violation,
                // not a completed upload: no ack, so the client cannot
                // mistake a truncated send for full durability.
                if decoder.pending() > 0 {
                    stats.bump(&stats.disconnected_protocol);
                    return;
                }
                if stream.write_all(&accepted.to_le_bytes()).is_err() {
                    stats.bump(&stats.io_errors);
                    return;
                }
                let _ = stream.shutdown(Shutdown::Both);
                stats.bump(&stats.completed);
                return;
            }
            Ok(n) => {
                decoder.extend(&chunk[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some((report, payload))) => {
                            if shard.lock().unwrap().ingest(&report, payload).is_err() {
                                stats.bump(&stats.io_errors);
                                return;
                            }
                            accepted += 1;
                            stats.bump(&stats.reports_ingested);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Hostile or corrupt stream: drop it. Reports
                            // already ingested stay — each frame is an
                            // independent, validated LDP message.
                            stats.bump(&stats.disconnected_protocol);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                stats.bump(&stats.disconnected_slow);
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                stats.bump(&stats.io_errors);
                return;
            }
        }
    }
}

/// A compact, JSON-serializable fingerprint of a counter set — what the
/// `ingestd --dump-counts` CLI prints so operators (and the CI smoke
/// test) can verify restored state. `snapshot_crc32` covers every counter
/// byte, so two equal fingerprints mean bit-identical counters.
#[derive(Debug, Clone, Serialize)]
pub struct CountsSummary {
    /// Universe size.
    pub num_regions: usize,
    /// Reports folded in.
    pub num_reports: u64,
    /// Unigram observations folded in.
    pub num_unigrams: u64,
    /// Observations rejected as malformed/hostile.
    pub rejected: u64,
    /// Σ ε′ over reports, nano-ε.
    pub eps_nano_sum: u64,
    /// Σ occupancy counters.
    pub total_occupancy: u64,
    /// Σ transition counters.
    pub total_transitions: u64,
    /// CRC-32 of the full snapshot encoding — a bit-exact fingerprint.
    pub snapshot_crc32: u32,
}

impl CountsSummary {
    /// Fingerprints `counts`.
    pub fn of(counts: &AggregateCounts) -> Self {
        CountsSummary {
            num_regions: counts.num_regions,
            num_reports: counts.num_reports,
            num_unigrams: counts.num_unigrams,
            rejected: counts.rejected,
            eps_nano_sum: counts.eps_nano_sum,
            total_occupancy: counts.occupancy.iter().sum(),
            total_transitions: counts.transitions.iter().sum(),
            snapshot_crc32: crc32(&counts.encode_snapshot()),
        }
    }
}

//! The long-running ingestion server.
//!
//! Architecture (all `std::net` + OS threads — no async runtime is
//! reachable offline, and a thread-per-worker accept/worker pool is the
//! right shape for a CPU-light, syscall-bound byte funnel anyway):
//!
//! ```text
//!            ┌────────────┐   bounded channel    ┌──────────────────┐
//!  clients ─▶│  acceptor  │──(conns; try_send)──▶│ worker 0..N-1    │
//!            └────────────┘     full ⇒ refuse    │  shard Aggregator│
//!                                                │  shard WAL       │
//!                                                └──────────────────┘
//! ```
//!
//! * **Backpressure** is explicit at two levels: the bounded connection
//!   queue (a full queue means new connections are closed immediately —
//!   shed, not buffered), and TCP itself (a worker busy ingesting stops
//!   reading, so the client's sends block). A client that stalls
//!   mid-frame past `read_timeout` is disconnected (slow-reader guard).
//! * **Sharding**: each worker owns one [`Aggregator`] shard and one
//!   write-ahead log; totals are merged on demand ([`ServerHandle::counts`])
//!   — counters are plain sums, so shard count and scheduling never
//!   change the result.
//! * **Durability**: every validated report is appended to the worker's
//!   WAL before it is counted, and the WAL is flushed before a
//!   connection is acked, so an acked report survives any process kill
//!   (OS-crash durability is a [`SyncPolicy`] choice — see
//!   [`crate::storage::SyncPolicy`]). Workers snapshot their counters
//!   every `snapshot_every` reports; restart recovery = base + shard
//!   snapshots + log tails (see [`crate::storage`]).
//! * **Streaming** (optional, [`ServerConfig::stream`]): each shard also
//!   maintains a sliding-window ring over report timestamps; a
//!   maintenance thread publishes the merged window view every
//!   `publish_every` and the ring is persisted/recovered alongside the
//!   totals.
//! * **Bounded disk**: the same maintenance thread compacts online when
//!   any shard's WAL passes `wal_max_bytes` — current totals become the
//!   next generation's base, fresh logs are started, the manifest flip
//!   commits, and the old generation is deleted; WAL disk usage between
//!   restarts is therefore bounded instead of unbounded.
//! * **Budget accounting** (optional, [`StreamServerConfig::budget`]):
//!   the maintenance thread runs a
//!   [`trajshare_aggregate::WindowBudgetAccountant`] over the published
//!   windows — every window gets an ε grant under the configured
//!   allocation policy, over-claiming windows are refused (excluded from
//!   [`ServerHandle::estimate_window_model`]), and the ledger is
//!   persisted on every decision so *"Σ published spend over any `w`
//!   consecutive windows ≤ ε"* holds across kill/restart.
//!
//! Protocol: the client streams [`Report::encode_frame`] frames (and/or
//! `TSR4` batch frames, [`trajshare_aggregate::batch`]), then shuts down
//! its write half; the server ingests to EOF, flushes the WAL, and
//! replies with the number of accepted reports as a `u64` LE ack before
//! closing. Batch frames are additionally acked mid-stream with the
//! same cumulative `u64` — one ack per drained read round, written
//! after every batch in the round flushed its WAL record, so an acked
//! batch is durable and a client that dies mid-stream re-sends at most
//! one read round's worth of batches. Connections carrying only
//! single-report frames stay byte-identical to the pre-batch protocol:
//! one ack, at EOF.

use crate::storage::{self, Recovery, SyncPolicy, WalWriter};
use crossbeam::channel::{self, RecvTimeoutError, TrySendError};
use serde::Serialize;
use std::collections::BTreeSet;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trajshare_aggregate::clusterproto::{
    read_cluster_frame, write_cluster_frame, ClusterFrame, WorkerSnapshot,
};
use trajshare_aggregate::grant;
use trajshare_aggregate::snapshot::crc32;
use trajshare_aggregate::{
    window_divergence, AggregateCounts, Aggregator, EstimatorBackend, GrantBoard, GrantFrame,
    GrantRecord, GrantSubscriber, MobilityModel, Report, ReportBatch, StreamDecoder,
    StreamingEstimator, WindowBudgetAccountant, WindowBudgetConfig, WindowConfig,
    WindowedAggregator, WireFrame,
};
use trajshare_core::RegionGraph;

/// Streaming (sliding-window) options for a server instance.
#[derive(Debug, Clone)]
pub struct StreamServerConfig {
    /// Window length / ring depth over `Report::t`.
    pub window: WindowConfig,
    /// How often the maintenance thread publishes the merged window view.
    pub publish_every: Duration,
    /// Stamp report timestamps at the collector edge (server clock,
    /// seconds since the Unix epoch) instead of trusting the
    /// client-declared `t`. The stamped encoding is what reaches the WAL,
    /// so recovery reproduces the stamped windows. For deployments that
    /// cannot trust device clocks; `window_len` is then in seconds.
    pub server_clock: bool,
    /// How many windows a single connection may advance the shard's
    /// watermark in total. A hostile far-future timestamp would otherwise
    /// evict every live window in one report; with a budget, reports that
    /// would overdraw it are refused (counted in
    /// [`ServerStats::watermark_throttled`], never acked, never logged).
    /// `u64::MAX` (the historical behavior) disables the limit. Polices
    /// *client-declared* timestamps only — with `server_clock` the stamp
    /// is the server's own and bypasses the budget — and only while the
    /// shard's ring holds live reports: advancing an empty ring evicts
    /// nothing and is free, so epoch-stamping clients can reach "now"
    /// from a cold start. The budget bounds eviction of live data; it
    /// cannot authenticate absolute time (that is `server_clock`'s job).
    pub max_conn_advance: u64,
    /// Kernel backend for window-model estimation
    /// ([`ServerHandle::estimate_window_model`]); embedded deployments
    /// with a region graph flip the whole estimation chain here.
    pub backend: EstimatorBackend,
    /// Streaming privacy-budget enforcement: a `w`-window ε contract the
    /// publication thread accounts per window
    /// ([`trajshare_aggregate::WindowBudgetAccountant`]). Each window is
    /// granted a share under the configured allocation policy; a window
    /// whose cohort's worst (max) per-report ε′ exceeds its grant is
    /// **refused** — excluded from [`ServerHandle::estimate_window_model`] and
    /// counted in [`ServerStats::budget_refusals`]. The ledger is
    /// persisted (`BUDGET` file) on every decision, so the invariant
    /// *"over any `w` consecutive windows, published spend ≤ ε"*
    /// survives kill/restart. `None` (the historical behavior) publishes
    /// without accounting.
    pub budget: Option<WindowBudgetConfig>,
    /// Close the budget loop: run the **grant session**. The maintenance
    /// thread pre-allocates the *next* window's ε′ at every publication
    /// tick and broadcasts it as a `TSGB` frame down every connection
    /// that opted in with a `TSGH` hello (late joiners get the current
    /// grant the moment they subscribe). Honest clients then randomize
    /// at exactly the granted ε′, so settlement observes spend == grant
    /// and refusals become the exception path. Requires `budget` on a
    /// single node (a cluster worker instead relays the coordinator's
    /// grants arriving over the `TSCL` export listener, so `grants`
    /// without `budget` is meaningful there). Off by default — existing
    /// deployments keep the one-way protocol byte for byte.
    pub grants: bool,
    /// Region universe for the divergence signal. With a graph, the
    /// allocator's change detector runs RetraSyn-style significance
    /// testing over *debiased* per-window posteriors (invert the EM
    /// channel at the window's mean ε′, then compare IBU frequency
    /// estimates) instead of raw perturbed occupancy — raw counts are
    /// flattened toward uniform by the channel, which mutes real shifts
    /// at small ε and can hallucinate shifts when ε′ itself changes
    /// between windows. Without a graph the significance test runs on
    /// normalized raw occupancy (noise-floor-gated, but channel-biased).
    pub graph: Option<Arc<RegionGraph>>,
}

impl StreamServerConfig {
    /// Streaming options with the historical defaults: client-declared
    /// timestamps, no advance limit, dense estimation, no budget
    /// accounting.
    pub fn new(window: WindowConfig, publish_every: Duration) -> Self {
        StreamServerConfig {
            window,
            publish_every,
            server_clock: false,
            max_conn_advance: u64::MAX,
            backend: EstimatorBackend::default(),
            budget: None,
            grants: false,
            graph: None,
        }
    }
}

/// The per-connection slice of the streaming options `handle_conn`
/// enforces (everything else is the maintenance thread's business).
#[derive(Debug, Clone, Copy)]
struct StreamIngestPolicy {
    server_clock: bool,
    max_conn_advance: u64,
}

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: SocketAddr,
    /// Directory for logs, counter snapshots, and the manifest.
    pub data_dir: PathBuf,
    /// Public per-region hour tiles; its length is the universe size
    /// (`trajshare_aggregate::region_tiles` derives it from a
    /// `RegionSet`).
    pub region_tiles: Vec<u16>,
    /// Worker threads = ingestion shards.
    pub workers: usize,
    /// Pending-connection queue depth; a full queue refuses connections.
    pub queue_depth: usize,
    /// Reports a shard ingests between counter-snapshot writes.
    pub snapshot_every: u64,
    /// WAL records buffered between automatic flushes.
    pub wal_flush_every: u32,
    /// When the WAL forces data to stable storage (OS-crash durability);
    /// the default, [`SyncPolicy::Never`], matches the original
    /// kernel-flush-only behavior.
    pub sync_policy: SyncPolicy,
    /// Online-compaction trigger: when any shard's WAL exceeds this many
    /// bytes, the maintenance thread folds everything into a fresh
    /// generation and truncates the logs. `u64::MAX` disables.
    pub wal_max_bytes: u64,
    /// Sliding-window streaming; `None` runs the batch-archive shape.
    pub stream: Option<StreamServerConfig>,
    /// Socket read timeout — a client stalling longer is disconnected.
    pub read_timeout: Duration,
    /// Cluster snapshot-export listener (`TSCL` protocol): a coordinator
    /// connects here and pulls the worker's merged counter + ring state
    /// (see `trajshare_aggregate::clusterproto`). `None` (the default)
    /// runs no export listener — single-node deployments ship nothing.
    pub export_addr: Option<SocketAddr>,
    /// Per-stage cost profiling of the batched ingest hot path
    /// ([`ServerHandle::ingest_profile`]). Off (the default) costs
    /// nothing: the hot path never reads a clock — every timing call
    /// sits behind this flag's `Option`.
    pub profile: bool,
}

impl ServerConfig {
    /// Sensible defaults for loopback deployments and tests.
    pub fn new(data_dir: impl Into<PathBuf>, region_tiles: Vec<u16>) -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            data_dir: data_dir.into(),
            region_tiles,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            queue_depth: 64,
            snapshot_every: 10_000,
            wal_flush_every: 64,
            sync_policy: SyncPolicy::Never,
            wal_max_bytes: 1 << 30,
            stream: None,
            read_timeout: Duration::from_secs(30),
            export_addr: None,
            profile: false,
        }
    }
}

/// Monotonic event counters, shared across all server threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections handed to a worker.
    pub accepted: AtomicU64,
    /// Connections closed immediately because the queue was full.
    pub refused: AtomicU64,
    /// Connections that streamed to EOF and were acked.
    pub completed: AtomicU64,
    /// Connections dropped by the slow-reader timeout.
    pub disconnected_slow: AtomicU64,
    /// Connections dropped for protocol violations (bad magic, oversized
    /// or inconsistent frames, trailing garbage).
    pub disconnected_protocol: AtomicU64,
    /// Reports validated, logged, and counted.
    pub reports_ingested: AtomicU64,
    /// Reports refused because accepting them would advance the window
    /// watermark past the connection's advance budget (streaming only;
    /// see [`StreamServerConfig::max_conn_advance`]). Not logged, not
    /// counted, not acked.
    pub watermark_throttled: AtomicU64,
    /// Connections dropped by I/O errors (socket or WAL).
    pub io_errors: AtomicU64,
    /// Sliding-window publications emitted by the maintenance thread.
    pub publications: AtomicU64,
    /// Per-window budget allocations decided by the publication thread
    /// (streaming deployments with [`StreamServerConfig::budget`]).
    pub budget_decisions: AtomicU64,
    /// Windows refused by the budget accountant (observed cohort spend
    /// exceeded the window's grant); their data is excluded from
    /// published model estimates.
    pub budget_refusals: AtomicU64,
    /// Cluster snapshots served over the `TSCL` export listener
    /// ([`ServerConfig::export_addr`]).
    pub snapshots_shipped: AtomicU64,
    /// Distinct `TSGB` grants announced on this node's grant board —
    /// allocated locally by the maintenance thread
    /// ([`StreamServerConfig::grants`]) or relayed by a coordinator over
    /// the `TSCL` export listener.
    pub grants_published: AtomicU64,
    /// Connections that opted into the grant session with a `TSGH`
    /// subscribe hello.
    pub grant_subscriptions: AtomicU64,
    /// Online WAL compactions (generation bumps while live).
    pub compactions: AtomicU64,
    /// Online compactions that failed (retried after a backoff).
    pub compaction_failures: AtomicU64,
}

impl ServerStats {
    fn bump(&self, field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-stage wall-clock accounting of the batched (`TSR4`) ingest hot
/// path, summed across all workers. Only allocated when
/// [`ServerConfig::profile`] is set — with it off the connection
/// handlers never read a clock, so profiling support costs the hot path
/// nothing (one `Option` test per batch, resolved by branch prediction).
#[derive(Debug, Default)]
pub struct IngestProfile {
    /// Filling column scratch from validated payload bytes.
    pub decode_ns: AtomicU64,
    /// Frame CRC + header + column-structure validation.
    pub validate_ns: AtomicU64,
    /// WAL append + flush (and any counter-snapshot writes they force).
    pub wal_ns: AtomicU64,
    /// Counter accumulation: shard totals plus the window ring.
    pub accumulate_ns: AtomicU64,
    /// Writing cumulative acks back to clients.
    pub ack_ns: AtomicU64,
    /// Batch frames profiled.
    pub batches: AtomicU64,
    /// Reports inside those batches.
    pub reports: AtomicU64,
}

impl IngestProfile {
    /// A consistent-enough copy of the live counters (each field is read
    /// atomically; the set is not a snapshot of one instant, which is
    /// fine for a monotonically growing profile).
    pub fn snapshot(&self) -> IngestProfileSnapshot {
        IngestProfileSnapshot {
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            validate_ns: self.validate_ns.load(Ordering::Relaxed),
            wal_ns: self.wal_ns.load(Ordering::Relaxed),
            accumulate_ns: self.accumulate_ns.load(Ordering::Relaxed),
            ack_ns: self.ack_ns.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            reports: self.reports.load(Ordering::Relaxed),
        }
    }
}

/// Plain-number view of [`IngestProfile`], serializable for bench
/// reports and CLI dumps.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IngestProfileSnapshot {
    /// See [`IngestProfile::decode_ns`].
    pub decode_ns: u64,
    /// See [`IngestProfile::validate_ns`].
    pub validate_ns: u64,
    /// See [`IngestProfile::wal_ns`].
    pub wal_ns: u64,
    /// See [`IngestProfile::accumulate_ns`].
    pub accumulate_ns: u64,
    /// See [`IngestProfile::ack_ns`].
    pub ack_ns: u64,
    /// See [`IngestProfile::batches`].
    pub batches: u64,
    /// See [`IngestProfile::reports`].
    pub reports: u64,
}

/// One worker's mutable state: its counter shard, its window ring (when
/// streaming), and its WAL. The mutex is held per report by the owning
/// worker and briefly by merge-on-demand readers
/// ([`ServerHandle::counts`]), the maintenance thread, and shutdown.
struct Shard {
    agg: Aggregator,
    ring: Option<WindowedAggregator>,
    wal: WalWriter,
    counts_path: PathBuf,
    since_snapshot: u64,
    snapshot_every: u64,
}

impl Shard {
    /// WAL-then-count ingestion of one validated report. `payload` is the
    /// exact wire payload (already validated by decode), logged verbatim.
    fn ingest(&mut self, report: &Report, payload: &[u8]) -> std::io::Result<()> {
        self.wal.append(payload)?;
        self.agg.ingest(report);
        if let Some(ring) = &mut self.ring {
            ring.ingest(report);
        }
        self.since_snapshot += 1;
        if self.since_snapshot >= self.snapshot_every {
            self.snapshot()?;
        }
        Ok(())
    }

    /// WAL-then-count ingestion of one validated `TSR4` batch: the whole
    /// batch payload becomes a single group-commit-aligned WAL record
    /// (reusing the CRC frame validation already computed), the counters
    /// are fed column-wise, and the WAL is flushed before returning —
    /// the caller acks the batch right after, and an acked batch must be
    /// durable.
    fn ingest_batch(
        &mut self,
        batch: &ReportBatch,
        payload: &[u8],
        payload_crc: u32,
        profile: Option<&IngestProfile>,
    ) -> std::io::Result<()> {
        let t0 = profile.map(|_| Instant::now());
        self.wal.append_with_crc(payload, payload_crc)?;
        let t1 = profile.map(|_| Instant::now());
        self.agg.ingest_columnar(batch);
        if let Some(ring) = &mut self.ring {
            ring.ingest_batch(batch);
        }
        let t2 = profile.map(|_| Instant::now());
        self.since_snapshot += batch.num_reports() as u64;
        if self.since_snapshot >= self.snapshot_every {
            self.snapshot()?;
        }
        let flushed = self.wal.flush();
        if let (Some(p), Some(t0), Some(t1), Some(t2)) = (profile, t0, t1, t2) {
            // WAL time = append + flush (+ any snapshot the flush rode
            // with); accumulate time = the counter/ring window between.
            let wal = t1.duration_since(t0) + t2.elapsed();
            p.wal_ns.fetch_add(wal.as_nanos() as u64, Ordering::Relaxed);
            p.accumulate_ns
                .fetch_add(t2.duration_since(t1).as_nanos() as u64, Ordering::Relaxed);
        }
        flushed
    }

    /// Flushes the WAL and atomically persists the shard counters (and
    /// window ring) with the log offset they cover.
    fn snapshot(&mut self) -> std::io::Result<()> {
        self.wal.flush()?;
        let ring_blob = self.ring.as_ref().map(|r| r.encode_ring());
        storage::write_shard_counts(
            &self.counts_path,
            self.agg.counts(),
            self.wal.offset(),
            ring_blob.as_deref(),
        )?;
        self.since_snapshot = 0;
        Ok(())
    }
}

/// The recovered-and-compacted state every live total builds on. `gen`
/// moves when the maintenance thread compacts online; lock order is
/// always base → shards (in index order) for any multi-lock path.
struct BaseState {
    counts: AggregateCounts,
    ring: Option<WindowedAggregator>,
    gen: u64,
}

/// The budget-holder's state: the ledger plus the derived accept/refuse
/// sets the estimation path filters by. One mutex; lock order on any
/// path that holds several is base → shards → budget (compaction and
/// the decision pass both follow it).
struct BudgetState {
    accountant: WindowBudgetAccountant,
    /// Live windows whose spend is on the ledger's books — the only
    /// windows published model estimates may use. (A window absent from
    /// both sets is not yet decided, or arrived into an already-passed
    /// gap; either way its spend is unaccounted and it must not be
    /// published.)
    accepted: BTreeSet<u64>,
    /// Live windows explicitly refused (over-grant or unaccountable).
    refused: BTreeSet<u64>,
    /// Last settled spend per live window, kept even after the ledger's
    /// horizon trims the entry — the books the expired-but-live guard
    /// settles late reports against. Rebuilt across restarts from the
    /// rings' spend annotations (mirrored to base *and* shard rings at
    /// settlement, so they persist with shard snapshots); a hard kill
    /// before any snapshot loses the annotation, in which case the
    /// window is conservatively excluded from publication (it is not in
    /// `accepted`) rather than misreported as refused.
    settled: std::collections::BTreeMap<u64, u64>,
    /// Spends already mirrored onto the shard rings *this process
    /// lifetime* — starts empty so the first decision pass after a
    /// restart re-annotates recovered windows, then gates the mirror
    /// writes so the steady state (no spend moved) takes no shard
    /// locks.
    mirrored: std::collections::BTreeMap<u64, u64>,
    /// Ledger bytes last persisted, to skip no-op BUDGET rewrites.
    persisted: Vec<u8>,
}

/// The budget slice of a [`StreamPublication`].
#[derive(Debug, Clone, Serialize)]
pub struct BudgetPublication {
    /// Configured ε over the horizon, nano-ε.
    pub total_nano: u64,
    /// The `w` of the `w`-window contract.
    pub horizon: usize,
    /// Σ recorded spend over the trailing horizon, nano-ε.
    pub sliding_spent_nano: u64,
    /// Grant of the newest decided window, nano-ε.
    pub newest_granted_nano: u64,
    /// Settled spend of the newest decided window, nano-ε.
    pub newest_spent_nano: u64,
    /// Whether the newest decided window is currently refused.
    pub newest_refused: bool,
    /// Lifetime refused-window count.
    pub refused_windows: u64,
    /// Lifetime granted-but-unspent nano-ε (recycled into later
    /// horizons).
    pub recycled_nano: u64,
}

impl BudgetPublication {
    fn of(state: &BudgetState) -> Self {
        let acct = &state.accountant;
        let newest = acct.decided().and_then(|w| acct.decision(w));
        BudgetPublication {
            total_nano: acct.config().total_nano,
            horizon: acct.config().horizon,
            sliding_spent_nano: acct.sliding_spend_nano(),
            newest_granted_nano: newest.map_or(0, |d| d.granted_nano),
            newest_spent_nano: newest.map_or(0, |d| d.spent_nano),
            newest_refused: newest.is_some_and(|d| d.refused),
            refused_windows: acct.refused_windows(),
            recycled_nano: acct.recycled_nano(),
        }
    }
}

/// One sliding-window publication (what `ingestd` prints per tick).
#[derive(Debug, Clone, Serialize)]
pub struct StreamPublication {
    /// Publication sequence number (1-based, monotonic).
    pub seq: u64,
    /// Newest window id the merged ring has advanced to.
    pub newest_window: u64,
    /// Oldest window id still live.
    pub oldest_window: u64,
    /// `(window id, reports)` for every live window, ascending.
    pub windows: Vec<(u64, u64)>,
    /// Reports in the merged current-window view.
    pub merged_reports: u64,
    /// Reports dropped as older than the ring span.
    pub late_reports: u64,
    /// Budget accounting for this publication (deployments with
    /// [`StreamServerConfig::budget`] only).
    pub budget: Option<BudgetPublication>,
}

/// The running server: owns its threads; query or stop it through this.
pub struct ServerHandle {
    addr: SocketAddr,
    export_addr: Option<SocketAddr>,
    stats: Arc<ServerStats>,
    base: Arc<Mutex<BaseState>>,
    shards: Vec<Arc<Mutex<Shard>>>,
    latest_publication: Arc<Mutex<Option<StreamPublication>>>,
    /// Warm-started window-model estimator on the configured backend
    /// (streaming servers only).
    estimator: Option<Mutex<StreamingEstimator>>,
    /// The privacy-budget ledger + refusal set (streaming servers with a
    /// budget config only).
    budget: Option<Arc<Mutex<BudgetState>>>,
    /// The TSGB grant board ([`StreamServerConfig::grants`] only).
    board: Option<Arc<GrantBoard>>,
    /// Per-stage hot-path profile ([`ServerConfig::profile`] only).
    profile: Option<Arc<IngestProfile>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    recovery: RecoverySummary,
    /// Exclusive data-dir lock, held for the server's lifetime so no
    /// other process can recover/compact the directory underneath it.
    _dir_lock: std::fs::File,
}

/// What recovery found at startup (surfaced for operators and tests).
#[derive(Debug, Clone, Serialize)]
pub struct RecoverySummary {
    /// The file generation this run writes.
    pub generation: u64,
    /// Reports recovered by log replay (beyond snapshots).
    pub replayed_reports: u64,
    /// Shards whose previous log ended in a torn record.
    pub torn_tails: u64,
    /// Total reports in the recovered base counters.
    pub recovered_reports: u64,
    /// Live windows in the restored ring (0 when not streaming).
    pub restored_windows: u64,
}

/// Marker type for [`IngestServer::start`].
pub struct IngestServer;

impl IngestServer {
    /// Recovers durable state from `config.data_dir`, binds the listener,
    /// and spawns the acceptor and worker threads.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(!config.region_tiles.is_empty(), "empty region universe");
        let dir_lock = storage::lock_dir(&config.data_dir)?;
        let window = config.stream.as_ref().map(|s| s.window);
        let Recovery {
            counts: base_counts,
            ring: base_ring,
            budget: stored_budget,
            gen,
            replayed_reports,
            torn_tails,
        } = storage::recover_locked(&config.data_dir, &config.region_tiles, window)?;
        let recovery = RecoverySummary {
            generation: gen,
            replayed_reports,
            torn_tails,
            recovered_reports: base_counts.num_reports,
            restored_windows: base_ring
                .as_ref()
                .map(|r| r.windows().len() as u64)
                .unwrap_or(0),
        };

        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::bounded::<TcpStream>(config.queue_depth);

        // Fresh shard rings start at the recovered watermark, so late
        // reports are judged against where the stream actually is. A
        // server-clock deployment additionally starts at *now*: its
        // window key is wall time, and a fresh ring at window 0 would
        // make the first stamped report look like a multi-million-window
        // jump.
        let fresh_ring = |base_ring: &Option<WindowedAggregator>| {
            window.map(|w| {
                let mut ring = WindowedAggregator::new(config.region_tiles.clone(), w);
                if let Some(base) = base_ring {
                    ring.advance_to(base.newest_window());
                }
                if config.stream.as_ref().is_some_and(|s| s.server_clock) {
                    ring.advance_to(w.window_of(server_clock_now()));
                }
                ring
            })
        };

        // The grant board: fan-out point of the TSGB grant session
        // ([`StreamServerConfig::grants`]). Fed by the maintenance
        // thread's allocator when this node holds the budget ledger, or
        // by a coordinator's `GrantAnnounce` relays over the export
        // listener when it doesn't (cluster workers). Connection
        // handlers register subscribers on hello.
        let board = config
            .stream
            .as_ref()
            .filter(|s| s.grants)
            .map(|_| Arc::new(GrantBoard::new()));

        let profile = config.profile.then(|| Arc::new(IngestProfile::default()));

        let mut shards = Vec::with_capacity(config.workers);
        let mut threads = Vec::with_capacity(config.workers + 2);
        for i in 0..config.workers {
            let shard = Arc::new(Mutex::new(Shard {
                agg: Aggregator::from_region_tiles(config.region_tiles.clone()),
                ring: fresh_ring(&base_ring),
                wal: WalWriter::create_with_policy(
                    &storage::wal_path(&config.data_dir, gen, i),
                    config.wal_flush_every,
                    config.sync_policy,
                )?,
                counts_path: storage::shard_counts_path(&config.data_dir, gen, i),
                since_snapshot: 0,
                snapshot_every: config.snapshot_every.max(1),
            }));
            shards.push(Arc::clone(&shard));
            let rx = rx.clone();
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let read_timeout = config.read_timeout;
            let policy = config.stream.as_ref().map(|s| StreamIngestPolicy {
                server_clock: s.server_clock,
                max_conn_advance: s.max_conn_advance,
            });
            let board = board.clone();
            let profile = profile.clone();
            threads.push(std::thread::spawn(move || {
                worker_loop(rx, shard, stats, stop, read_timeout, policy, board, profile)
            }));
        }
        drop(rx);

        {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                acceptor_loop(listener, tx, stats, stop)
            }));
        }

        // The budget ledger: restore the persisted one when its contract
        // matches the configured one; otherwise (fresh deployment or an
        // operator changed the contract) start a new ledger seeded from
        // the ring's per-window spend annotations, so already-published
        // spend keeps constraining the new horizon.
        let budget = config.stream.as_ref().and_then(|s| s.budget).map(|bcfg| {
            let accountant = match stored_budget {
                Some(acct) if acct.config() == bcfg => acct,
                _ => {
                    let mut acct = WindowBudgetAccountant::new(bcfg);
                    if let Some(ring) = &base_ring {
                        for (id, spent) in ring.window_spends() {
                            acct.restore_spend(id, spent);
                        }
                    }
                    acct
                }
            };
            let refused = accountant
                .decisions()
                .filter(|d| d.refused)
                .map(|d| d.window)
                .collect();
            let accepted = accountant
                .decisions()
                .filter(|d| !d.refused)
                .map(|d| d.window)
                .collect();
            // Books for the expired-but-live guard: the restored ring's
            // spend annotations (they outlive the ledger horizon),
            // overlaid by the ledger itself where it still has entries.
            let mut settled: std::collections::BTreeMap<u64, u64> = base_ring
                .as_ref()
                .map(|r| r.window_spends().into_iter().collect())
                .unwrap_or_default();
            for d in accountant.decisions() {
                settled.insert(d.window, d.spent_nano);
            }
            Arc::new(Mutex::new(BudgetState {
                accountant,
                accepted,
                refused,
                settled,
                mirrored: std::collections::BTreeMap::new(),
                persisted: Vec::new(),
            }))
        });

        let base = Arc::new(Mutex::new(BaseState {
            counts: base_counts,
            ring: base_ring,
            gen,
        }));
        let latest_publication = Arc::new(Mutex::new(None));

        // The cluster snapshot-export listener: a coordinator pulls the
        // worker's merged counter + ring state over the TSCL protocol.
        // One serving thread is enough — the only legitimate client is
        // a coordinator polling every publication interval.
        let export_addr = match config.export_addr {
            Some(requested) => {
                let listener = TcpListener::bind(requested)?;
                listener.set_nonblocking(true)?;
                let bound = listener.local_addr()?;
                let base = Arc::clone(&base);
                let shards = shards.clone();
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let read_timeout = config.read_timeout;
                let board = board.clone();
                threads.push(std::thread::spawn(move || {
                    export_loop(listener, base, shards, stats, stop, read_timeout, board)
                }));
                Some(bound)
            }
            None => None,
        };

        // Maintenance thread: periodic window publication, size-triggered
        // online WAL compaction, and the group-commit time bound (a WAL
        // receiving no appends gets no flushes, so the max_delay half of
        // the policy needs a periodic driver). Spawned only when at
        // least one job exists.
        let group_commit = matches!(config.sync_policy, SyncPolicy::GroupCommit { .. });
        if config.stream.is_some() || config.wal_max_bytes != u64::MAX || group_commit {
            let base = Arc::clone(&base);
            let shards = shards.clone();
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let latest = Arc::clone(&latest_publication);
            let cfg = config.clone();
            let budget = budget.clone();
            let board = board.clone();
            threads.push(std::thread::spawn(move || {
                maintenance_loop(cfg, base, shards, stats, stop, latest, budget, board)
            }));
        }

        let estimator = config.stream.as_ref().map(|s| {
            Mutex::new(StreamingEstimator::with_backend(
                StreamingEstimator::DEFAULT_COLD_ITERS,
                StreamingEstimator::DEFAULT_WARM_ITERS,
                s.backend,
            ))
        });

        Ok(ServerHandle {
            addr,
            export_addr,
            stats,
            base,
            shards,
            latest_publication,
            estimator,
            budget,
            board,
            profile,
            stop,
            threads,
            recovery,
            _dir_lock: dir_lock,
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound cluster snapshot-export address (resolves port 0);
    /// `None` when [`ServerConfig::export_addr`] was not set.
    pub fn export_addr(&self) -> Option<SocketAddr> {
        self.export_addr
    }

    /// Live event counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// What startup recovery reconstructed.
    pub fn recovery(&self) -> &RecoverySummary {
        &self.recovery
    }

    /// The live per-stage ingest profile; `None` unless
    /// [`ServerConfig::profile`] was set.
    pub fn ingest_profile(&self) -> Option<IngestProfileSnapshot> {
        self.profile.as_deref().map(IngestProfile::snapshot)
    }

    /// Merge-on-demand total: recovered base plus every live shard. The
    /// base lock is held across the shard merges (lock order base →
    /// shards, same as compaction) so an online compaction — which moves
    /// shard counts into the base — cannot make the total transiently
    /// lose the shard-held reports.
    pub fn counts(&self) -> AggregateCounts {
        let base = self.base.lock().unwrap();
        let mut total = base.counts.clone();
        for shard in &self.shards {
            total.merge(shard.lock().unwrap().agg.counts());
        }
        total
    }

    /// Merge-on-demand sliding-window view: the recovered base ring plus
    /// every live shard ring, merged per absolute window id. `None` when
    /// the server was not configured for streaming. Holds the base lock
    /// across the shard merges for the same reason as
    /// [`ServerHandle::counts`].
    pub fn windowed_counts(&self) -> Option<WindowedAggregator> {
        let base = self.base.lock().unwrap();
        let mut total = base.ring.clone()?;
        for shard in &self.shards {
            if let Some(ring) = &shard.lock().unwrap().ring {
                total.merge_ring(ring);
            }
        }
        Some(total)
    }

    /// The most recent sliding-window publication, if any.
    pub fn latest_publication(&self) -> Option<StreamPublication> {
        self.latest_publication.lock().unwrap().clone()
    }

    /// Estimates the mobility model over the merged live window on the
    /// configured [`StreamServerConfig::backend`], warm-starting from the
    /// previous call's posterior — the embedded-deployment hook that
    /// makes the backend flag flip the whole service-side estimation
    /// chain. With a budget configured, only windows the accountant has
    /// *accepted* contribute — refused, not-yet-decided, and
    /// unaccountable gap windows are excluded, so publication only ever
    /// uses data whose spend the ledger accounts. `None` when the
    /// server is not streaming, `graph` does not match the server's
    /// region universe (a graph-less `ingestd` has no graph to offer —
    /// see `--region-graph`), or the budget-filtered view is empty — a
    /// tick over zero counts would both publish a meaningless model and
    /// poison the warm-start posterior for the next real tick.
    pub fn estimate_window_model(&self, graph: &RegionGraph) -> Option<MobilityModel> {
        let estimator = self.estimator.as_ref()?;
        let view = self.windowed_counts()?;
        if view.merged().num_regions != graph.num_regions() {
            return None;
        }
        let accepted: Option<BTreeSet<u64>> = self
            .budget
            .as_ref()
            .map(|state| state.lock().unwrap().accepted.clone());
        let within;
        let counts = match &accepted {
            Some(accepted) => {
                within = view.merged_where(|id| accepted.contains(&id));
                &within
            }
            None => view.merged(),
        };
        if counts.num_reports == 0 {
            return None;
        }
        Some(estimator.lock().unwrap().tick(counts, graph))
    }

    /// A snapshot of the privacy-budget ledger, when the server runs
    /// with [`StreamServerConfig::budget`].
    pub fn budget_ledger(&self) -> Option<WindowBudgetAccountant> {
        self.budget
            .as_ref()
            .map(|state| state.lock().unwrap().accountant.clone())
    }

    /// The accountant's grant history — (window, epoch, granted ε′,
    /// settled max ε′) per decision, oldest first. Outlives both the
    /// ledger horizon and the ring retention (see
    /// [`trajshare_aggregate::GrantRecord`]); empty when no budget is
    /// configured.
    pub fn budget_grant_history(&self) -> Vec<GrantRecord> {
        self.budget
            .as_ref()
            .map(|state| {
                state
                    .lock()
                    .unwrap()
                    .accountant
                    .grant_history()
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The latest grant on this node's grant board — what a subscribing
    /// client connecting right now would be caught up with. `None` when
    /// the grant session is disabled or nothing has been announced yet.
    pub fn latest_grant(&self) -> Option<GrantFrame> {
        self.board.as_ref().and_then(|b| b.current())
    }

    /// Announces a grant on this node's board, pushing it to every
    /// subscribed connection — the embedding hook a coordinator-driven
    /// deployment uses when it relays grants by means other than the
    /// `TSCL` export listener. No-op when the grant session is disabled.
    pub fn announce_grant(&self, grant: GrantFrame) {
        if let Some(board) = &self.board {
            if board.current() != Some(grant) {
                self.stats.bump(&self.stats.grants_published);
            }
            board.announce(grant);
        }
    }

    /// The live windows currently excluded from published estimates by
    /// the budget accountant (empty when no budget is configured).
    pub fn budget_refused_windows(&self) -> Vec<u64> {
        self.budget
            .as_ref()
            .map(|state| state.lock().unwrap().refused.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The current file generation (bumps on online compaction).
    pub fn generation(&self) -> u64 {
        self.base.lock().unwrap().gen
    }

    /// Graceful stop: refuse new connections, join all threads, persist a
    /// final snapshot of every shard, and return the final counters.
    pub fn shutdown(mut self) -> std::io::Result<AggregateCounts> {
        self.stop_threads();
        for shard in &self.shards {
            shard.lock().unwrap().snapshot()?;
        }
        Ok(self.counts())
    }

    /// Abrupt stop for crash-recovery tests: threads are stopped but *no*
    /// final snapshot is written — recovery must reconstruct the tail
    /// from the WAL alone, exactly as after a SIGKILL.
    pub fn crash(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    tx: channel::Sender<TcpStream>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => stats.bump(&stats.accepted),
                // Queue full: shed the connection immediately (the stream
                // drops ⇒ RST/close) instead of buffering unboundedly.
                Err(TrySendError::Full(_)) => stats.bump(&stats.refused),
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: channel::Receiver<TcpStream>,
    shard: Arc<Mutex<Shard>>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
    policy: Option<StreamIngestPolicy>,
    board: Option<Arc<GrantBoard>>,
    profile: Option<Arc<IngestProfile>>,
) {
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(stream) => handle_conn(
                stream,
                &shard,
                &stats,
                &stop,
                read_timeout,
                policy,
                board.as_deref(),
                profile.as_deref(),
            ),
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs the per-window budget decisions over the current merged view:
/// allocate every newly seen window (divergence via
/// [`window_divergence`] on consecutive windows), settle each
/// live window's observed worst-case (max) per-report ε′ against its
/// grant, maintain the accept/refuse sets, mirror spends into the base
/// ring, pre-allocate and return the *next* window's grant when the
/// grant session is on, and persist the ledger when it changed — the
/// persist happens before the caller can broadcast the returned grant,
/// so a grant a client ever saw is always on disk and a restart can
/// never re-decide it differently.
///
/// Lock order: base, then budget, then (briefly, per mirrored spend)
/// individual shards. Taking a shard lock while holding base + budget
/// cannot deadlock: every other multi-lock path (compaction, counts,
/// merged views) acquires *base first* — which this thread holds — and
/// workers take exactly one shard lock and nothing else under it.
fn run_budget_decisions(
    config: &ServerConfig,
    view: &WindowedAggregator,
    state: &Mutex<BudgetState>,
    base: &Mutex<BaseState>,
    shards: &[Arc<Mutex<Shard>>],
    stats: &ServerStats,
) -> std::io::Result<Option<GrantFrame>> {
    let graph = config.stream.as_ref().and_then(|s| s.graph.as_deref());
    let grants = config.stream.as_ref().is_some_and(|s| s.grants);
    let mut base_guard = base.lock().unwrap();
    let mut guard = state.lock().unwrap();
    let windows = view.windows();
    // Settled spends to mirror onto the shard rings, applied in one
    // lock round-trip per shard after the loop.
    let mut mirrors: Vec<(u64, u64)> = Vec::with_capacity(windows.len());
    for (i, &(id, counts)) in windows.iter().enumerate() {
        // Worst-case per-user spend this window's cohort claims, nano-ε:
        // the *max* per-report ε′, not the mean — the `w`-window
        // contract is per user, so settlement must bound the worst
        // reporter (one ε′ = 64 report hiding among thousands at 0.01
        // must still refuse the window).
        let observed = counts.max_eps_nano();
        if guard.accountant.decided().is_none_or(|d| id > d) {
            // Divergence signal: this window's occupancy vs the previous
            // live window's. A cold start (nothing to compare) counts as
            // a full shift — the policy buys data when it knows nothing.
            let divergence = match i.checked_sub(1).map(|j| windows[j]) {
                Some((prev_id, prev)) if prev_id + 1 == id => {
                    window_divergence(graph, prev, counts)
                }
                _ => 1.0,
            };
            guard.accountant.allocate(id, divergence);
            stats.bump(&stats.budget_decisions);
        }
        match guard.accountant.settle(id, observed) {
            Some(decision) => {
                if decision.refused {
                    guard.accepted.remove(&id);
                    if guard.refused.insert(id) {
                        stats.bump(&stats.budget_refusals);
                    }
                } else {
                    guard.refused.remove(&id);
                    guard.accepted.insert(id);
                }
                // Record the settled spend in the live books and mirror
                // it onto the base ring *and* every shard ring holding
                // the window — base-ring slots hold no data until
                // compaction, so the shard mirrors are what actually
                // persist (with the next shard snapshot) and what
                // recovery's `window_spends()` reseeds the books from.
                // All writes are unconditional — a window settled down
                // to 0 must overwrite any stale nonzero value — and are
                // captured *inside* the loop from the returned decision:
                // deciding several windows in one pass can trim the
                // oldest ledger entry before a post-loop ledger sweep
                // would see it.
                guard.settled.insert(id, decision.spent_nano);
                if let Some(ring) = &mut base_guard.ring {
                    ring.record_spend(id, decision.spent_nano);
                }
                if guard.mirrored.get(&id) != Some(&decision.spent_nano) {
                    guard.mirrored.insert(id, decision.spent_nano);
                    mirrors.push((id, decision.spent_nano));
                }
            }
            // No ledger entry: the window appeared *behind* the decided
            // watermark (data landed in a still-live gap window after a
            // newer one was decided — client-declared timestamps arrive
            // in any order). It can never be granted retroactively, so
            // its spend is unaccountable and its data must not be
            // published. Windows whose entry merely *expired* from the
            // horizon (a ring deeper than the budget horizon keeps them
            // live) are held to the frozen-window rule against the books
            // recorded when they settled.
            None => {
                let decided = guard.accountant.decided().unwrap_or(0);
                let horizon = guard.accountant.config().horizon as u64;
                let expired = id < decided && decided - id >= horizon;
                if expired {
                    // Late reports raising the cohort's claim above the
                    // recorded spend are unaccounted surplus: refuse the
                    // window, exactly as settle() refuses a frozen
                    // in-horizon window. At or below the books the
                    // window is fully accounted and stays (or, after a
                    // restart rebuilt `accepted` from the trimmed
                    // ledger, becomes again) accepted — unless it
                    // carries a sticky frozen refusal, which only the
                    // over-claim path sets and whose books are the
                    // grant its observed max already exceeds. Books
                    // unknown (a hard kill lost the annotation before
                    // any snapshot): the window is conservatively
                    // excluded from publication — it cannot be in
                    // `accepted` post-restart — and refusing it would
                    // misreport a fully-accounted window, so it keeps
                    // its earned status.
                    if let Some(&recorded) = guard.settled.get(&id) {
                        if observed > recorded {
                            guard.accepted.remove(&id);
                            if guard.refused.insert(id) {
                                stats.bump(&stats.budget_refusals);
                            }
                        } else if !guard.refused.contains(&id) {
                            guard.accepted.insert(id);
                        }
                    }
                } else if !guard.accepted.contains(&id) && guard.refused.insert(id) {
                    stats.bump(&stats.budget_refusals);
                }
            }
        }
    }
    // Grant-session pre-allocation: decide the *next* window's ε′ now —
    // before any of its data exists — so subscribed clients can
    // randomize at the announced rate and settlement later observes
    // spend == grant. Bootstrap (no data at all) grants the ring's
    // current newest window, the first one clients will fill. The
    // signal for the upcoming window is the shift between the two
    // newest observed windows (a cold start counts as a full shift —
    // the policy buys data when it knows nothing). When the window was
    // already decided (an earlier tick, or a restored ledger after
    // restart), the standing decision is re-announced unchanged — the
    // board dedupes, and a restarted node's empty board needs the
    // current grant back for late joiners.
    let announce = if grants {
        let next = if view.merged().num_reports == 0 {
            view.newest_window()
        } else {
            view.newest_window() + 1
        };
        if guard.accountant.decided().is_none_or(|d| next > d) {
            let divergence = match windows.len().checked_sub(2) {
                Some(j) if windows[j].0 + 1 == windows[j + 1].0 => {
                    window_divergence(graph, windows[j].1, windows[j + 1].1)
                }
                _ => 1.0,
            };
            let g = guard.accountant.allocate(next, divergence);
            stats.bump(&stats.budget_decisions);
            Some(GrantFrame {
                epoch: g.epoch,
                window: g.window,
                granted_nano: g.granted_nano,
            })
        } else {
            guard.accountant.latest_grant().map(|r| GrantFrame {
                epoch: r.epoch,
                window: r.window,
                granted_nano: r.granted_nano,
            })
        }
    } else {
        None
    };
    // Books for windows that slid out of the ring no longer gate
    // anything: the expired-but-live guard above only consults them for
    // windows still in the view, and publication only filters live
    // windows. (The budget *horizon* needs no books at all — the
    // accountant's ledger and grant history are self-contained and
    // survive independently of ring retention, which is what lets `w`
    // exceed the ring depth.)
    let oldest = view.oldest_window();
    guard.refused.retain(|&id| id >= oldest);
    guard.accepted.retain(|&id| id >= oldest);
    guard.settled.retain(|&id, _| id >= oldest);
    guard.mirrored.retain(|&id, _| id >= oldest);
    if !mirrors.is_empty() {
        for shard in shards {
            if let Some(ring) = &mut shard.lock().unwrap().ring {
                for &(id, spent) in &mirrors {
                    ring.record_spend(id, spent);
                }
            }
        }
    }
    drop(base_guard);
    let encoded = guard.accountant.encode();
    if encoded != guard.persisted {
        storage::write_blob_atomic(&storage::budget_path(&config.data_dir), &encoded)?;
        guard.persisted = encoded;
    }
    Ok(announce)
}

/// The maintenance thread: publishes the merged sliding-window view
/// every `publish_every`, runs the per-window budget decisions, and
/// runs size-triggered online WAL compaction.
#[allow(clippy::too_many_arguments)]
fn maintenance_loop(
    config: ServerConfig,
    base: Arc<Mutex<BaseState>>,
    shards: Vec<Arc<Mutex<Shard>>>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    latest: Arc<Mutex<Option<StreamPublication>>>,
    budget: Option<Arc<Mutex<BudgetState>>>,
    board: Option<Arc<GrantBoard>>,
) {
    let publish_every = config.stream.as_ref().map(|s| s.publish_every);
    let group_commit = matches!(config.sync_policy, SyncPolicy::GroupCommit { .. });
    let mut last_publish = Instant::now();
    let mut seq = 0u64;
    let mut next_compact_attempt = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
        if group_commit {
            // Enforce the time half of the group-commit bound during
            // lulls: acked-but-unsynced records older than max_delay are
            // fdatasync'ed here, not at the next (possibly never) ack.
            for shard in &shards {
                if shard.lock().unwrap().wal.sync_if_due().is_err() {
                    stats.bump(&stats.io_errors);
                }
            }
        }
        if let Some(every) = publish_every {
            if last_publish.elapsed() >= every {
                last_publish = Instant::now();
                if let Some(view) = merged_ring(&base, &shards) {
                    // Budget decisions run against the same view the
                    // publication describes, so the published accounting
                    // is never ahead of or behind the window list.
                    let budget_pub = budget.as_ref().map(|state| {
                        match run_budget_decisions(&config, &view, state, &base, &shards, &stats) {
                            // The grant is broadcast only after the
                            // decision behind it is persisted (see
                            // run_budget_decisions): no client ever
                            // randomizes against a grant a restart
                            // could re-decide.
                            Ok(Some(grant)) => {
                                if let Some(board) = &board {
                                    if board.current() != Some(grant) {
                                        stats.bump(&stats.grants_published);
                                    }
                                    board.announce(grant);
                                }
                            }
                            Ok(None) => {}
                            Err(_) => stats.bump(&stats.io_errors),
                        }
                        BudgetPublication::of(&state.lock().unwrap())
                    });
                    seq += 1;
                    let publication = StreamPublication {
                        seq,
                        newest_window: view.newest_window(),
                        oldest_window: view.oldest_window(),
                        windows: view
                            .windows()
                            .iter()
                            .map(|(id, c)| (*id, c.num_reports))
                            .collect(),
                        merged_reports: view.merged().num_reports,
                        late_reports: view.late(),
                        budget: budget_pub,
                    };
                    *latest.lock().unwrap() = Some(publication);
                    stats.bump(&stats.publications);
                }
            }
        }
        if config.wal_max_bytes != u64::MAX && Instant::now() >= next_compact_attempt {
            let over_limit = shards
                .iter()
                .any(|s| s.lock().unwrap().wal.offset() >= config.wal_max_bytes);
            if over_limit {
                match compact_online(&config, &base, &shards, budget.as_deref()) {
                    Ok(()) => stats.bump(&stats.compactions),
                    // A failing compaction (e.g. disk full) pauses every
                    // shard for its duration; back off instead of
                    // re-freezing ingestion every tick in a doomed loop.
                    Err(_) => {
                        stats.bump(&stats.compaction_failures);
                        next_compact_attempt = Instant::now() + Duration::from_secs(5);
                    }
                }
            }
        }
    }
}

/// The merged sliding-window view (base ring + every shard ring), or
/// `None` when not streaming. Lock order: base (held across the shard
/// merges, so a concurrent compaction cannot be observed mid-move),
/// then shards in index order — the same order every multi-lock path
/// uses.
fn merged_ring(
    base: &Mutex<BaseState>,
    shards: &[Arc<Mutex<Shard>>],
) -> Option<WindowedAggregator> {
    let base = base.lock().unwrap();
    let mut total = base.ring.clone()?;
    for shard in shards {
        if let Some(ring) = &shard.lock().unwrap().ring {
            total.merge_ring(ring);
        }
    }
    Some(total)
}

/// Builds the worker's shippable snapshot: merged totals, merged ring,
/// and the current generation as the epoch — all captured under one
/// base-then-shards lock pass (the standard order), so the counts and
/// the ring describe the *same* instant and a concurrent compaction
/// cannot be observed mid-move.
fn export_snapshot(base: &Mutex<BaseState>, shards: &[Arc<Mutex<Shard>>]) -> WorkerSnapshot {
    let base = base.lock().unwrap();
    let mut counts = base.counts.clone();
    let mut ring = base.ring.clone();
    for shard in shards {
        let guard = shard.lock().unwrap();
        counts.merge(guard.agg.counts());
        if let (Some(total), Some(shard_ring)) = (&mut ring, &guard.ring) {
            total.merge_ring(shard_ring);
        }
    }
    WorkerSnapshot {
        epoch: base.gen,
        watermark: ring.as_ref().map_or(0, |r| r.newest_window()),
        reports: counts.num_reports,
        counts: counts.encode_snapshot(),
        ring: ring.map(|r| r.encode_ring()),
    }
}

/// The cluster snapshot-export listener: serves `TSCL` `SnapshotPull`
/// requests with the worker's current merged state, and — when the
/// grant session is on — installs `GrantAnnounce` relays from the
/// coordinator onto the worker's grant board, fanning each one out to
/// this worker's subscribed client connections. Connections are
/// handled serially (the only expected clients are one coordinator and
/// its router's relay); a connection may issue any number of frames
/// before closing.
#[allow(clippy::too_many_arguments)]
fn export_loop(
    listener: TcpListener,
    base: Arc<Mutex<BaseState>>,
    shards: Vec<Arc<Mutex<Shard>>>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
    board: Option<Arc<GrantBoard>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if stream.set_read_timeout(Some(read_timeout)).is_err()
                    || stream.set_nodelay(true).is_err()
                {
                    stats.bump(&stats.io_errors);
                    continue;
                }
                loop {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match read_cluster_frame(&mut stream) {
                        Ok(ClusterFrame::SnapshotPull) => {
                            let snapshot = export_snapshot(&base, &shards);
                            if write_cluster_frame(&mut stream, &ClusterFrame::Snapshot(snapshot))
                                .is_err()
                            {
                                stats.bump(&stats.io_errors);
                                break;
                            }
                            stats.bump(&stats.snapshots_shipped);
                        }
                        // The coordinator's allocation, relayed down to
                        // this worker's subscribed clients. Fire-and-
                        // forget (no reply). A worker running no grant
                        // session ignores the relay — dropping the
                        // coordinator's connection over it would cost a
                        // snapshot pull cycle for nothing.
                        Ok(ClusterFrame::GrantAnnounce(grant)) => {
                            if let Some(board) = &board {
                                if board.current() != Some(grant) {
                                    stats.bump(&stats.grants_published);
                                }
                                board.announce(grant);
                            }
                        }
                        // A worker never accepts snapshots; anything but
                        // a pull or a grant relay is a protocol
                        // violation.
                        Ok(_) => {
                            stats.bump(&stats.disconnected_protocol);
                            break;
                        }
                        // EOF shows up as an Io error from read_exact —
                        // the normal end of a pull session. Real socket
                        // errors land here too; either way the next
                        // coordinator connect starts clean.
                        Err(_) => break,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Online WAL compaction: fold the base and every live shard into the
/// next generation's base snapshot (and ring), start fresh logs, commit
/// with the manifest flip, sweep the old generation. Ingestion pauses
/// for the duration (all shard locks are held), which is what makes the
/// fold exact; the sequencing makes a crash at any point safe — until
/// the flip lands, the old generation (whose logs are complete, since
/// they are flushed first) remains authoritative, and the half-built
/// next generation is swept by the next recovery.
fn compact_online(
    config: &ServerConfig,
    base: &Mutex<BaseState>,
    shards: &[Arc<Mutex<Shard>>],
    budget: Option<&Mutex<BudgetState>>,
) -> std::io::Result<()> {
    let mut base_guard = base.lock().unwrap();
    let mut guards: Vec<_> = shards.iter().map(|s| s.lock().unwrap()).collect();
    // 1. Complete the old logs: every acked report must be on disk (in
    //    the kernel at least) before the old generation becomes the
    //    recovery source of record for a mid-compaction crash.
    for g in guards.iter_mut() {
        g.wal.flush()?;
    }
    // 2. Fold totals and rings.
    let mut total = base_guard.counts.clone();
    for g in guards.iter() {
        total.merge(g.agg.counts());
    }
    let ring_total = base_guard.ring.clone().map(|mut ring| {
        for g in guards.iter() {
            if let Some(shard_ring) = &g.ring {
                ring.merge_ring(shard_ring);
            }
        }
        // Stamp the ledger's settled spends onto the folded ring: the
        // per-window data only just arrived here from the shard rings
        // (which never carry spend annotations), and the compacted ring
        // file is what recovery seeds a fresh accountant from when the
        // BUDGET ledger is absent or superseded.
        if let Some(state) = budget {
            let guard = state.lock().unwrap();
            // Unconditional: a window settled to 0 must overwrite any
            // stale nonzero annotation merged in from the old base ring.
            for d in guard.accountant.decisions() {
                ring.record_spend(d.window, d.spent_nano);
            }
        }
        ring
    });
    // 3. Write the next generation's base (and ring), then fresh logs.
    let old_gen = base_guard.gen;
    let new_gen = old_gen + 1;
    trajshare_aggregate::write_snapshot_file(
        &storage::base_path(&config.data_dir, new_gen),
        &total,
    )?;
    if let Some(ring) = &ring_total {
        storage::write_blob_atomic(
            &storage::ring_path(&config.data_dir, new_gen),
            &ring.encode_ring(),
        )?;
    }
    let mut new_wals = Vec::with_capacity(guards.len());
    for i in 0..guards.len() {
        new_wals.push(WalWriter::create_with_policy(
            &storage::wal_path(&config.data_dir, new_gen, i),
            config.wal_flush_every,
            config.sync_policy,
        )?);
    }
    // 4. Commit: the manifest flip makes the new generation (whose base
    //    already contains everything) authoritative.
    storage::write_manifest(&config.data_dir, new_gen)?;
    // 5. Swap live state onto the new generation.
    let watermark = ring_total.as_ref().map(|r| r.newest_window());
    for (i, g) in guards.iter_mut().enumerate() {
        g.agg = Aggregator::from_region_tiles(config.region_tiles.clone());
        g.ring = config.stream.as_ref().map(|s| {
            let mut ring = WindowedAggregator::new(config.region_tiles.clone(), s.window);
            if let Some(w) = watermark {
                ring.advance_to(w);
            }
            ring
        });
        g.wal = new_wals.remove(0);
        g.counts_path = storage::shard_counts_path(&config.data_dir, new_gen, i);
        g.since_snapshot = 0;
    }
    base_guard.counts = total;
    base_guard.ring = ring_total;
    base_guard.gen = new_gen;
    drop(guards);
    drop(base_guard);
    // 6. Cleanup outside the locks: delete the old generation.
    storage::sweep_stale_generations(&config.data_dir, new_gen);
    Ok(())
}

/// The collector-edge clock: seconds since the Unix epoch (saturating
/// at 0 on a pre-epoch system clock rather than panicking).
fn server_clock_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Writes one cumulative ack to the client: the classic raw `u64` LE
/// until a `TSGH` hello upgraded the connection, a framed `TSAK`
/// through the shared writer afterwards — serialized against the grant
/// board's pushes by the writer's own lock, so an ack and a pushed
/// grant can never interleave mid-frame.
fn write_ack(stream: &mut TcpStream, framed: &Option<GrantSubscriber>, acked: u64) -> bool {
    match framed {
        Some(writer) => {
            // Stack payload + one writev: no per-ack heap allocation,
            // and the (prefix, payload) pair leaves in a single syscall.
            let payload = grant::ack_payload(acked);
            match writer.lock() {
                Ok(mut w) => grant::write_control_frame(&mut *w, &payload)
                    .and_then(|()| w.flush())
                    .is_ok(),
                Err(_) => false,
            }
        }
        None => stream.write_all(&acked.to_le_bytes()).is_ok(),
    }
}

/// Reads one client stream to EOF, ingesting every framed report, then
/// flushes the WAL and acks. Any protocol violation or stall drops the
/// connection without an ack. A `TSGH` hello upgrades the server→client
/// direction to control frames (framed acks, pushed grants — see
/// [`StreamServerConfig::grants`]); connections that never send one
/// keep the classic raw-ack exchange byte for byte.
#[allow(clippy::too_many_arguments)]
fn handle_conn(
    mut stream: TcpStream,
    shard: &Mutex<Shard>,
    stats: &ServerStats,
    stop: &AtomicBool,
    read_timeout: Duration,
    policy: Option<StreamIngestPolicy>,
    board: Option<&GrantBoard>,
    profile: Option<&IngestProfile>,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() || stream.set_nodelay(true).is_err() {
        stats.bump(&stats.io_errors);
        return;
    }
    let mut decoder = StreamDecoder::new();
    // Per-connection scratch for `TSR4` batch frames: decoded column
    // storage is reused across batches, so the hot path allocates
    // nothing per report once the columns have grown to working size.
    let mut batch_scratch = ReportBatch::new();
    let mut accepted = 0u64;
    // `Some` once a hello upgraded this connection: the shared writer
    // the grant board pushes through and every ack goes through.
    let mut framed: Option<GrantSubscriber> = None;
    // Windows this connection may still advance the shard watermark.
    let mut advance_budget = policy.map_or(u64::MAX, |p| p.max_conn_advance);
    loop {
        if stop.load(Ordering::SeqCst) {
            let _ = shard.lock().unwrap().wal.flush();
            return;
        }
        // The decoder reads the socket directly into its own buffer
        // (≥ [`StreamDecoder::READ_CHUNK`] spare per read), so a whole
        // kernel receive buffer lands in one syscall + one copy instead
        // of bouncing through a fixed stack chunk.
        match decoder.read_from(&mut stream) {
            Ok(0) => {
                // EOF: make everything durable first (already-validated
                // reports stand regardless of how the stream ended).
                if shard.lock().unwrap().wal.flush().is_err() {
                    stats.bump(&stats.io_errors);
                    return;
                }
                // A stream that ends mid-frame is a protocol violation,
                // not a completed upload: no ack, so the client cannot
                // mistake a truncated send for full durability.
                if decoder.pending() > 0 {
                    stats.bump(&stats.disconnected_protocol);
                    return;
                }
                if !write_ack(&mut stream, &framed, accepted) {
                    stats.bump(&stats.io_errors);
                    return;
                }
                let _ = stream.shutdown(Shutdown::Both);
                stats.bump(&stats.completed);
                return;
            }
            Ok(_) => {
                // One cumulative ack per drained read round (not per
                // batch): every batch's WAL flush happens inside
                // `ingest_batch`, so the deferred ack still only covers
                // durable reports — coalescing trades "re-send at most
                // one batch after a crash" for "at most one read round"
                // and removes an ack syscall per batch. TSR2/TSR3-only
                // clients never see mid-stream acks either way — their
                // connections stay byte-identical to the pre-batch
                // protocol (final ack at EOF only).
                let mut ack_due = false;
                loop {
                    match decoder.next_wire_frame() {
                        Ok(Some(WireFrame::Batch { payload })) => {
                            let decoded = match profile {
                                Some(p) => {
                                    let (mut validate_ns, mut fill_ns) = (0u64, 0u64);
                                    let r = batch_scratch.decode_payload_timed(
                                        payload,
                                        &mut validate_ns,
                                        &mut fill_ns,
                                    );
                                    p.validate_ns.fetch_add(validate_ns, Ordering::Relaxed);
                                    p.decode_ns.fetch_add(fill_ns, Ordering::Relaxed);
                                    r
                                }
                                None => batch_scratch.decode_payload_into(payload),
                            };
                            let Ok(mut payload_crc) = decoded else {
                                stats.bump(&stats.disconnected_protocol);
                                return;
                            };
                            let n = batch_scratch.num_reports() as u64;
                            let stamped;
                            let payload: &[u8] = if policy.is_some_and(|p| p.server_clock) {
                                // Edge-stamp the whole batch; the stamped
                                // encoding is what the WAL persists.
                                batch_scratch.stamp_t(server_clock_now());
                                stamped = batch_scratch.encode_payload();
                                payload_crc = crc32(&stamped);
                                &stamped
                            } else {
                                payload
                            };
                            let mut guard = shard.lock().unwrap();
                            if !policy.is_some_and(|p| p.server_clock) {
                                if let Some(ring) = &guard.ring {
                                    // Police the batch's furthest window:
                                    // window_of is monotone in t, so this
                                    // is the full advance the batch would
                                    // cause. Refusal is batch-wide — one
                                    // frame, one decision, one ack.
                                    let w = ring.config().window_of(batch_scratch.max_t());
                                    let newest = ring.newest_window();
                                    let has_live = ring.merged().num_reports > 0;
                                    if w > newest && has_live {
                                        let delta = w - newest;
                                        if delta > advance_budget {
                                            drop(guard);
                                            stats
                                                .watermark_throttled
                                                .fetch_add(n, Ordering::Relaxed);
                                            // The round's unchanged
                                            // cumulative ack tells the
                                            // client the batch was not
                                            // accepted.
                                            ack_due = true;
                                            continue;
                                        }
                                        advance_budget -= delta;
                                    }
                                }
                            }
                            if guard
                                .ingest_batch(&batch_scratch, payload, payload_crc, profile)
                                .is_err()
                            {
                                stats.bump(&stats.io_errors);
                                return;
                            }
                            drop(guard);
                            accepted += n;
                            stats.reports_ingested.fetch_add(n, Ordering::Relaxed);
                            if let Some(p) = profile {
                                p.batches.fetch_add(1, Ordering::Relaxed);
                                p.reports.fetch_add(n, Ordering::Relaxed);
                            }
                            ack_due = true;
                        }
                        Ok(Some(WireFrame::Single {
                            mut report,
                            payload,
                        })) => {
                            // Collector-edge stamping: the *stamped*
                            // encoding is what the WAL persists, so a
                            // replayed report lands in the same window.
                            let stamped;
                            let payload: &[u8] = if policy.is_some_and(|p| p.server_clock) {
                                report.t = server_clock_now();
                                stamped = report.encode();
                                &stamped
                            } else {
                                payload
                            };
                            let mut guard = shard.lock().unwrap();
                            // The advance budget polices *client-declared*
                            // timestamps; an edge-stamped `t` is the
                            // server's own clock and is trusted by
                            // construction (it can only advance the
                            // watermark at wall-time rate).
                            if !policy.is_some_and(|p| p.server_clock) {
                                if let Some(ring) = &guard.ring {
                                    let w = ring.config().window_of(report.t);
                                    let newest = ring.newest_window();
                                    // The budget protects *live data* from
                                    // eviction; advancing an empty ring
                                    // evicts nothing and is free — which is
                                    // also what lets clients stamping
                                    // epoch seconds reach "now" from a
                                    // cold start's watermark 0.
                                    let has_live = ring.merged().num_reports > 0;
                                    if w > newest && has_live {
                                        let delta = w - newest;
                                        if delta > advance_budget {
                                            // Refusing (not clamping) keeps
                                            // the report's LDP payload intact
                                            // and the watermark honest; the
                                            // client sees a smaller ack.
                                            drop(guard);
                                            stats.bump(&stats.watermark_throttled);
                                            continue;
                                        }
                                        advance_budget -= delta;
                                    }
                                }
                            }
                            if guard.ingest(&report, payload).is_err() {
                                stats.bump(&stats.io_errors);
                                return;
                            }
                            drop(guard);
                            accepted += 1;
                            stats.bump(&stats.reports_ingested);
                        }
                        Ok(Some(WireFrame::Hello { hello })) => {
                            // Upgrade to the grant session. From here
                            // the server→client direction is framed
                            // (TSAK acks, pushed TSGB grants). A
                            // repeated hello is idempotent.
                            if framed.is_none() {
                                if hello.subscribes() && board.is_none() {
                                    // Subscribing against a server that
                                    // runs no grant session would leave
                                    // the client waiting forever for a
                                    // grant; refuse loudly instead.
                                    stats.bump(&stats.disconnected_protocol);
                                    return;
                                }
                                let Ok(clone) = stream.try_clone() else {
                                    stats.bump(&stats.io_errors);
                                    return;
                                };
                                // Bound how long a stalled subscriber
                                // can hold the grant board's push loop
                                // (the fd is shared with `stream`, so
                                // this also bounds ack writes — fine,
                                // they are tens of bytes).
                                let _ = clone.set_write_timeout(Some(Duration::from_secs(1)));
                                let writer: GrantSubscriber = Arc::new(Mutex::new(clone));
                                if hello.subscribes() {
                                    if let Some(board) = board {
                                        // Registers *and* writes the
                                        // current grant to this
                                        // connection atomically — the
                                        // late-joiner catch-up.
                                        board.subscribe(&writer);
                                        stats.bump(&stats.grant_subscriptions);
                                    }
                                }
                                framed = Some(writer);
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Hostile or corrupt stream: drop it. Reports
                            // already ingested stay — each frame is an
                            // independent, validated LDP message.
                            stats.bump(&stats.disconnected_protocol);
                            return;
                        }
                    }
                }
                if ack_due {
                    let t0 = profile.map(|_| Instant::now());
                    // Written after every batch in the round flushed its
                    // WAL record, so the ack only ever covers durable
                    // reports.
                    if !write_ack(&mut stream, &framed, accepted) {
                        stats.bump(&stats.io_errors);
                        return;
                    }
                    if let (Some(p), Some(t0)) = (profile, t0) {
                        p.ack_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                stats.bump(&stats.disconnected_slow);
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                stats.bump(&stats.io_errors);
                return;
            }
        }
    }
}

/// A compact, JSON-serializable fingerprint of a counter set — what the
/// `ingestd --dump-counts` CLI prints so operators (and the CI smoke
/// test) can verify restored state. `snapshot_crc32` covers every counter
/// byte, so two equal fingerprints mean bit-identical counters.
#[derive(Debug, Clone, Serialize)]
pub struct CountsSummary {
    /// Universe size.
    pub num_regions: usize,
    /// Reports folded in.
    pub num_reports: u64,
    /// Unigram observations folded in.
    pub num_unigrams: u64,
    /// Observations rejected as malformed/hostile.
    pub rejected: u64,
    /// Σ ε′ over reports, nano-ε.
    pub eps_nano_sum: u64,
    /// Max per-report ε′, nano-ε (what budget settlement bounds).
    pub eps_nano_max: u64,
    /// Σ occupancy counters.
    pub total_occupancy: u64,
    /// Σ transition counters.
    pub total_transitions: u64,
    /// CRC-32 of the full snapshot encoding — a bit-exact fingerprint.
    pub snapshot_crc32: u32,
}

impl CountsSummary {
    /// Fingerprints `counts`.
    pub fn of(counts: &AggregateCounts) -> Self {
        // The fingerprint is the snapshot's own embedded CRC — i.e. the
        // CRC over the encoded counters. (CRC-ing the whole encoding
        // *including* its trailing CRC would collapse to the constant
        // CRC residue for every input — the bug this replaces.)
        let snapshot = counts.encode_snapshot();
        let payload = &snapshot[..snapshot.len() - 4];
        CountsSummary {
            num_regions: counts.num_regions,
            num_reports: counts.num_reports,
            num_unigrams: counts.num_unigrams,
            rejected: counts.rejected,
            eps_nano_sum: counts.eps_nano_sum,
            eps_nano_max: counts.eps_nano_max,
            total_occupancy: counts.occupancy.iter().sum(),
            total_transitions: counts.transitions.iter().sum(),
            snapshot_crc32: crc32(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_fingerprint_distinguishes_different_counters() {
        // Regression: the fingerprint used to CRC the snapshot *with*
        // its trailing CRC, which is the constant CRC-32 residue
        // (0x2144DF1C reflected) for every message — all states
        // "matched". It must vary with content and be stable across
        // encode/decode.
        let empty = AggregateCounts::new(16);
        let mut one = AggregateCounts::new(16);
        one.num_reports = 1;
        one.occupancy[3] = 1;
        let mut two = one.clone();
        two.occupancy[3] = 2;
        let f = |c: &AggregateCounts| CountsSummary::of(c).snapshot_crc32;
        assert_ne!(f(&empty), f(&one));
        assert_ne!(f(&one), f(&two));
        let roundtrip = AggregateCounts::decode_snapshot(&one.encode_snapshot()).unwrap();
        assert_eq!(f(&one), f(&roundtrip), "fingerprint stable across codec");
    }
}

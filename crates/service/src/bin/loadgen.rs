//! Deterministic load generator for the ingestion service.
//!
//! ```text
//! loadgen (--addr HOST:PORT | --connect HOST:PORT ...) --reports N --regions R
//!         [--connections C] [--batch B] [--len L] [--eps E] [--seed S]
//!         [--t-base T] [--t-step S]
//! ```
//!
//! Generates `N` synthetic reports over a universe of `R` regions
//! (deterministic in `--seed`, no dataset required), streams them over
//! `C` parallel connections, and prints a JSON summary with achieved
//! reports/s. Exits non-zero if any report went un-acked — which makes
//! it a durability assertion, not just a traffic source.
//!
//! `--batch B` packs up to `B` reports per `TSR4` batch frame (default 1
//! = classic single-report frames). Either way each connection
//! pre-encodes its whole slice once before the first byte hits the
//! socket, so the measured rate is the wire + server path, not client
//! serialization.
//!
//! `--connect` is repeatable: connections are assigned round-robin
//! across every given target, which drives N `ingestd` workers directly
//! — the no-router baseline the cluster soak compares `routerd`
//! against. `--addr` is a synonym for a single `--connect`.
//!
//! Report `i` carries timestamp `t-base + i · t-step` (both default 0),
//! so a streaming server's window ring can be driven deterministically:
//! `--t-base 60` with a 60-unit window puts the whole batch in window 1.
//!
//! `--follow-grants` switches to the closed-loop mode: one grant-session
//! connection subscribes to the server's `TSGB` announcements, waits for
//! each window's ε′ grant, and only then generates + streams that
//! window's slice of reports *randomized at exactly the granted ε′* —
//! so the server's accountant debits precisely what it allocated and
//! budget refusals stay at zero by construction. Requires
//! `--window-len` (the server's window length, to map granted window →
//! report timestamps); `--grant-windows K` picks how many consecutive
//! grants to fill (default 3) and `--grant-wait S` the per-grant
//! timeout. Works against a grant-running `ingestd` or `routerd`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};
use trajshare_aggregate::{nano_to_eps, Report};
use trajshare_service::{encode_wire, encode_wire_multi, stream_wires, GrantClient};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --connect HOST:PORT ...) --reports N --regions R \
         [--connections C] [--batch B] [--len L] [--eps E] [--seed S] [--t-base T] [--t-step S] \
         [--follow-grants --window-len W [--grant-windows K] [--grant-wait S]]"
    );
    std::process::exit(2)
}

/// Splitmix-style index mix, matching the repo's deterministic seeding
/// idiom.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn toy_report(i: u64, regions: u32, len: u16, eps: f64, seed: u64, t: u64) -> Report {
    let pick = |j: u64| (mix(seed, i.wrapping_mul(131).wrapping_add(j)) % regions as u64) as u32;
    let path: Vec<u32> = (0..len as u64).map(pick).collect();
    let unigrams: Vec<(u16, u32)> = path
        .iter()
        .enumerate()
        .map(|(p, &r)| (p as u16, r))
        .collect();
    Report {
        t,
        eps_prime: eps,
        len,
        unigrams: unigrams.clone(),
        exact: unigrams,
        transitions: path.windows(2).map(|w| (w[0], w[1])).collect(),
    }
}

fn main() {
    let mut targets: Vec<SocketAddr> = Vec::new();
    let mut reports: Option<usize> = None;
    let mut regions: Option<u32> = None;
    let mut connections = 4usize;
    let mut batch = 1usize;
    let mut len = 3u16;
    let mut eps = 1.0f64;
    let mut seed = 7u64;
    let mut t_base = 0u64;
    let mut t_step = 0u64;
    let mut follow_grants = false;
    let mut window_len: Option<u64> = None;
    let mut grant_windows = 3usize;
    let mut grant_wait = 30u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--follow-grants" {
            follow_grants = true;
            continue;
        }
        let Some(v) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" | "--connect" => targets.push(v.parse().unwrap_or_else(|_| usage())),
            "--reports" => reports = v.parse().ok(),
            "--regions" => regions = v.parse().ok(),
            "--connections" => connections = v.parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = v.parse().unwrap_or_else(|_| usage()),
            "--len" => len = v.parse().unwrap_or_else(|_| usage()),
            "--eps" => eps = v.parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = v.parse().unwrap_or_else(|_| usage()),
            "--t-base" => t_base = v.parse().unwrap_or_else(|_| usage()),
            "--t-step" => t_step = v.parse().unwrap_or_else(|_| usage()),
            "--window-len" => window_len = v.parse().ok(),
            "--grant-windows" => grant_windows = v.parse().unwrap_or_else(|_| usage()),
            "--grant-wait" => grant_wait = v.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(n), Some(regions)) = (reports, regions) else {
        usage()
    };
    if targets.is_empty() || regions == 0 || len == 0 {
        usage()
    }

    if follow_grants {
        let Some(window_len) = window_len.filter(|&w| w > 0) else {
            eprintln!("loadgen: --follow-grants requires --window-len > 0");
            usage()
        };
        run_follow_grants(
            targets[0],
            n,
            regions,
            len,
            seed,
            batch.max(1),
            window_len,
            grant_windows.max(1),
            Duration::from_secs(grant_wait),
        );
        return;
    }

    let stream: Vec<Report> = (0..n as u64)
        .map(|i| {
            toy_report(
                i,
                regions,
                len,
                eps,
                seed,
                t_base.saturating_add(i.saturating_mul(t_step)),
            )
        })
        .collect();
    let t_enc = Instant::now();
    let wires = encode_wire_multi(&targets, &stream, connections.max(1), batch);
    let encode_s = t_enc.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let acked = stream_wires(&wires).expect("streaming failed");
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{{\"sent\": {n}, \"acked\": {acked}, \"encode_s\": {encode_s:.3}, \"secs\": {secs:.3}, \
         \"reports_per_s\": {:.0}}}",
        acked as f64 / secs.max(1e-9)
    );
    if acked != n as u64 {
        eprintln!("loadgen: {} of {n} reports un-acked", n as u64 - acked);
        std::process::exit(1);
    }
}

/// The closed-loop driver: subscribe, then for each of `grant_windows`
/// consecutive windows wait for the allocator's ε′ grant and stream that
/// window's slice of reports randomized at exactly the granted ε′.
#[allow(clippy::too_many_arguments)]
fn run_follow_grants(
    addr: SocketAddr,
    n: usize,
    regions: u32,
    len: u16,
    seed: u64,
    batch: usize,
    window_len: u64,
    grant_windows: usize,
    wait: Duration,
) {
    let mut client = GrantClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("loadgen: connect {addr}: {e}");
        std::process::exit(1);
    });
    let t0 = Instant::now();
    let mut sent = 0u64;
    let mut min_window = 0u64;
    let mut filled: Vec<(u64, f64)> = Vec::new();
    for k in 0..grant_windows {
        let grant = match client.wait_grant(min_window, wait) {
            Ok(Some(g)) => g,
            Ok(None) => {
                eprintln!("loadgen: timed out waiting for a grant covering window >= {min_window}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("loadgen: grant session failed: {e}");
                std::process::exit(1);
            }
        };
        let g_eps = nano_to_eps(grant.granted_nano);
        let count = n / grant_windows + usize::from(k < n % grant_windows);
        let slice: Vec<Report> = (0..count as u64)
            .map(|i| {
                let idx = sent + i;
                // Spread timestamps across the granted window so the
                // whole slice lands in (and only in) that window.
                let t = grant.window * window_len + idx % window_len;
                toy_report(idx, regions, len, g_eps, seed, t)
            })
            .collect();
        if let Err(e) = client.send(&encode_wire(&slice, batch)) {
            eprintln!("loadgen: send failed: {e}");
            std::process::exit(1);
        }
        sent += count as u64;
        filled.push((grant.window, g_eps));
        min_window = grant.window + 1;
    }
    let (acked, grants) = client.finish().unwrap_or_else(|e| {
        eprintln!("loadgen: finish failed: {e}");
        std::process::exit(1);
    });
    let secs = t0.elapsed().as_secs_f64();
    let windows_json: Vec<String> = filled
        .iter()
        .map(|(w, e)| format!("{{\"window\": {w}, \"eps\": {e:.6}}}"))
        .collect();
    println!(
        "{{\"sent\": {sent}, \"acked\": {acked}, \"secs\": {secs:.3}, \
         \"reports_per_s\": {:.0}, \"grants_seen\": {}, \"windows\": [{}]}}",
        acked as f64 / secs.max(1e-9),
        grants.len(),
        windows_json.join(", ")
    );
    if acked != sent {
        eprintln!("loadgen: {} of {sent} reports un-acked", sent - acked);
        std::process::exit(1);
    }
}

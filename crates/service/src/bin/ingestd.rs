//! The ingestion daemon.
//!
//! ```text
//! ingestd --data-dir DIR --regions N [--addr 127.0.0.1:7070]
//!         [--workers W] [--snapshot-every K] [--wal-flush-every F]
//!         [--read-timeout-ms MS]
//!         [--fsync-records N] [--fsync-ms MS]         # group-commit fsync
//!         [--wal-max-bytes B]                         # online compaction
//!         [--window-len U --windows W]                # streaming windows
//!         [--publish-every-ms MS] [--server-clock]
//!         [--max-conn-advance N] [--backend dense|blocked|sparse-w2]
//!         [--dump-counts]
//! ```
//!
//! Without a dataset at hand the universe is given as `--regions N`
//! (tiles default to hour 0); embedded deployments construct
//! `ServerConfig` with real `region_tiles` instead. `--dump-counts` runs
//! recovery only and prints a JSON fingerprint of the restored counters
//! (including the restored window ring when `--window-len`/`--windows`
//! are given) — the CI smoke test's verification hook.
//!
//! With `--window-len`/`--windows` the server runs the streaming
//! workload: timestamped reports land in a sliding window ring and every
//! `--publish-every-ms` the daemon prints one `published ...` line with
//! the merged window view. `--server-clock` stamps timestamps at the
//! collector edge (seconds since the Unix epoch; for deployments that
//! cannot trust device clocks), `--max-conn-advance N` bounds how many
//! windows a single connection may advance the watermark, and
//! `--backend` picks the estimation kernels used by embedded
//! deployments calling `ServerHandle::estimate_window_model` (a
//! dataset-less daemon has no region graph, so the flag is recorded for
//! them rather than exercised here).

use std::net::SocketAddr;
use std::time::Duration;
use trajshare_aggregate::{EstimatorBackend, WindowConfig};
use trajshare_service::{
    CountsSummary, IngestServer, ServerConfig, StreamServerConfig, SyncPolicy,
};

fn usage() -> ! {
    eprintln!(
        "usage: ingestd --data-dir DIR --regions N [--addr HOST:PORT] [--workers W] \
         [--snapshot-every K] [--wal-flush-every F] [--read-timeout-ms MS] \
         [--fsync-records N] [--fsync-ms MS] [--wal-max-bytes B] \
         [--window-len U --windows W] [--publish-every-ms MS] [--server-clock] \
         [--max-conn-advance N] [--backend dense|blocked|sparse-w2] [--dump-counts]"
    );
    std::process::exit(2)
}

/// Strict flag-value parsing: a value that does not parse is a usage
/// error, never a silent fallback to a default.
fn parsed<T: std::str::FromStr>(v: String) -> T {
    v.parse().unwrap_or_else(|_| usage())
}

/// The recovered-state fingerprint `--dump-counts` prints.
#[derive(serde::Serialize)]
struct DumpSummary {
    counts: CountsSummary,
    /// `(window id, reports)` of every restored live window (streaming
    /// deployments only).
    windows: Option<Vec<WindowSummary>>,
    newest_window: Option<u64>,
}

#[derive(serde::Serialize)]
struct WindowSummary {
    window: u64,
    reports: u64,
}

fn main() {
    let mut data_dir: Option<String> = None;
    let mut regions: Option<usize> = None;
    let mut addr: SocketAddr = "127.0.0.1:7070".parse().unwrap();
    let mut workers: Option<usize> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut wal_flush_every: Option<u32> = None;
    let mut read_timeout_ms: Option<u64> = None;
    let mut fsync_records: Option<u32> = None;
    let mut fsync_ms: Option<u64> = None;
    let mut wal_max_bytes: Option<u64> = None;
    let mut window_len: Option<u64> = None;
    let mut windows: Option<usize> = None;
    let mut publish_every_ms: u64 = 1_000;
    let mut server_clock = false;
    let mut max_conn_advance: Option<u64> = None;
    let mut backend = EstimatorBackend::default();
    let mut dump_counts = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| match args.next() {
            Some(v) => v,
            None => usage(),
        };
        match flag.as_str() {
            "--data-dir" => data_dir = Some(value(&mut args)),
            "--regions" => regions = Some(parsed(value(&mut args))),
            "--addr" => addr = parsed(value(&mut args)),
            "--workers" => workers = Some(parsed(value(&mut args))),
            "--snapshot-every" => snapshot_every = Some(parsed(value(&mut args))),
            "--wal-flush-every" => wal_flush_every = Some(parsed(value(&mut args))),
            "--read-timeout-ms" => read_timeout_ms = Some(parsed(value(&mut args))),
            "--fsync-records" => fsync_records = Some(parsed(value(&mut args))),
            "--fsync-ms" => fsync_ms = Some(parsed(value(&mut args))),
            "--wal-max-bytes" => wal_max_bytes = Some(parsed(value(&mut args))),
            "--window-len" => window_len = Some(parsed(value(&mut args))),
            "--windows" => windows = Some(parsed(value(&mut args))),
            "--publish-every-ms" => publish_every_ms = parsed(value(&mut args)),
            "--server-clock" => server_clock = true,
            "--max-conn-advance" => max_conn_advance = Some(parsed(value(&mut args))),
            "--backend" => {
                backend = EstimatorBackend::parse(&value(&mut args)).unwrap_or_else(|| usage())
            }
            "--dump-counts" => dump_counts = true,
            _ => usage(),
        }
    }
    let (Some(data_dir), Some(regions)) = (data_dir, regions) else {
        usage()
    };
    if regions == 0 {
        usage()
    }
    let tiles = vec![0u16; regions];
    let window = match (window_len, windows) {
        (Some(len), Some(n)) if len >= 1 && n >= 1 => Some(WindowConfig {
            window_len: len,
            num_windows: n,
        }),
        (None, None) => None,
        _ => usage(), // both or neither
    };

    if dump_counts {
        // Read-only reconstruction: inspecting a data directory must
        // never compact it (and the dir lock refuses to race a live
        // server at all).
        let rec = trajshare_service::load(std::path::Path::new(&data_dir), &tiles, window)
            .unwrap_or_else(|e| {
                eprintln!("ingestd: cannot load {data_dir}: {e}");
                std::process::exit(1)
            });
        let summary = DumpSummary {
            counts: CountsSummary::of(&rec.counts),
            windows: rec.ring.as_ref().map(|r| {
                r.windows()
                    .iter()
                    .map(|(id, c)| WindowSummary {
                        window: *id,
                        reports: c.num_reports,
                    })
                    .collect()
            }),
            newest_window: rec.ring.as_ref().map(|r| r.newest_window()),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("serialize summary")
        );
        return;
    }

    let mut config = ServerConfig::new(&data_dir, tiles);
    config.addr = addr;
    if let Some(w) = workers {
        config.workers = w.max(1);
    }
    if let Some(k) = snapshot_every {
        config.snapshot_every = k.max(1);
    }
    if let Some(f) = wal_flush_every {
        config.wal_flush_every = f.max(1);
    }
    if let Some(ms) = read_timeout_ms {
        config.read_timeout = Duration::from_millis(ms.max(1));
    }
    if fsync_records.is_some() || fsync_ms.is_some() {
        config.sync_policy = SyncPolicy::GroupCommit {
            records: fsync_records.unwrap_or(64).max(1),
            max_delay: Duration::from_millis(fsync_ms.unwrap_or(50)),
        };
    }
    if let Some(b) = wal_max_bytes {
        config.wal_max_bytes = b.max(1);
    }
    config.stream = window.map(|w| StreamServerConfig {
        window: w,
        publish_every: Duration::from_millis(publish_every_ms.max(10)),
        server_clock,
        max_conn_advance: max_conn_advance.unwrap_or(u64::MAX),
        backend,
    });

    let streaming = config.stream.is_some();
    let stream_desc = config.stream.as_ref().map(|s| {
        format!(
            ", streaming: clock={} advance-budget={} backend={}",
            if s.server_clock { "server" } else { "client" },
            if s.max_conn_advance == u64::MAX {
                "unlimited".to_string()
            } else {
                s.max_conn_advance.to_string()
            },
            s.backend,
        )
    });
    let handle = IngestServer::start(config).unwrap_or_else(|e| {
        eprintln!("ingestd: cannot start: {e}");
        std::process::exit(1)
    });
    let rec = handle.recovery();
    println!(
        "ingestd listening on {} (gen {}, recovered {} reports, {} replayed from log, {} windows restored{})",
        handle.addr(),
        rec.generation,
        rec.recovered_reports,
        rec.replayed_reports,
        rec.restored_windows,
        stream_desc.as_deref().unwrap_or(""),
    );
    // Park; SIGTERM/SIGKILL is the stop signal, and recovery is the
    // restart path — that asymmetry is exactly what the durability
    // design is for. When streaming, relay each publication to stdout
    // so operators (and the CI smoke test) see the live window view.
    let mut printed_seq = 0u64;
    loop {
        if streaming {
            if let Some(p) = handle.latest_publication() {
                if p.seq > printed_seq {
                    printed_seq = p.seq;
                    let windows: Vec<String> = p
                        .windows
                        .iter()
                        .map(|(id, n)| format!("{id}:{n}"))
                        .collect();
                    println!(
                        "published seq={} newest={} oldest={} merged_reports={} late={} windows=[{}]",
                        p.seq,
                        p.newest_window,
                        p.oldest_window,
                        p.merged_reports,
                        p.late_reports,
                        windows.join(" ")
                    );
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        } else {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}

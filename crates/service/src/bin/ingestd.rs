//! The ingestion daemon.
//!
//! ```text
//! ingestd --data-dir DIR (--regions N | --region-graph FILE)
//!         [--addr 127.0.0.1:7070]
//!         [--workers W] [--snapshot-every K] [--wal-flush-every F]
//!         [--read-timeout-ms MS]
//!         [--fsync-records N] [--fsync-ms MS]         # group-commit fsync
//!         [--wal-max-bytes B]                         # online compaction
//!         [--window-len U --windows W]                # streaming windows
//!         [--publish-every-ms MS] [--server-clock]
//!         [--max-conn-advance N] [--backend dense|blocked|sparse-w2]
//!         [--budget-eps E] [--budget-window W]        # w-window ε budget
//!         [--budget-policy uniform|adaptive]
//!         [--grants]                                  # TSGB grant session
//!         [--export-addr HOST:PORT]                   # cluster snapshot export
//!         [--dump-counts]
//! ```
//!
//! The region universe comes from either `--regions N` (bare universe,
//! tiles default to hour 0 — aggregation only) or `--region-graph FILE`
//! (a `TSRG` blob from `trajshare_core::write_region_graph_file`,
//! carrying the public distance matrix, hour tiles, and `W₂`). With a
//! graph the daemon is a *complete* dataset-less deployment: every
//! publication tick it also runs `ServerHandle::estimate_window_model`
//! on the configured `--backend` and prints one `model …` line with the
//! live per-window estimate summary.
//!
//! With `--window-len`/`--windows` the server runs the streaming
//! workload: timestamped reports land in a sliding window ring and every
//! `--publish-every-ms` the daemon prints one `published ...` line with
//! the merged window view. `--server-clock` stamps timestamps at the
//! collector edge, and `--max-conn-advance N` bounds how many windows a
//! single connection may advance the watermark.
//!
//! `--budget-eps E` enforces the continuous-publication privacy budget:
//! over any `--budget-window` (default: the ring depth) consecutive
//! windows, published per-user spend stays ≤ E, with per-window shares
//! chosen by `--budget-policy` (RetraSyn-style `adaptive` reallocates
//! unspent budget from quiet windows to shifting ones). Refused windows
//! are excluded from model estimates and visible in the `published`
//! lines.
//!
//! `--grants` closes that loop: the maintenance thread pre-allocates the
//! *next* window's ε′ every publication tick and pushes it as a `TSGB`
//! frame down every connection that subscribed with a `TSGH` hello
//! (`loadgen --follow-grants`, `GrantClient`). Honest clients randomize
//! at exactly the granted rate, so settlement observes spend == grant
//! and refusals become the asserted-near-zero exception path. With a
//! `--region-graph` the allocator's change detector also upgrades from
//! raw occupancy to significance-tested *debiased* per-window
//! posteriors. A cluster worker runs `--grants` without `--budget-eps`:
//! its grants arrive from the coordinator, relayed by `routerd` over
//! the `TSCL` export listener.
//!
//! `--export-addr` opens the cluster snapshot-export listener: a
//! `routerd` coordinator connects there and pulls this worker's merged
//! counter + ring state over the `TSCL` protocol
//! (`trajshare_aggregate::clusterproto`), which is what lets N workers
//! behind a router publish as one exactly-merged cluster.
//!
//! `--dump-counts` runs recovery only and prints a JSON fingerprint of
//! the restored state: counters, the window ring (with per-window budget
//! spends), and the restored budget ledger. Windows and budget decisions
//! are sorted by window id, so two workers' dumps (or one worker's dump
//! before and after a restart) diff cleanly.

use std::net::SocketAddr;
use std::time::Duration;
use trajshare_aggregate::{
    eps_to_nano, nano_to_eps, AllocationPolicy, EstimatorBackend, WindowBudgetConfig, WindowConfig,
};
use trajshare_core::{read_region_graph_file, RegionGraph};
use trajshare_service::{
    CountsSummary, IngestServer, ServerConfig, StreamServerConfig, SyncPolicy,
};

fn usage() -> ! {
    eprintln!(
        "usage: ingestd --data-dir DIR (--regions N | --region-graph FILE) [--addr HOST:PORT] \
         [--workers W] [--snapshot-every K] [--wal-flush-every F] [--read-timeout-ms MS] \
         [--fsync-records N] [--fsync-ms MS] [--wal-max-bytes B] \
         [--window-len U --windows W] [--publish-every-ms MS] [--server-clock] \
         [--max-conn-advance N] [--backend dense|blocked|sparse-w2] \
         [--budget-eps E] [--budget-window W] [--budget-policy uniform|adaptive] \
         [--grants] [--export-addr HOST:PORT] [--profile] [--dump-counts]"
    );
    std::process::exit(2)
}

/// Strict flag-value parsing: a value that does not parse is a usage
/// error, never a silent fallback to a default.
fn parsed<T: std::str::FromStr>(v: String) -> T {
    v.parse().unwrap_or_else(|_| usage())
}

/// The recovered-state fingerprint `--dump-counts` prints.
#[derive(serde::Serialize)]
struct DumpSummary {
    counts: CountsSummary,
    /// Restored live windows (streaming deployments only).
    windows: Option<Vec<WindowSummary>>,
    newest_window: Option<u64>,
    /// Restored budget ledger (budgeted deployments only).
    budget: Option<BudgetDump>,
}

#[derive(serde::Serialize)]
struct WindowSummary {
    window: u64,
    reports: u64,
    /// Budget spend recorded for the window, ε (0 when unbudgeted).
    spent_eps: f64,
}

#[derive(serde::Serialize)]
struct BudgetDump {
    total_eps: f64,
    horizon: usize,
    policy: String,
    sliding_spent_eps: f64,
    refused_windows: u64,
    recycled_eps: f64,
    /// Refused decisions over the whole grant *history* (outlives the
    /// ledger horizon) — the closed-loop health number the CI smoke
    /// asserts stays 0 under `--grants` + `loadgen --follow-grants`.
    budget_refusals: u64,
    /// The allocation epoch the next grant will carry.
    current_epoch: u64,
    decisions: Vec<DecisionDump>,
    /// The trailing grant history — every allocation the ledger made
    /// (window, epoch, granted ε′, settled max ε′), oldest first,
    /// retained past both the ledger horizon and the ring depth.
    grants: Vec<GrantDump>,
}

#[derive(serde::Serialize)]
struct DecisionDump {
    window: u64,
    granted_eps: f64,
    spent_eps: f64,
    refused: bool,
}

#[derive(serde::Serialize)]
struct GrantDump {
    window: u64,
    epoch: u64,
    granted_eps: f64,
    settled_eps: f64,
    refused: bool,
}

/// One-line live summary of a freshly estimated window model: the top
/// occupancy regions plus how much feasible transition mass the model
/// carries — enough for an operator (or the CI smoke) to see estimation
/// working end to end without a dataset anywhere near the daemon.
fn model_summary(model: &trajshare_aggregate::MobilityModel) -> String {
    let mut top: Vec<(usize, f64)> = model
        .occupancy
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, p)| p > 0.0)
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    top.truncate(3);
    let top: Vec<String> = top.iter().map(|(r, p)| format!("{r}:{:.3}", p)).collect();
    let trans_nnz = model.transition.iter().filter(|&&p| p > 0.0).count();
    format!(
        "debiased={} occ_top=[{}] trans_nnz={trans_nnz}",
        model.debiased,
        top.join(" ")
    )
}

fn main() {
    let mut data_dir: Option<String> = None;
    let mut regions: Option<usize> = None;
    let mut region_graph: Option<String> = None;
    let mut addr: SocketAddr = "127.0.0.1:7070".parse().unwrap();
    let mut workers: Option<usize> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut wal_flush_every: Option<u32> = None;
    let mut read_timeout_ms: Option<u64> = None;
    let mut fsync_records: Option<u32> = None;
    let mut fsync_ms: Option<u64> = None;
    let mut wal_max_bytes: Option<u64> = None;
    let mut window_len: Option<u64> = None;
    let mut windows: Option<usize> = None;
    let mut publish_every_ms: u64 = 1_000;
    let mut server_clock = false;
    let mut max_conn_advance: Option<u64> = None;
    let mut backend = EstimatorBackend::default();
    let mut budget_eps: Option<f64> = None;
    let mut budget_window: Option<usize> = None;
    let mut budget_policy = AllocationPolicy::Uniform;
    let mut grants = false;
    let mut export_addr: Option<SocketAddr> = None;
    let mut profile = false;
    let mut dump_counts = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| match args.next() {
            Some(v) => v,
            None => usage(),
        };
        match flag.as_str() {
            "--data-dir" => data_dir = Some(value(&mut args)),
            "--regions" => regions = Some(parsed(value(&mut args))),
            "--region-graph" => region_graph = Some(value(&mut args)),
            "--addr" => addr = parsed(value(&mut args)),
            "--workers" => workers = Some(parsed(value(&mut args))),
            "--snapshot-every" => snapshot_every = Some(parsed(value(&mut args))),
            "--wal-flush-every" => wal_flush_every = Some(parsed(value(&mut args))),
            "--read-timeout-ms" => read_timeout_ms = Some(parsed(value(&mut args))),
            "--fsync-records" => fsync_records = Some(parsed(value(&mut args))),
            "--fsync-ms" => fsync_ms = Some(parsed(value(&mut args))),
            "--wal-max-bytes" => wal_max_bytes = Some(parsed(value(&mut args))),
            "--window-len" => window_len = Some(parsed(value(&mut args))),
            "--windows" => windows = Some(parsed(value(&mut args))),
            "--publish-every-ms" => publish_every_ms = parsed(value(&mut args)),
            "--server-clock" => server_clock = true,
            "--max-conn-advance" => max_conn_advance = Some(parsed(value(&mut args))),
            "--backend" => {
                backend = EstimatorBackend::parse(&value(&mut args)).unwrap_or_else(|| usage())
            }
            "--budget-eps" => budget_eps = Some(parsed(value(&mut args))),
            "--budget-window" => budget_window = Some(parsed(value(&mut args))),
            "--budget-policy" => {
                budget_policy =
                    AllocationPolicy::parse(&value(&mut args)).unwrap_or_else(|| usage())
            }
            "--grants" => grants = true,
            "--export-addr" => export_addr = Some(parsed(value(&mut args))),
            "--profile" => profile = true,
            "--dump-counts" => dump_counts = true,
            _ => usage(),
        }
    }
    let Some(data_dir) = data_dir else { usage() };

    // The public universe: a bare `--regions N` (tiles default to hour
    // 0), or the full region-graph file, which also enables live model
    // estimation. Given both, they must agree.
    let graph: Option<std::sync::Arc<RegionGraph>>;
    let tiles: Vec<u16>;
    match &region_graph {
        Some(path) => {
            let (g, t) = read_region_graph_file(std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("ingestd: cannot load region graph: {e}");
                std::process::exit(1)
            });
            if regions.is_some_and(|n| n != t.len()) {
                eprintln!(
                    "ingestd: --regions {} disagrees with the graph's universe of {}",
                    regions.unwrap(),
                    t.len()
                );
                std::process::exit(1)
            }
            tiles = t;
            graph = Some(std::sync::Arc::new(g));
        }
        None => {
            let Some(n) = regions else { usage() };
            if n == 0 {
                usage()
            }
            tiles = vec![0u16; n];
            graph = None;
        }
    }

    let window = match (window_len, windows) {
        (Some(len), Some(n)) if len >= 1 && n >= 1 => Some(WindowConfig {
            window_len: len,
            num_windows: n,
        }),
        (None, None) => None,
        _ => usage(), // both or neither
    };
    let budget = match (budget_eps, window) {
        (Some(eps), Some(w)) => {
            let total_nano = eps_to_nano(eps);
            if total_nano == 0 {
                usage()
            }
            Some(WindowBudgetConfig::new(
                total_nano,
                budget_window.unwrap_or(w.num_windows).max(1),
                budget_policy,
            ))
        }
        (Some(_), None) => usage(), // budget needs the streaming workload
        (None, _) => None,
    };

    if dump_counts {
        // Read-only reconstruction: inspecting a data directory must
        // never compact it (and the dir lock refuses to race a live
        // server at all).
        let rec = trajshare_service::load(std::path::Path::new(&data_dir), &tiles, window)
            .unwrap_or_else(|e| {
                eprintln!("ingestd: cannot load {data_dir}: {e}");
                std::process::exit(1)
            });
        let summary = DumpSummary {
            counts: CountsSummary::of(&rec.counts),
            windows: rec.ring.as_ref().map(|r| {
                // Sorted by window id here, not by trusting the ring's
                // internal iteration order: cluster CI diffs worker
                // dumps, so the output ordering is part of the contract.
                let mut rows: Vec<WindowSummary> = r
                    .windows()
                    .iter()
                    .map(|(id, c)| WindowSummary {
                        window: *id,
                        reports: c.num_reports,
                        spent_eps: nano_to_eps(r.window_spend(*id)),
                    })
                    .collect();
                rows.sort_by_key(|w| w.window);
                rows
            }),
            newest_window: rec.ring.as_ref().map(|r| r.newest_window()),
            budget: rec.budget.as_ref().map(|acct| BudgetDump {
                total_eps: nano_to_eps(acct.config().total_nano),
                horizon: acct.config().horizon,
                policy: acct.config().policy.name().to_string(),
                sliding_spent_eps: nano_to_eps(acct.sliding_spend_nano()),
                refused_windows: acct.refused_windows(),
                recycled_eps: nano_to_eps(acct.recycled_nano()),
                budget_refusals: acct.grant_history().filter(|r| r.refused).count() as u64,
                current_epoch: acct.current_epoch(),
                grants: acct
                    .grant_history()
                    .map(|r| GrantDump {
                        window: r.window,
                        epoch: r.epoch,
                        granted_eps: nano_to_eps(r.granted_nano),
                        settled_eps: nano_to_eps(r.settled_nano),
                        refused: r.refused,
                    })
                    .collect(),
                decisions: {
                    // Same contract as the window list: sorted by
                    // window id regardless of ledger iteration order.
                    let mut rows: Vec<DecisionDump> = acct
                        .decisions()
                        .map(|d| DecisionDump {
                            window: d.window,
                            granted_eps: nano_to_eps(d.granted_nano),
                            spent_eps: nano_to_eps(d.spent_nano),
                            refused: d.refused,
                        })
                        .collect();
                    rows.sort_by_key(|d| d.window);
                    rows
                },
            }),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("serialize summary")
        );
        return;
    }

    let mut config = ServerConfig::new(&data_dir, tiles);
    config.addr = addr;
    if let Some(w) = workers {
        config.workers = w.max(1);
    }
    if let Some(k) = snapshot_every {
        config.snapshot_every = k.max(1);
    }
    if let Some(f) = wal_flush_every {
        config.wal_flush_every = f.max(1);
    }
    if let Some(ms) = read_timeout_ms {
        config.read_timeout = Duration::from_millis(ms.max(1));
    }
    if fsync_records.is_some() || fsync_ms.is_some() {
        config.sync_policy = SyncPolicy::GroupCommit {
            records: fsync_records.unwrap_or(64).max(1),
            max_delay: Duration::from_millis(fsync_ms.unwrap_or(50)),
        };
    }
    if let Some(b) = wal_max_bytes {
        config.wal_max_bytes = b.max(1);
    }
    config.export_addr = export_addr;
    config.profile = profile;
    config.stream = window.map(|w| StreamServerConfig {
        window: w,
        publish_every: Duration::from_millis(publish_every_ms.max(10)),
        server_clock,
        max_conn_advance: max_conn_advance.unwrap_or(u64::MAX),
        backend,
        budget,
        grants,
        graph: graph.clone(),
    });

    let streaming = config.stream.is_some();
    let stream_desc = config.stream.as_ref().map(|s| {
        let budget_desc = s.budget.map_or("off".to_string(), |b| {
            format!("{}ε/{}w {}", nano_to_eps(b.total_nano), b.horizon, b.policy)
        });
        format!(
            ", streaming: clock={} advance-budget={} backend={} budget={} grants={}",
            if s.server_clock { "server" } else { "client" },
            if s.max_conn_advance == u64::MAX {
                "unlimited".to_string()
            } else {
                s.max_conn_advance.to_string()
            },
            s.backend,
            budget_desc,
            if s.grants { "on" } else { "off" },
        )
    });
    let handle = IngestServer::start(config).unwrap_or_else(|e| {
        eprintln!("ingestd: cannot start: {e}");
        std::process::exit(1)
    });
    let rec = handle.recovery();
    println!(
        "ingestd listening on {} (gen {}, recovered {} reports, {} replayed from log, {} windows restored{}{})",
        handle.addr(),
        rec.generation,
        rec.recovered_reports,
        rec.replayed_reports,
        rec.restored_windows,
        stream_desc.as_deref().unwrap_or(""),
        if graph.is_some() {
            ", region graph loaded"
        } else {
            ""
        },
    );
    if let Some(export) = handle.export_addr() {
        println!("ingestd exporting cluster snapshots on {export}");
    }
    // Park; SIGTERM/SIGKILL is the stop signal, and recovery is the
    // restart path — that asymmetry is exactly what the durability
    // design is for. When streaming, relay each publication to stdout
    // so operators (and the CI smoke test) see the live window view —
    // and, with a region graph, the live model estimate. With
    // `--profile`, a per-stage cost line every couple of seconds while
    // batches keep arriving.
    let mut printed_seq = 0u64;
    let mut profiled_batches = 0u64;
    let mut profile_tick = std::time::Instant::now();
    loop {
        if profile && profile_tick.elapsed() >= Duration::from_secs(2) {
            profile_tick = std::time::Instant::now();
            if let Some(p) = handle.ingest_profile() {
                if p.batches > profiled_batches && p.reports > 0 {
                    profiled_batches = p.batches;
                    println!(
                        "profile reports={} batches={} per-report ns: decode={} validate={} wal={} accumulate={} ack={}",
                        p.reports,
                        p.batches,
                        p.decode_ns / p.reports,
                        p.validate_ns / p.reports,
                        p.wal_ns / p.reports,
                        p.accumulate_ns / p.reports,
                        p.ack_ns / p.reports,
                    );
                }
            }
        }
        if streaming {
            if let Some(p) = handle.latest_publication() {
                if p.seq > printed_seq {
                    printed_seq = p.seq;
                    let windows: Vec<String> = p
                        .windows
                        .iter()
                        .map(|(id, n)| format!("{id}:{n}"))
                        .collect();
                    let budget_desc = p.budget.as_ref().map_or(String::new(), |b| {
                        format!(
                            " budget[spent={:.3}/{}ε grant={:.3} refused={}]",
                            nano_to_eps(b.sliding_spent_nano),
                            nano_to_eps(b.total_nano),
                            nano_to_eps(b.newest_granted_nano),
                            b.refused_windows,
                        )
                    });
                    println!(
                        "published seq={} newest={} oldest={} merged_reports={} late={} windows=[{}]{}",
                        p.seq,
                        p.newest_window,
                        p.oldest_window,
                        p.merged_reports,
                        p.late_reports,
                        windows.join(" "),
                        budget_desc,
                    );
                    if let Some(g) = handle.latest_grant() {
                        println!(
                            "grant seq={} epoch={} window={} eps={:.3}",
                            p.seq,
                            g.epoch,
                            g.window,
                            nano_to_eps(g.granted_nano),
                        );
                    }
                    if let Some(graph) = &graph {
                        if let Some(model) = handle.estimate_window_model(graph) {
                            println!(
                                "model seq={} newest={} {}",
                                p.seq,
                                p.newest_window,
                                model_summary(&model)
                            );
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        } else if profile {
            std::thread::sleep(Duration::from_millis(500));
        } else {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}

//! The ingestion daemon.
//!
//! ```text
//! ingestd --data-dir DIR --regions N [--addr 127.0.0.1:7070]
//!         [--workers W] [--snapshot-every K] [--wal-flush-every F]
//!         [--read-timeout-ms MS] [--dump-counts]
//! ```
//!
//! Without a dataset at hand the universe is given as `--regions N`
//! (tiles default to hour 0); embedded deployments construct
//! `ServerConfig` with real `region_tiles` instead. `--dump-counts` runs
//! recovery only and prints a JSON fingerprint of the restored counters
//! — the CI smoke test's verification hook.

use std::net::SocketAddr;
use std::time::Duration;
use trajshare_service::{CountsSummary, IngestServer, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ingestd --data-dir DIR --regions N [--addr HOST:PORT] [--workers W] \
         [--snapshot-every K] [--wal-flush-every F] [--read-timeout-ms MS] [--dump-counts]"
    );
    std::process::exit(2)
}

/// Strict flag-value parsing: a value that does not parse is a usage
/// error, never a silent fallback to a default.
fn parsed<T: std::str::FromStr>(v: String) -> T {
    v.parse().unwrap_or_else(|_| usage())
}

fn main() {
    let mut data_dir: Option<String> = None;
    let mut regions: Option<usize> = None;
    let mut addr: SocketAddr = "127.0.0.1:7070".parse().unwrap();
    let mut workers: Option<usize> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut wal_flush_every: Option<u32> = None;
    let mut read_timeout_ms: Option<u64> = None;
    let mut dump_counts = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| match args.next() {
            Some(v) => v,
            None => usage(),
        };
        match flag.as_str() {
            "--data-dir" => data_dir = Some(value(&mut args)),
            "--regions" => regions = Some(parsed(value(&mut args))),
            "--addr" => addr = parsed(value(&mut args)),
            "--workers" => workers = Some(parsed(value(&mut args))),
            "--snapshot-every" => snapshot_every = Some(parsed(value(&mut args))),
            "--wal-flush-every" => wal_flush_every = Some(parsed(value(&mut args))),
            "--read-timeout-ms" => read_timeout_ms = Some(parsed(value(&mut args))),
            "--dump-counts" => dump_counts = true,
            _ => usage(),
        }
    }
    let (Some(data_dir), Some(regions)) = (data_dir, regions) else {
        usage()
    };
    if regions == 0 {
        usage()
    }
    let tiles = vec![0u16; regions];

    if dump_counts {
        // Read-only reconstruction: inspecting a data directory must
        // never compact it (and the dir lock refuses to race a live
        // server at all).
        let rec =
            trajshare_service::load(std::path::Path::new(&data_dir), &tiles).unwrap_or_else(|e| {
                eprintln!("ingestd: cannot load {data_dir}: {e}");
                std::process::exit(1)
            });
        let summary = CountsSummary::of(&rec.counts);
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("serialize summary")
        );
        return;
    }

    let mut config = ServerConfig::new(&data_dir, tiles);
    config.addr = addr;
    if let Some(w) = workers {
        config.workers = w.max(1);
    }
    if let Some(k) = snapshot_every {
        config.snapshot_every = k.max(1);
    }
    if let Some(f) = wal_flush_every {
        config.wal_flush_every = f.max(1);
    }
    if let Some(ms) = read_timeout_ms {
        config.read_timeout = Duration::from_millis(ms.max(1));
    }

    let handle = IngestServer::start(config).unwrap_or_else(|e| {
        eprintln!("ingestd: cannot start: {e}");
        std::process::exit(1)
    });
    let rec = handle.recovery();
    println!(
        "ingestd listening on {} (gen {}, recovered {} reports, {} replayed from log)",
        handle.addr(),
        rec.generation,
        rec.recovered_reports,
        rec.replayed_reports
    );
    // Park forever; SIGTERM/SIGKILL is the stop signal, and recovery is
    // the restart path — that asymmetry is exactly what the durability
    // design is for.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

//! The durability layer: per-shard append-only report logs, per-shard
//! counter files, a generation manifest, and the recovery procedure that
//! folds them back into exact counters after a crash or re-shard.
//!
//! ## On-disk layout (all integers little-endian)
//!
//! Inside one data directory:
//!
//! * `MANIFEST` — `"TSMF"`, `u16` version, `u64` generation, `u32` CRC.
//!   Names the authoritative file generation; everything else is garbage
//!   from interrupted runs and is swept on recovery.
//! * `base-<gen>.counts` — a plain [`AggregateCounts`] snapshot (see
//!   `trajshare_aggregate::snapshot`): everything compacted by the last
//!   recovery.
//! * `shard-<gen>-<i>.log` — shard `i`'s write-ahead log. Each record is
//!   `u32` payload length, `u32` CRC-32 of the payload, then the payload
//!   ([`Report::encode`] bytes). A torn tail (crash mid-write) is
//!   detected by the length/CRC pair and cleanly ignored.
//! * `shard-<gen>-<i>.counts` — shard `i`'s periodic counter snapshot:
//!   `"TSSH"`, `u16` version, `u64` WAL byte offset covered, `u32`
//!   header CRC, then the embedded (self-validating) counts snapshot.
//!   Reports logged past the offset are recovered by replaying the log
//!   tail.
//!
//! ## Recovery = snapshot + log tail, then compaction
//!
//! [`recover`] merges `base-<g>.counts`, every `shard-<g>-*.counts`, and
//! each shard's log tail past its covered offset, producing counters
//! bit-identical to an uninterrupted run (all counters are plain `u64`
//! sums, so merge order is immaterial). It then *compacts*: writes the
//! merged result as `base-<g+1>.counts`, atomically flips `MANIFEST` to
//! generation `g+1`, and deletes generation-`g` files. A crash anywhere
//! inside recovery is safe — until the manifest rename lands, generation
//! `g` remains authoritative and the half-built `g+1` files are swept by
//! the next attempt.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use trajshare_aggregate::snapshot::{
    crc32, read_snapshot_file, write_snapshot_file, SnapshotError,
};
use trajshare_aggregate::{AggregateCounts, Aggregator, Report};

/// Manifest magic ("TrajShare ManiFest").
const MANIFEST_MAGIC: [u8; 4] = *b"TSMF";
/// Shard-counts header magic ("TrajShare SHard").
const SHARD_MAGIC: [u8; 4] = *b"TSSH";
/// Version for both service-level file headers.
const STORAGE_VERSION: u16 = 1;
/// WAL record header: payload length + payload CRC.
const WAL_RECORD_HEADER: usize = 8;

/// Path of shard `i`'s write-ahead log in generation `gen`.
pub fn wal_path(dir: &Path, gen: u64, shard: usize) -> PathBuf {
    dir.join(format!("shard-{gen}-{shard}.log"))
}

/// Path of shard `i`'s counter snapshot in generation `gen`.
pub fn shard_counts_path(dir: &Path, gen: u64, shard: usize) -> PathBuf {
    dir.join(format!("shard-{gen}-{shard}.counts"))
}

/// Path of the compacted base snapshot of generation `gen`.
pub fn base_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("base-{gen}.counts"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Reads the authoritative generation, `None` when no manifest exists
/// (fresh directory). A manifest that exists but fails validation is a
/// hard error — guessing a generation could silently double-count.
pub fn read_manifest(dir: &Path) -> std::io::Result<Option<u64>> {
    let bytes = match std::fs::read(manifest_path(dir)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let fail = |msg: &str| Err(std::io::Error::other(format!("MANIFEST invalid: {msg}")));
    if bytes.len() != 4 + 2 + 8 + 4 {
        return fail("wrong size");
    }
    if bytes[0..4] != MANIFEST_MAGIC {
        return fail("bad magic");
    }
    if u16::from_le_bytes(bytes[4..6].try_into().unwrap()) != STORAGE_VERSION {
        return fail("unsupported version");
    }
    let stored = u32::from_le_bytes(bytes[14..18].try_into().unwrap());
    if crc32(&bytes[..14]) != stored {
        return fail("bad CRC");
    }
    Ok(Some(u64::from_le_bytes(bytes[6..14].try_into().unwrap())))
}

/// Atomically points the manifest at `gen` (tmp + fsync + rename).
pub fn write_manifest(dir: &Path, gen: u64) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(18);
    bytes.extend_from_slice(&MANIFEST_MAGIC);
    bytes.extend_from_slice(&STORAGE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&gen.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(tmp, manifest_path(dir))
}

/// Append-only writer for one shard's report log.
///
/// Writes are buffered; [`WalWriter::offset`] counts *appended* bytes
/// (including still-buffered ones), which is the correct coverage value
/// for a counter snapshot taken after [`WalWriter::flush`] — and still
/// safe if buffered bytes are later lost, because the snapshot already
/// accounts for every report up to the offset it records.
pub struct WalWriter {
    inner: BufWriter<File>,
    offset: u64,
    pending: u32,
    flush_every: u32,
    /// Set after any I/O failure. A failed write can leave a partial
    /// record in the stream; appending more records after it would put
    /// acked reports *behind* a torn record, where replay cannot reach
    /// them. Poisoning the writer keeps the ack-means-durable contract:
    /// the shard stops accepting instead of acking into a corrupt log.
    failed: bool,
}

/// The error every operation on a poisoned [`WalWriter`] returns.
fn wal_poisoned() -> std::io::Error {
    std::io::Error::other("WAL poisoned by an earlier write failure")
}

impl WalWriter {
    /// Creates (or truncates) the log at `path`; `flush_every` bounds how
    /// many records may sit in the userspace buffer before an automatic
    /// flush.
    pub fn create(path: &Path, flush_every: u32) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(WalWriter {
            inner: BufWriter::with_capacity(64 * 1024, file),
            offset: 0,
            pending: 0,
            flush_every: flush_every.max(1),
            failed: false,
        })
    }

    /// Appends one report payload as a length+CRC framed record. After
    /// any failure the writer is poisoned and every later call fails —
    /// see the `failed` field for why continuing would be worse.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if self.failed {
            return Err(wal_poisoned());
        }
        let write = (|| {
            self.inner
                .write_all(&(payload.len() as u32).to_le_bytes())?;
            self.inner.write_all(&crc32(payload).to_le_bytes())?;
            self.inner.write_all(payload)
        })();
        if let Err(e) = write {
            self.failed = true;
            return Err(e);
        }
        self.offset += (WAL_RECORD_HEADER + payload.len()) as u64;
        self.pending += 1;
        if self.pending >= self.flush_every {
            self.flush()?;
        }
        Ok(())
    }

    /// Pushes buffered records to the OS. (Durability against an OS
    /// crash would additionally need fsync; process-crash durability —
    /// the SIGTERM/SIGKILL story — only needs the write to reach the
    /// kernel.) A failed flush poisons the writer like a failed append.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.failed {
            return Err(wal_poisoned());
        }
        match self.inner.flush() {
            Ok(()) => {
                self.pending = 0;
                Ok(())
            }
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    /// Bytes appended so far (including buffered).
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

/// What a log replay found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Reports successfully replayed.
    pub reports: u64,
    /// Bytes of valid records consumed (from the starting offset).
    pub bytes: u64,
    /// Whether the log ended in a torn/corrupt record that was dropped.
    pub torn_tail: bool,
}

/// Streams the log at `path`, starting `from` bytes in, invoking
/// `on_report` per valid record. Stops cleanly at a torn or corrupt tail
/// — the expected end state after a crash mid-append. A missing file or
/// an offset at/past EOF replays nothing (both legal: the covering
/// snapshot already accounts for everything).
pub fn replay_wal(
    path: &Path,
    from: u64,
    mut on_report: impl FnMut(Report),
) -> std::io::Result<ReplayStats> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplayStats::default()),
        Err(e) => return Err(e),
    };
    let len = file.metadata()?.len();
    let mut stats = ReplayStats::default();
    if from >= len {
        return Ok(stats);
    }
    let mut reader = BufReader::with_capacity(256 * 1024, file);
    reader.seek(SeekFrom::Start(from))?;
    let mut remaining = len - from;
    let mut header = [0u8; WAL_RECORD_HEADER];
    let mut payload = Vec::new();
    loop {
        if remaining < WAL_RECORD_HEADER as u64 {
            stats.torn_tail = remaining != 0;
            return Ok(stats);
        }
        reader.read_exact(&mut header)?;
        let plen = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if plen > u64::from(trajshare_aggregate::MAX_FRAME_LEN)
            || (remaining - WAL_RECORD_HEADER as u64) < plen
        {
            stats.torn_tail = true;
            return Ok(stats);
        }
        payload.resize(plen as usize, 0);
        reader.read_exact(&mut payload)?;
        if crc32(&payload) != stored_crc {
            stats.torn_tail = true;
            return Ok(stats);
        }
        match Report::decode(&payload) {
            Ok(report) => on_report(report),
            Err(_) => {
                // CRC-valid but undecodable should not happen (the server
                // validates before logging); treat as a tail to drop
                // rather than poisoning recovery.
                stats.torn_tail = true;
                return Ok(stats);
            }
        }
        let consumed = WAL_RECORD_HEADER as u64 + plen;
        stats.reports += 1;
        stats.bytes += consumed;
        remaining -= consumed;
    }
}

/// Atomically writes shard counters plus the WAL byte offset they cover.
pub fn write_shard_counts(
    path: &Path,
    counts: &AggregateCounts,
    wal_offset: u64,
) -> std::io::Result<()> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SHARD_MAGIC);
    bytes.extend_from_slice(&STORAGE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&wal_offset.to_le_bytes());
    // The embedded snapshot carries its own CRC; this one guards the
    // header — above all the covered-offset field, where a silent flip
    // would shift what recovery replays (double count or drop).
    let header_crc = crc32(&bytes);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    bytes.extend_from_slice(&counts.encode_snapshot());
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(tmp, path)
}

/// Reads a shard counter file back as `(counts, covered WAL offset)`,
/// validating the header CRC before trusting the offset.
pub fn read_shard_counts(path: &Path) -> Result<(AggregateCounts, u64), SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::from)?;
    if bytes.len() < 18 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..4] != SHARD_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != STORAGE_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let stored_crc = u32::from_le_bytes(bytes[14..18].try_into().unwrap());
    if crc32(&bytes[..14]) != stored_crc {
        return Err(SnapshotError::BadCrc);
    }
    let offset = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
    let counts = AggregateCounts::decode_snapshot(&bytes[18..])?;
    Ok((counts, offset))
}

/// Everything [`recover`] reconstructed and compacted.
#[derive(Debug)]
pub struct Recovery {
    /// Exact counters as of the last durable byte.
    pub counts: AggregateCounts,
    /// The fresh generation new server files must use.
    pub gen: u64,
    /// Reports replayed from log tails (not covered by any snapshot).
    pub replayed_reports: u64,
    /// Shards whose log ended in a torn record (normal after a crash).
    pub torn_tails: u64,
}

/// Scans `dir` for the current generation's files and returns the shard
/// indices present (from either a log or a counts file).
fn shard_indices(dir: &Path, gen: u64) -> std::io::Result<Vec<usize>> {
    let log_prefix = format!("shard-{gen}-");
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&log_prefix) else {
            continue;
        };
        let idx = rest
            .strip_suffix(".log")
            .or_else(|| rest.strip_suffix(".counts"));
        if let Some(i) = idx.and_then(|s| s.parse::<usize>().ok()) {
            if !indices.contains(&i) {
                indices.push(i);
            }
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Deletes every service file in `dir` that does not belong to
/// generation `keep` (best-effort; leftovers are retried next recovery).
fn sweep_stale_generations(dir: &Path, keep: u64) {
    let keep_base = format!("base-{keep}.");
    let keep_shard = format!("shard-{keep}-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = (name.starts_with("base-") && !name.starts_with(&keep_base))
            || (name.starts_with("shard-") && !name.starts_with(&keep_shard))
            || name.ends_with(".tmp");
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Takes the data directory's exclusive advisory lock (a `LOCK` file).
/// Held by a running server and for the duration of [`recover`]/[`load`],
/// so a second server — or an operator command — cannot compact or sweep
/// files out from under a live instance. The lock releases when the
/// returned handle drops.
pub fn lock_dir(dir: &Path) -> std::io::Result<File> {
    std::fs::create_dir_all(dir)?;
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(dir.join("LOCK"))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(std::fs::TryLockError::WouldBlock) => Err(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            format!("data dir {} is locked by another process", dir.display()),
        )),
        Err(std::fs::TryLockError::Error(e)) => Err(e),
    }
}

/// Rebuilds exact counters from whatever the previous run left behind,
/// then compacts into a fresh generation (see the module docs for the
/// crash-safety argument). `region_tiles` defines the public universe;
/// a snapshot recorded under a different universe size aborts recovery
/// rather than mis-indexing counters. Takes the directory lock for the
/// duration; [`crate::server::IngestServer`] uses the `_locked` variant
/// under its own longer-lived lock.
pub fn recover(dir: &Path, region_tiles: &[u16]) -> std::io::Result<Recovery> {
    let _lock = lock_dir(dir)?;
    recover_locked(dir, region_tiles)
}

/// Read-only reconstruction: merges the same base + shard counters + log
/// tails as [`recover`] but writes nothing — no compaction, no manifest
/// flip, no sweep. This is what inspection commands (`ingestd
/// --dump-counts`) use, so that *looking* at a data directory can never
/// delete a live server's logs.
pub fn load(dir: &Path, region_tiles: &[u16]) -> std::io::Result<Recovery> {
    let _lock = lock_dir(dir)?;
    reconstruct(dir, region_tiles)
}

/// [`recover`] without the locking — the caller must hold the directory
/// lock (see [`lock_dir`]).
pub(crate) fn recover_locked(dir: &Path, region_tiles: &[u16]) -> std::io::Result<Recovery> {
    let rec = reconstruct(dir, region_tiles)?;
    // Compact: the merged state becomes the next generation's base, the
    // manifest flip makes it authoritative, and only then is the old
    // generation swept.
    write_snapshot_file(&base_path(dir, rec.gen), &rec.counts)?;
    write_manifest(dir, rec.gen)?;
    sweep_stale_generations(dir, rec.gen);
    Ok(rec)
}

/// The shared reconstruction pass behind [`recover`] and [`load`]:
/// returns the merged counters and the *next* generation number without
/// touching the directory.
fn reconstruct(dir: &Path, region_tiles: &[u16]) -> std::io::Result<Recovery> {
    let num_regions = region_tiles.len();
    let gen = read_manifest(dir)?.unwrap_or(0);
    let mut total = AggregateCounts::new(num_regions);
    let universe_check = |c: &AggregateCounts, what: &str| {
        if c.num_regions == num_regions {
            Ok(())
        } else {
            Err(std::io::Error::other(format!(
                "{what}: universe {} != configured {num_regions}",
                c.num_regions
            )))
        }
    };

    let base = base_path(dir, gen);
    if base.exists() {
        let counts = read_snapshot_file(&base).map_err(std::io::Error::other)?;
        universe_check(&counts, "base snapshot")?;
        total.merge(&counts);
    }

    let mut replayed_reports = 0u64;
    let mut torn_tails = 0u64;
    for shard in shard_indices(dir, gen)? {
        let counts_file = shard_counts_path(dir, gen, shard);
        let covered = if counts_file.exists() {
            let (counts, offset) =
                read_shard_counts(&counts_file).map_err(std::io::Error::other)?;
            universe_check(&counts, "shard snapshot")?;
            total.merge(&counts);
            offset
        } else {
            0
        };
        let mut tail = Aggregator::from_region_tiles(region_tiles.to_vec());
        let stats = replay_wal(&wal_path(dir, gen, shard), covered, |report| {
            tail.ingest(&report)
        })?;
        total.merge(tail.counts());
        replayed_reports += stats.reports;
        torn_tails += stats.torn_tail as u64;
    }

    Ok(Recovery {
        counts: total,
        gen: gen + 1,
        replayed_reports,
        torn_tails,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report(i: u32) -> Report {
        let r = i % 5;
        Report {
            eps_prime: 1.25,
            len: 2,
            unigrams: vec![(0, r), (1, (r + 1) % 5)],
            exact: vec![(0, r)],
            transitions: vec![(r, (r + 1) % 5)],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("trajshare-storage-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_roundtrip_and_torn_tail() {
        let dir = tmp_dir("wal");
        let path = wal_path(&dir, 1, 0);
        let reports: Vec<Report> = (0..50).map(toy_report).collect();
        let mut wal = WalWriter::create(&path, 8).unwrap();
        for r in &reports {
            wal.append(&r.encode()).unwrap();
        }
        wal.flush().unwrap();
        let full_len = wal.offset();

        let mut got = Vec::new();
        let stats = replay_wal(&path, 0, |r| got.push(r)).unwrap();
        assert_eq!(got, reports);
        assert_eq!(stats.reports, 50);
        assert_eq!(stats.bytes, full_len);
        assert!(!stats.torn_tail);

        // Replay from a mid-log offset yields exactly the tail.
        let skip = stats.bytes / 50 * 10; // records are equal-sized here
        let mut tail = Vec::new();
        replay_wal(&path, skip, |r| tail.push(r)).unwrap();
        assert_eq!(tail, reports[10..]);

        // Truncate mid-record: the torn tail is dropped, the prefix kept.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 5).unwrap();
        let mut cut = Vec::new();
        let stats = replay_wal(&path, 0, |r| cut.push(r)).unwrap();
        assert_eq!(cut, reports[..49]);
        assert!(stats.torn_tail);

        // Corrupt a payload byte: replay stops at the bad record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[WAL_RECORD_HEADER + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut none = Vec::new();
        let stats = replay_wal(&path, 0, |r| none.push(r)).unwrap();
        assert!(none.is_empty());
        assert!(stats.torn_tail);

        // Offset past EOF and a missing file both replay nothing.
        assert_eq!(
            replay_wal(&path, 1 << 40, |_| {}).unwrap(),
            ReplayStats::default()
        );
        assert_eq!(
            replay_wal(&dir.join("absent.log"), 0, |_| {}).unwrap(),
            ReplayStats::default()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let dir = tmp_dir("manifest");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_manifest(&dir, 7).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(7));
        // A corrupted manifest is a hard error, not a silent gen 0.
        let mut bytes = std::fs::read(manifest_path(&dir)).unwrap();
        bytes[8] ^= 0x01;
        std::fs::write(manifest_path(&dir), &bytes).unwrap();
        assert!(read_manifest(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_counts_carry_their_wal_offset() {
        let dir = tmp_dir("shardcounts");
        let mut agg = Aggregator::from_region_tiles(vec![0; 5]);
        for i in 0..20 {
            agg.ingest(&toy_report(i));
        }
        let path = shard_counts_path(&dir, 3, 1);
        write_shard_counts(&path, agg.counts(), 1234).unwrap();
        let (counts, offset) = read_shard_counts(&path).unwrap();
        assert_eq!(&counts, agg.counts());
        assert_eq!(offset, 1234);
        // A flipped bit in the covered-offset field must fail the header
        // CRC, not silently shift what recovery replays.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_shard_counts(&path), Err(SnapshotError::BadCrc));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_merges_snapshot_and_log_tail_exactly() {
        let dir = tmp_dir("recover");
        let tiles = vec![0u16; 5];
        let reports: Vec<Report> = (0..200).map(toy_report).collect();

        // Simulate a crashed generation-0 run with two shards: shard 0
        // snapshotted after 60 reports then logged 40 more; shard 1 never
        // snapshotted, logged 100.
        let mut s0 = Aggregator::from_region_tiles(tiles.clone());
        let mut wal0 = WalWriter::create(&wal_path(&dir, 0, 0), 4).unwrap();
        for r in &reports[..100] {
            wal0.append(&r.encode()).unwrap();
            s0.ingest(r);
            if s0.counts().num_reports == 60 {
                wal0.flush().unwrap();
                write_shard_counts(&shard_counts_path(&dir, 0, 0), s0.counts(), wal0.offset())
                    .unwrap();
            }
        }
        wal0.flush().unwrap();
        let mut wal1 = WalWriter::create(&wal_path(&dir, 0, 1), 4).unwrap();
        for r in &reports[100..] {
            wal1.append(&r.encode()).unwrap();
        }
        wal1.flush().unwrap();

        let rec = recover(&dir, &tiles).unwrap();
        let mut direct = Aggregator::from_region_tiles(tiles.clone());
        for r in &reports {
            direct.ingest(r);
        }
        assert_eq!(&rec.counts, direct.counts(), "bit-identical recovery");
        assert_eq!(rec.gen, 1);
        assert_eq!(rec.replayed_reports, 140, "40 tail + 100 unsnapshotted");
        assert_eq!(read_manifest(&dir).unwrap(), Some(1));
        // Old generation swept, compacted base present.
        assert!(!wal_path(&dir, 0, 0).exists());
        assert!(!shard_counts_path(&dir, 0, 0).exists());
        assert!(base_path(&dir, 1).exists());

        // A second recovery (nothing new) is idempotent.
        let rec2 = recover(&dir, &tiles).unwrap();
        assert_eq!(rec2.counts, rec.counts);
        assert_eq!(rec2.gen, 2);
        assert_eq!(rec2.replayed_reports, 0);

        // Universe mismatch is refused outright.
        assert!(recover(&dir, &[0u16; 9]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

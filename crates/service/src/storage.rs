//! The durability layer: per-shard append-only report logs, per-shard
//! counter files, a generation manifest, and the recovery procedure that
//! folds them back into exact counters after a crash or re-shard.
//!
//! ## On-disk layout (all integers little-endian)
//!
//! Inside one data directory:
//!
//! * `MANIFEST` — `"TSMF"`, `u16` version, `u64` generation, `u32` CRC.
//!   Names the authoritative file generation; everything else is garbage
//!   from interrupted runs and is swept on recovery.
//! * `base-<gen>.counts` — a plain [`AggregateCounts`] snapshot (see
//!   `trajshare_aggregate::snapshot`): everything compacted by the last
//!   recovery.
//! * `shard-<gen>-<i>.log` — shard `i`'s write-ahead log. Each record is
//!   `u32` payload length, `u32` CRC-32 of the payload, then the payload
//!   ([`Report::encode`] bytes, or a whole `TSR4` batch payload — one
//!   batch frame ingests as one group-commit-aligned record; replay
//!   dispatches on the payload magic). A torn tail (crash mid-write) is
//!   detected by the length/CRC pair and cleanly ignored.
//! * `shard-<gen>-<i>.counts` — shard `i`'s periodic counter snapshot:
//!   `"TSSH"`, `u16` version, `u64` WAL byte offset covered, `u32`
//!   header CRC, then the embedded (self-validating) counts snapshot.
//!   Reports logged past the offset are recovered by replaying the log
//!   tail.
//!
//! ## Recovery = snapshot + log tail, then compaction
//!
//! [`recover`] merges `base-<g>.counts`, every `shard-<g>-*.counts`, and
//! each shard's log tail past its covered offset, producing counters
//! bit-identical to an uninterrupted run (all counters are plain `u64`
//! sums, so merge order is immaterial). It then *compacts*: writes the
//! merged result as `base-<g+1>.counts`, atomically flips `MANIFEST` to
//! generation `g+1`, and deletes generation-`g` files. A crash anywhere
//! inside recovery is safe — until the manifest rename lands, generation
//! `g` remains authoritative and the half-built `g+1` files are swept by
//! the next attempt. The same sequencing (new base + new logs first,
//! manifest flip as the commit point, sweep last) backs the server's
//! *online* compaction, which bounds WAL disk usage between restarts.
//!
//! ## Streaming state
//!
//! When the deployment runs the sliding-window workload, each shard's
//! counter file additionally embeds the shard's window ring (see
//! `trajshare_aggregate::stream`) covering the same WAL offset as the
//! total counters, and recovery writes the merged ring as
//! `ring-<gen>.bin` next to the compacted base. Per-shard ring blobs +
//! timestamped WAL-tail replay restore the global ring bit-identically
//! (ring content is order-independent — see the stream module docs).
//!
//! ## Budget ledger
//!
//! Deployments enforcing a streaming privacy budget additionally keep a
//! generation-free `BUDGET` file: the
//! [`trajshare_aggregate::WindowBudgetAccountant`] ledger, rewritten
//! atomically on every allocation decision. Recovery restores it (and
//! stamps its spends back onto the restored ring's per-window
//! annotations); a corrupt ledger aborts recovery rather than risk
//! over-granting past the `w`-window invariant.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use trajshare_aggregate::snapshot::{
    crc32, read_snapshot_file, write_snapshot_file, SnapshotError,
};
use trajshare_aggregate::{
    AggregateCounts, Aggregator, Report, ReportBatch, WindowBudgetAccountant, WindowConfig,
    WindowedAggregator,
};

/// Manifest magic ("TrajShare ManiFest").
const MANIFEST_MAGIC: [u8; 4] = *b"TSMF";
/// Shard-counts header magic ("TrajShare SHard").
const SHARD_MAGIC: [u8; 4] = *b"TSSH";
/// Version of the manifest header.
const STORAGE_VERSION: u16 = 1;
/// Current shard-counts header version: v2 appends an embedded window
/// ring (possibly empty) after the counts snapshot. v1 files (no ring
/// length field) remain readable.
const SHARD_VERSION: u16 = 2;
/// WAL record header: payload length + payload CRC.
const WAL_RECORD_HEADER: usize = 8;

/// Path of shard `i`'s write-ahead log in generation `gen`.
pub fn wal_path(dir: &Path, gen: u64, shard: usize) -> PathBuf {
    dir.join(format!("shard-{gen}-{shard}.log"))
}

/// Path of shard `i`'s counter snapshot in generation `gen`.
pub fn shard_counts_path(dir: &Path, gen: u64, shard: usize) -> PathBuf {
    dir.join(format!("shard-{gen}-{shard}.counts"))
}

/// Path of the compacted base snapshot of generation `gen`.
pub fn base_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("base-{gen}.counts"))
}

/// Path of the compacted window-ring snapshot of generation `gen`
/// (streaming deployments only).
pub fn ring_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("ring-{gen}.bin"))
}

/// Path of the persisted privacy-budget ledger (streaming deployments
/// with a [`trajshare_aggregate::WindowBudgetConfig`] only). Generation-
/// free on purpose: the ledger is tiny, rewritten atomically on every
/// decision, and must survive compaction sweeps — forgetting spends
/// across a generation bump could over-grant.
pub fn budget_path(dir: &Path) -> PathBuf {
    dir.join("BUDGET")
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Reads the authoritative generation, `None` when no manifest exists
/// (fresh directory). A manifest that exists but fails validation is a
/// hard error — guessing a generation could silently double-count.
pub fn read_manifest(dir: &Path) -> std::io::Result<Option<u64>> {
    let bytes = match std::fs::read(manifest_path(dir)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let fail = |msg: &str| Err(std::io::Error::other(format!("MANIFEST invalid: {msg}")));
    if bytes.len() != 4 + 2 + 8 + 4 {
        return fail("wrong size");
    }
    if bytes[0..4] != MANIFEST_MAGIC {
        return fail("bad magic");
    }
    if u16::from_le_bytes(bytes[4..6].try_into().unwrap()) != STORAGE_VERSION {
        return fail("unsupported version");
    }
    let stored = u32::from_le_bytes(bytes[14..18].try_into().unwrap());
    if crc32(&bytes[..14]) != stored {
        return fail("bad CRC");
    }
    Ok(Some(u64::from_le_bytes(bytes[6..14].try_into().unwrap())))
}

/// Atomically points the manifest at `gen` (tmp + fsync + rename).
pub fn write_manifest(dir: &Path, gen: u64) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(18);
    bytes.extend_from_slice(&MANIFEST_MAGIC);
    bytes.extend_from_slice(&STORAGE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&gen.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(tmp, manifest_path(dir))
}

/// When (if ever) the WAL forces data onto stable storage.
///
/// [`WalWriter::flush`] always pushes buffered records to the kernel —
/// that is what makes an ack survive a *process* kill. What it does
/// **not** do, under the default [`SyncPolicy::Never`], is call
/// `fdatasync`: an **operating-system** crash or power loss can still
/// drop acked records that only the page cache held. Deployments that
/// need OS-crash durability opt into group commit, which bounds the
/// exposure to `records` acks or `max_delay` of wall time — whichever
/// comes first — at the cost of periodic `sync_data` calls on the ack
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Flush to the kernel only (the explicit default): acked reports
    /// survive any process kill, but *not* an OS crash.
    #[default]
    Never,
    /// Group commit: `fdatasync` whenever `records` records have been
    /// appended since the last sync, or `max_delay` has elapsed since
    /// it. The record bound is checked at every flush (= every ack and
    /// snapshot); the time bound additionally needs a periodic caller of
    /// [`WalWriter::sync_if_due`] during lulls — the ingestion server's
    /// maintenance thread does this — because a writer that receives no
    /// appends gets no flushes. Together they bound OS-crash loss to one
    /// group.
    GroupCommit {
        /// Records between forced syncs (≥ 1).
        records: u32,
        /// Wall-clock bound between forced syncs.
        max_delay: Duration,
    },
}

/// Append-only writer for one shard's report log.
///
/// Writes are buffered; [`WalWriter::offset`] counts *appended* bytes
/// (including still-buffered ones), which is the correct coverage value
/// for a counter snapshot taken after [`WalWriter::flush`] — and still
/// safe if buffered bytes are later lost, because the snapshot already
/// accounts for every report up to the offset it records.
pub struct WalWriter {
    inner: BufWriter<File>,
    offset: u64,
    pending: u32,
    flush_every: u32,
    sync_policy: SyncPolicy,
    /// Records appended since the last forced sync.
    since_sync: u32,
    last_sync: Instant,
    /// Set after any I/O failure. A failed write can leave a partial
    /// record in the stream; appending more records after it would put
    /// acked reports *behind* a torn record, where replay cannot reach
    /// them. Poisoning the writer keeps the ack-means-durable contract:
    /// the shard stops accepting instead of acking into a corrupt log.
    failed: bool,
}

/// The error every operation on a poisoned [`WalWriter`] returns.
fn wal_poisoned() -> std::io::Error {
    std::io::Error::other("WAL poisoned by an earlier write failure")
}

impl WalWriter {
    /// Creates (or truncates) the log at `path`; `flush_every` bounds how
    /// many records may sit in the userspace buffer before an automatic
    /// flush. Uses [`SyncPolicy::Never`] — kernel-flush durability only.
    pub fn create(path: &Path, flush_every: u32) -> std::io::Result<Self> {
        Self::create_with_policy(path, flush_every, SyncPolicy::Never)
    }

    /// [`WalWriter::create`] with an explicit [`SyncPolicy`].
    pub fn create_with_policy(
        path: &Path,
        flush_every: u32,
        sync_policy: SyncPolicy,
    ) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(WalWriter {
            inner: BufWriter::with_capacity(64 * 1024, file),
            offset: 0,
            pending: 0,
            flush_every: flush_every.max(1),
            sync_policy,
            since_sync: 0,
            last_sync: Instant::now(),
            failed: false,
        })
    }

    /// Appends one report payload as a length+CRC framed record. After
    /// any failure the writer is poisoned and every later call fails —
    /// see the `failed` field for why continuing would be worse.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.append_with_crc(payload, crc32(payload))
    }

    /// [`WalWriter::append`] with the payload's CRC-32 already in hand.
    /// The batch ingest path gets it for free from frame validation
    /// ([`trajshare_aggregate::ReportBatch::decode_payload_into`]), so
    /// the WAL never rescans a multi-kilobyte batch payload it just
    /// checksummed. `crc` must equal `crc32(payload)` — a wrong value
    /// writes a record replay will reject.
    pub fn append_with_crc(&mut self, payload: &[u8], crc: u32) -> std::io::Result<()> {
        debug_assert_eq!(crc, crc32(payload));
        if self.failed {
            return Err(wal_poisoned());
        }
        let write = (|| {
            self.inner
                .write_all(&(payload.len() as u32).to_le_bytes())?;
            self.inner.write_all(&crc.to_le_bytes())?;
            self.inner.write_all(payload)
        })();
        if let Err(e) = write {
            self.failed = true;
            return Err(e);
        }
        self.offset += (WAL_RECORD_HEADER + payload.len()) as u64;
        self.pending += 1;
        self.since_sync = self.since_sync.saturating_add(1);
        if self.pending >= self.flush_every {
            self.flush()?;
        }
        Ok(())
    }

    /// Pushes buffered records to the kernel, then applies the
    /// [`SyncPolicy`]: under `Never` that is all (acked reports survive
    /// process kills but **not** OS crashes); under `GroupCommit` the
    /// file is additionally `fdatasync`ed once the record- or time-bound
    /// is due, which is what turns an ack into an OS-crash-durable one
    /// (within one group of the policy's bounds). A failed flush or sync
    /// poisons the writer like a failed append.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.failed {
            return Err(wal_poisoned());
        }
        if let Err(e) = self.inner.flush() {
            self.failed = true;
            return Err(e);
        }
        self.pending = 0;
        if let SyncPolicy::GroupCommit { records, max_delay } = self.sync_policy {
            if self.since_sync >= records.max(1)
                || (self.since_sync > 0 && self.last_sync.elapsed() >= max_delay)
            {
                return self.sync();
            }
        }
        Ok(())
    }

    /// The time-based half of [`SyncPolicy::GroupCommit`], for periodic
    /// callers outside the ack path (the server's maintenance thread):
    /// if unsynced records have waited longer than `max_delay`, flush
    /// and `fdatasync` them now. Returns `Ok(false)` without touching
    /// the file under [`SyncPolicy::Never`], when nothing is pending,
    /// when the delay has not elapsed, or when the writer is already
    /// poisoned (the ack path surfaces that failure).
    pub fn sync_if_due(&mut self) -> std::io::Result<bool> {
        if self.failed {
            return Ok(false);
        }
        let SyncPolicy::GroupCommit { max_delay, .. } = self.sync_policy else {
            return Ok(false);
        };
        if self.since_sync == 0 || self.last_sync.elapsed() < max_delay {
            return Ok(false);
        }
        self.sync().map(|()| true)
    }

    /// Forces buffered *and* kernel-held data onto stable storage
    /// (`fdatasync`), regardless of policy. The caller must have flushed
    /// or accept that this flushes first.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.failed {
            return Err(wal_poisoned());
        }
        let res = self
            .inner
            .flush()
            .and_then(|()| self.inner.get_ref().sync_data());
        match res {
            Ok(()) => {
                self.pending = 0;
                self.since_sync = 0;
                self.last_sync = Instant::now();
                Ok(())
            }
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    /// Bytes appended so far (including buffered).
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

/// What a log replay found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Reports successfully replayed.
    pub reports: u64,
    /// Bytes of valid records consumed (from the starting offset).
    pub bytes: u64,
    /// Whether the log ended in a torn/corrupt record that was dropped.
    pub torn_tail: bool,
}

/// Streams the log at `path`, starting `from` bytes in, invoking
/// `on_report` per valid record. Stops cleanly at a torn or corrupt tail
/// — the expected end state after a crash mid-append. A missing file or
/// an offset at/past EOF replays nothing (both legal: the covering
/// snapshot already accounts for everything).
pub fn replay_wal(
    path: &Path,
    from: u64,
    mut on_report: impl FnMut(Report),
) -> std::io::Result<ReplayStats> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplayStats::default()),
        Err(e) => return Err(e),
    };
    let len = file.metadata()?.len();
    let mut stats = ReplayStats::default();
    if from >= len {
        return Ok(stats);
    }
    let mut reader = BufReader::with_capacity(256 * 1024, file);
    reader.seek(SeekFrom::Start(from))?;
    let mut remaining = len - from;
    let mut header = [0u8; WAL_RECORD_HEADER];
    let mut payload = Vec::new();
    // Scratch for `TSR4` batch records (one record = one whole batch
    // payload); reused across records.
    let mut batch = ReportBatch::new();
    loop {
        if remaining < WAL_RECORD_HEADER as u64 {
            stats.torn_tail = remaining != 0;
            return Ok(stats);
        }
        reader.read_exact(&mut header)?;
        let plen = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if plen > u64::from(trajshare_aggregate::MAX_FRAME_LEN)
            || (remaining - WAL_RECORD_HEADER as u64) < plen
        {
            stats.torn_tail = true;
            return Ok(stats);
        }
        payload.resize(plen as usize, 0);
        reader.read_exact(&mut payload)?;
        if crc32(&payload) != stored_crc {
            stats.torn_tail = true;
            return Ok(stats);
        }
        // Dispatch on the payload magic: a record is either one report
        // (TSR2/TSR3) or one whole batch (TSR4), replayed report by
        // report so recovery's per-report fold is representation-blind.
        if payload.starts_with(&ReportBatch::MAGIC) {
            match batch.decode_payload_into(&payload) {
                Ok(_crc) => {
                    for report in batch.reports() {
                        on_report(report);
                    }
                    stats.reports += batch.num_reports() as u64;
                }
                Err(_) => {
                    stats.torn_tail = true;
                    return Ok(stats);
                }
            }
        } else {
            match Report::decode(&payload) {
                Ok(report) => {
                    on_report(report);
                    stats.reports += 1;
                }
                Err(_) => {
                    // CRC-valid but undecodable should not happen (the
                    // server validates before logging); treat as a tail
                    // to drop rather than poisoning recovery.
                    stats.torn_tail = true;
                    return Ok(stats);
                }
            }
        }
        let consumed = WAL_RECORD_HEADER as u64 + plen;
        stats.bytes += consumed;
        remaining -= consumed;
    }
}

/// Atomically writes shard counters plus the WAL byte offset they cover,
/// and — in streaming deployments — the shard's window ring as of the
/// same offset (`ring` is the blob from
/// `WindowedAggregator::encode_ring`).
pub fn write_shard_counts(
    path: &Path,
    counts: &AggregateCounts,
    wal_offset: u64,
    ring: Option<&[u8]>,
) -> std::io::Result<()> {
    let counts_snap = counts.encode_snapshot();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SHARD_MAGIC);
    bytes.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    bytes.extend_from_slice(&wal_offset.to_le_bytes());
    // v2: the counts-snapshot length, so the ring's start is explicit.
    bytes.extend_from_slice(&(counts_snap.len() as u64).to_le_bytes());
    // The embedded snapshots carry their own CRCs; this one guards the
    // header — above all the covered-offset field, where a silent flip
    // would shift what recovery replays (double count or drop).
    let header_crc = crc32(&bytes);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    bytes.extend_from_slice(&counts_snap);
    if let Some(ring) = ring {
        bytes.extend_from_slice(ring);
    }
    write_blob_atomic(path, &bytes)
}

/// Reads a shard counter file back as `(counts, covered WAL offset, raw
/// ring blob)`, validating the header CRC before trusting the offset.
/// v1 files (pre-streaming) decode with no ring.
pub fn read_shard_counts(
    path: &Path,
) -> Result<(AggregateCounts, u64, Option<Vec<u8>>), SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::from)?;
    if bytes.len() < 6 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..4] != SHARD_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    match version {
        1 => {
            if bytes.len() < 18 {
                return Err(SnapshotError::Truncated);
            }
            let stored_crc = u32::from_le_bytes(bytes[14..18].try_into().unwrap());
            if crc32(&bytes[..14]) != stored_crc {
                return Err(SnapshotError::BadCrc);
            }
            let offset = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
            let counts = AggregateCounts::decode_snapshot(&bytes[18..])?;
            Ok((counts, offset, None))
        }
        2 => {
            const HEADER: usize = 4 + 2 + 8 + 8;
            if bytes.len() < HEADER + 4 {
                return Err(SnapshotError::Truncated);
            }
            let stored_crc = u32::from_le_bytes(bytes[HEADER..HEADER + 4].try_into().unwrap());
            if crc32(&bytes[..HEADER]) != stored_crc {
                return Err(SnapshotError::BadCrc);
            }
            let offset = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
            let counts_len = u64::from_le_bytes(bytes[14..22].try_into().unwrap()) as usize;
            let body = &bytes[HEADER + 4..];
            if body.len() < counts_len {
                return Err(SnapshotError::Truncated);
            }
            let counts = AggregateCounts::decode_snapshot(&body[..counts_len])?;
            let ring = &body[counts_len..];
            Ok((counts, offset, (!ring.is_empty()).then(|| ring.to_vec())))
        }
        v => Err(SnapshotError::UnsupportedVersion(v)),
    }
}

/// Everything [`recover`] reconstructed and compacted.
#[derive(Debug)]
pub struct Recovery {
    /// Exact counters as of the last durable byte.
    pub counts: AggregateCounts,
    /// The restored sliding-window ring (streaming deployments only):
    /// merged from the base ring, every shard's ring blob, and the
    /// timestamped log tails — bit-identical to the pre-crash ring.
    pub ring: Option<WindowedAggregator>,
    /// The restored privacy-budget ledger, when a `BUDGET` file exists.
    /// A corrupt ledger aborts recovery — restoring a guessed ledger
    /// could over-grant past the `w`-window invariant.
    pub budget: Option<WindowBudgetAccountant>,
    /// The fresh generation new server files must use.
    pub gen: u64,
    /// Reports replayed from log tails (not covered by any snapshot).
    pub replayed_reports: u64,
    /// Shards whose log ended in a torn record (normal after a crash).
    pub torn_tails: u64,
}

/// Scans `dir` for the current generation's files and returns the shard
/// indices present (from either a log or a counts file).
fn shard_indices(dir: &Path, gen: u64) -> std::io::Result<Vec<usize>> {
    let log_prefix = format!("shard-{gen}-");
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&log_prefix) else {
            continue;
        };
        let idx = rest
            .strip_suffix(".log")
            .or_else(|| rest.strip_suffix(".counts"));
        if let Some(i) = idx.and_then(|s| s.parse::<usize>().ok()) {
            if !indices.contains(&i) {
                indices.push(i);
            }
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Deletes every service file in `dir` that does not belong to
/// generation `keep` (best-effort; leftovers are retried next recovery).
/// Also the post-commit cleanup step of the server's online compaction.
pub(crate) fn sweep_stale_generations(dir: &Path, keep: u64) {
    let keep_base = format!("base-{keep}.");
    let keep_shard = format!("shard-{keep}-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let keep_ring = format!("ring-{keep}.");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = (name.starts_with("base-") && !name.starts_with(&keep_base))
            || (name.starts_with("shard-") && !name.starts_with(&keep_shard))
            || (name.starts_with("ring-") && !name.starts_with(&keep_ring))
            || name.ends_with(".tmp");
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Takes the data directory's exclusive advisory lock (a `LOCK` file).
/// Held by a running server and for the duration of [`recover`]/[`load`],
/// so a second server — or an operator command — cannot compact or sweep
/// files out from under a live instance. The lock releases when the
/// returned handle drops.
pub fn lock_dir(dir: &Path) -> std::io::Result<File> {
    std::fs::create_dir_all(dir)?;
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(dir.join("LOCK"))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(std::fs::TryLockError::WouldBlock) => Err(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            format!("data dir {} is locked by another process", dir.display()),
        )),
        Err(std::fs::TryLockError::Error(e)) => Err(e),
    }
}

/// Rebuilds exact counters from whatever the previous run left behind,
/// then compacts into a fresh generation (see the module docs for the
/// crash-safety argument). `region_tiles` defines the public universe;
/// a snapshot recorded under a different universe size aborts recovery
/// rather than mis-indexing counters. `window` enables the streaming
/// workload: the sliding-window ring is restored alongside the totals
/// (a persisted ring with a different window shape aborts recovery).
/// Takes the directory lock for the duration;
/// [`crate::server::IngestServer`] uses the `_locked` variant under its
/// own longer-lived lock.
pub fn recover(
    dir: &Path,
    region_tiles: &[u16],
    window: Option<WindowConfig>,
) -> std::io::Result<Recovery> {
    let _lock = lock_dir(dir)?;
    recover_locked(dir, region_tiles, window)
}

/// Read-only reconstruction: merges the same base + shard counters + log
/// tails as [`recover`] but writes nothing — no compaction, no manifest
/// flip, no sweep. This is what inspection commands (`ingestd
/// --dump-counts`) use, so that *looking* at a data directory can never
/// delete a live server's logs.
pub fn load(
    dir: &Path,
    region_tiles: &[u16],
    window: Option<WindowConfig>,
) -> std::io::Result<Recovery> {
    let _lock = lock_dir(dir)?;
    reconstruct(dir, region_tiles, window)
}

/// [`recover`] without the locking — the caller must hold the directory
/// lock (see [`lock_dir`]).
pub(crate) fn recover_locked(
    dir: &Path,
    region_tiles: &[u16],
    window: Option<WindowConfig>,
) -> std::io::Result<Recovery> {
    let rec = reconstruct(dir, region_tiles, window)?;
    // Compact: the merged state becomes the next generation's base, the
    // manifest flip makes it authoritative, and only then is the old
    // generation swept.
    write_snapshot_file(&base_path(dir, rec.gen), &rec.counts)?;
    match &rec.ring {
        Some(ring) => write_blob_atomic(&ring_path(dir, rec.gen), &ring.encode_ring())?,
        // Not streaming: make sure no stale ring file (e.g. from a
        // crashed online compaction into this same generation number)
        // survives into the generation we are about to commit.
        None => {
            let _ = std::fs::remove_file(ring_path(dir, rec.gen));
        }
    }
    write_manifest(dir, rec.gen)?;
    sweep_stale_generations(dir, rec.gen);
    Ok(rec)
}

/// Atomic small-file write: tmp + fsync + rename (the manifest/snapshot
/// idiom, for blobs that already self-validate).
pub(crate) fn write_blob_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(tmp, path)
}

/// The shared reconstruction pass behind [`recover`] and [`load`]:
/// returns the merged counters (and ring) and the *next* generation
/// number without touching the directory.
fn reconstruct(
    dir: &Path,
    region_tiles: &[u16],
    window: Option<WindowConfig>,
) -> std::io::Result<Recovery> {
    let num_regions = region_tiles.len();
    let gen = read_manifest(dir)?.unwrap_or(0);
    let mut total = AggregateCounts::new(num_regions);
    let mut ring_total = window.map(|w| WindowedAggregator::new(region_tiles.to_vec(), w));
    let universe_check = |c: &AggregateCounts, what: &str| {
        if c.num_regions == num_regions {
            Ok(())
        } else {
            Err(std::io::Error::other(format!(
                "{what}: universe {} != configured {num_regions}",
                c.num_regions
            )))
        }
    };

    let base = base_path(dir, gen);
    if base.exists() {
        let counts = read_snapshot_file(&base).map_err(std::io::Error::other)?;
        universe_check(&counts, "base snapshot")?;
        total.merge(&counts);
    }
    if let (Some(ring_total), Some(w)) = (&mut ring_total, window) {
        let ring_file = ring_path(dir, gen);
        if ring_file.exists() {
            let blob = std::fs::read(&ring_file)?;
            let ring = WindowedAggregator::decode_ring(&blob, region_tiles, w)
                .map_err(|e| std::io::Error::other(format!("base ring: {e}")))?;
            ring_total.merge_ring(&ring);
        }
    }

    let budget = match std::fs::read(budget_path(dir)) {
        Ok(bytes) => Some(
            WindowBudgetAccountant::decode(&bytes)
                .map_err(|e| std::io::Error::other(format!("BUDGET ledger: {e}")))?,
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };

    let mut replayed_reports = 0u64;
    let mut torn_tails = 0u64;
    for shard in shard_indices(dir, gen)? {
        let counts_file = shard_counts_path(dir, gen, shard);
        let (covered, ring_blob) = if counts_file.exists() {
            let (counts, offset, ring_blob) =
                read_shard_counts(&counts_file).map_err(std::io::Error::other)?;
            universe_check(&counts, "shard snapshot")?;
            total.merge(&counts);
            (offset, ring_blob)
        } else {
            (0, None)
        };
        // The shard's ring as of `covered`; the tail replay below feeds
        // the same ring, preserving the shard's own ingestion order (the
        // WAL is that order), so the rebuilt shard ring is bit-identical
        // to the pre-crash one.
        let mut shard_ring = match (&ring_total, window, ring_blob) {
            (Some(_), Some(w), Some(blob)) => Some(
                WindowedAggregator::decode_ring(&blob, region_tiles, w)
                    .map_err(|e| std::io::Error::other(format!("shard {shard} ring: {e}")))?,
            ),
            (Some(_), Some(w), None) => Some(WindowedAggregator::new(region_tiles.to_vec(), w)),
            _ => None,
        };
        let mut tail = Aggregator::from_region_tiles(region_tiles.to_vec());
        let stats = replay_wal(&wal_path(dir, gen, shard), covered, |report| {
            if let Some(ring) = &mut shard_ring {
                ring.ingest(&report);
            }
            tail.ingest(&report);
        })?;
        total.merge(tail.counts());
        if let (Some(ring_total), Some(shard_ring)) = (&mut ring_total, &shard_ring) {
            ring_total.merge_ring(shard_ring);
        }
        replayed_reports += stats.reports;
        torn_tails += stats.torn_tail as u64;
    }

    // The ledger is authoritative over the ring's spend annotations: the
    // ring mirror is only stamped at compaction, while the BUDGET file is
    // rewritten on every decision, so after a kill the ledger is ahead.
    // Unconditional overwrite: a window the ledger settled to 0 must not
    // keep a stale nonzero ring annotation (recovery after a budget
    // config change would seed a phantom spend from it).
    if let (Some(ring), Some(acct)) = (&mut ring_total, &budget) {
        for d in acct.decisions() {
            ring.record_spend(d.window, d.spent_nano);
        }
    }

    Ok(Recovery {
        counts: total,
        ring: ring_total,
        budget,
        gen: gen + 1,
        replayed_reports,
        torn_tails,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report(i: u32) -> Report {
        let r = i % 5;
        Report {
            t: (i as u64 / 40) * 60, // a new window every 40 reports
            eps_prime: 1.25,
            len: 2,
            unigrams: vec![(0, r), (1, (r + 1) % 5)],
            exact: vec![(0, r)],
            transitions: vec![(r, (r + 1) % 5)],
        }
    }

    const WINDOW: WindowConfig = WindowConfig {
        window_len: 60,
        num_windows: 4,
    };

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("trajshare-storage-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_roundtrip_and_torn_tail() {
        let dir = tmp_dir("wal");
        let path = wal_path(&dir, 1, 0);
        let reports: Vec<Report> = (0..50).map(toy_report).collect();
        let mut wal = WalWriter::create(&path, 8).unwrap();
        for r in &reports {
            wal.append(&r.encode()).unwrap();
        }
        wal.flush().unwrap();
        let full_len = wal.offset();

        let mut got = Vec::new();
        let stats = replay_wal(&path, 0, |r| got.push(r)).unwrap();
        assert_eq!(got, reports);
        assert_eq!(stats.reports, 50);
        assert_eq!(stats.bytes, full_len);
        assert!(!stats.torn_tail);

        // Replay from a mid-log offset yields exactly the tail.
        let skip = stats.bytes / 50 * 10; // records are equal-sized here
        let mut tail = Vec::new();
        replay_wal(&path, skip, |r| tail.push(r)).unwrap();
        assert_eq!(tail, reports[10..]);

        // Truncate mid-record: the torn tail is dropped, the prefix kept.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 5).unwrap();
        let mut cut = Vec::new();
        let stats = replay_wal(&path, 0, |r| cut.push(r)).unwrap();
        assert_eq!(cut, reports[..49]);
        assert!(stats.torn_tail);

        // Corrupt a payload byte: replay stops at the bad record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[WAL_RECORD_HEADER + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut none = Vec::new();
        let stats = replay_wal(&path, 0, |r| none.push(r)).unwrap();
        assert!(none.is_empty());
        assert!(stats.torn_tail);

        // Offset past EOF and a missing file both replay nothing.
        assert_eq!(
            replay_wal(&path, 1 << 40, |_| {}).unwrap(),
            ReplayStats::default()
        );
        assert_eq!(
            replay_wal(&dir.join("absent.log"), 0, |_| {}).unwrap(),
            ReplayStats::default()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_policy_syncs_on_the_flush_path() {
        let dir = tmp_dir("group-commit");
        let path = wal_path(&dir, 0, 0);
        let mut wal = WalWriter::create_with_policy(
            &path,
            4,
            SyncPolicy::GroupCommit {
                records: 8,
                max_delay: Duration::from_secs(3600),
            },
        )
        .unwrap();
        for r in (0..20).map(toy_report) {
            wal.append(&r.encode()).unwrap();
        }
        wal.flush().unwrap();
        wal.sync().unwrap();
        // Replay sees every record regardless of sync cadence.
        let mut got = 0u32;
        let stats = replay_wal(&path, 0, |_| got += 1).unwrap();
        assert_eq!(got, 20);
        assert!(!stats.torn_tail);
        // A zero max_delay forces a sync at every flush; still exact.
        let path2 = wal_path(&dir, 0, 1);
        let mut wal2 = WalWriter::create_with_policy(
            &path2,
            1,
            SyncPolicy::GroupCommit {
                records: u32::MAX,
                max_delay: Duration::from_millis(0),
            },
        )
        .unwrap();
        for r in (0..5).map(toy_report) {
            wal2.append(&r.encode()).unwrap();
        }
        let mut got2 = 0u32;
        replay_wal(&path2, 0, |_| got2 += 1).unwrap();
        assert_eq!(got2, 5);

        // The time bound works without further appends: sync_if_due is
        // a no-op until max_delay elapses, then syncs the pending tail.
        let path3 = wal_path(&dir, 0, 2);
        let mut wal3 = WalWriter::create_with_policy(
            &path3,
            1_000, // never auto-flush by count
            SyncPolicy::GroupCommit {
                records: u32::MAX,
                max_delay: Duration::from_millis(30),
            },
        )
        .unwrap();
        wal3.append(&toy_report(1).encode()).unwrap();
        assert!(!wal3.sync_if_due().unwrap(), "delay not elapsed yet");
        std::thread::sleep(Duration::from_millis(40));
        assert!(wal3.sync_if_due().unwrap(), "overdue tail must sync");
        assert!(!wal3.sync_if_due().unwrap(), "nothing pending after");
        let mut got3 = 0u32;
        replay_wal(&path3, 0, |_| got3 += 1).unwrap();
        assert_eq!(got3, 1, "the synced record is on disk");
        // Never-policy writers report no work, never an error.
        let mut wal4 = WalWriter::create(&wal_path(&dir, 0, 3), 4).unwrap();
        wal4.append(&toy_report(2).encode()).unwrap();
        assert!(!wal4.sync_if_due().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let dir = tmp_dir("manifest");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_manifest(&dir, 7).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(7));
        // A corrupted manifest is a hard error, not a silent gen 0.
        let mut bytes = std::fs::read(manifest_path(&dir)).unwrap();
        bytes[8] ^= 0x01;
        std::fs::write(manifest_path(&dir), &bytes).unwrap();
        assert!(read_manifest(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_counts_carry_their_wal_offset() {
        let dir = tmp_dir("shardcounts");
        let mut agg = Aggregator::from_region_tiles(vec![0; 5]);
        for i in 0..20 {
            agg.ingest(&toy_report(i));
        }
        let path = shard_counts_path(&dir, 3, 1);
        write_shard_counts(&path, agg.counts(), 1234, None).unwrap();
        let (counts, offset, ring) = read_shard_counts(&path).unwrap();
        assert_eq!(&counts, agg.counts());
        assert_eq!(offset, 1234);
        assert!(ring.is_none());
        // A flipped bit in the covered-offset field must fail the header
        // CRC, not silently shift what recovery replays.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_shard_counts(&path).unwrap_err(), SnapshotError::BadCrc);

        // v2 with an embedded ring roundtrips both parts.
        let mut ring = WindowedAggregator::new(vec![0; 5], WINDOW);
        for i in 0..20 {
            ring.ingest(&toy_report(i));
        }
        write_shard_counts(&path, agg.counts(), 99, Some(&ring.encode_ring())).unwrap();
        let (counts, offset, blob) = read_shard_counts(&path).unwrap();
        assert_eq!(&counts, agg.counts());
        assert_eq!(offset, 99);
        let back = WindowedAggregator::decode_ring(&blob.unwrap(), &[0u16; 5], WINDOW).unwrap();
        assert_eq!(back.merged(), ring.merged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_merges_snapshot_and_log_tail_exactly() {
        let dir = tmp_dir("recover");
        let tiles = vec![0u16; 5];
        let reports: Vec<Report> = (0..200).map(toy_report).collect();

        // Simulate a crashed generation-0 run with two shards: shard 0
        // snapshotted after 60 reports then logged 40 more; shard 1 never
        // snapshotted, logged 100.
        let mut s0 = Aggregator::from_region_tiles(tiles.clone());
        let mut wal0 = WalWriter::create(&wal_path(&dir, 0, 0), 4).unwrap();
        for r in &reports[..100] {
            wal0.append(&r.encode()).unwrap();
            s0.ingest(r);
            if s0.counts().num_reports == 60 {
                wal0.flush().unwrap();
                write_shard_counts(
                    &shard_counts_path(&dir, 0, 0),
                    s0.counts(),
                    wal0.offset(),
                    None,
                )
                .unwrap();
            }
        }
        wal0.flush().unwrap();
        let mut wal1 = WalWriter::create(&wal_path(&dir, 0, 1), 4).unwrap();
        for r in &reports[100..] {
            wal1.append(&r.encode()).unwrap();
        }
        wal1.flush().unwrap();

        let rec = recover(&dir, &tiles, None).unwrap();
        let mut direct = Aggregator::from_region_tiles(tiles.clone());
        for r in &reports {
            direct.ingest(r);
        }
        assert_eq!(&rec.counts, direct.counts(), "bit-identical recovery");
        assert_eq!(rec.gen, 1);
        assert!(rec.ring.is_none(), "no window config, no ring");
        assert_eq!(rec.replayed_reports, 140, "40 tail + 100 unsnapshotted");
        assert_eq!(read_manifest(&dir).unwrap(), Some(1));
        // Old generation swept, compacted base present.
        assert!(!wal_path(&dir, 0, 0).exists());
        assert!(!shard_counts_path(&dir, 0, 0).exists());
        assert!(base_path(&dir, 1).exists());

        // A second recovery (nothing new) is idempotent.
        let rec2 = recover(&dir, &tiles, None).unwrap();
        assert_eq!(rec2.counts, rec.counts);
        assert_eq!(rec2.gen, 2);
        assert_eq!(rec2.replayed_reports, 0);

        // Universe mismatch is refused outright.
        assert!(recover(&dir, &[0u16; 9], None).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_restores_the_window_ring_bit_identically() {
        let dir = tmp_dir("ring-recover");
        let tiles = vec![0u16; 5];
        let reports: Vec<Report> = (0..300).map(toy_report).collect();

        // Two shards, round-robin. Shard 0 snapshots (counts + ring)
        // mid-stream, leaving a tail; shard 1 has log only.
        let mut rings = [
            WindowedAggregator::new(tiles.clone(), WINDOW),
            WindowedAggregator::new(tiles.clone(), WINDOW),
        ];
        let mut aggs = [
            Aggregator::from_region_tiles(tiles.clone()),
            Aggregator::from_region_tiles(tiles.clone()),
        ];
        let mut wals = [
            WalWriter::create(&wal_path(&dir, 0, 0), 4).unwrap(),
            WalWriter::create(&wal_path(&dir, 0, 1), 4).unwrap(),
        ];
        for (i, r) in reports.iter().enumerate() {
            let s = i % 2;
            wals[s].append(&r.encode()).unwrap();
            aggs[s].ingest(r);
            rings[s].ingest(r);
            if i == 149 {
                wals[0].flush().unwrap();
                write_shard_counts(
                    &shard_counts_path(&dir, 0, 0),
                    aggs[0].counts(),
                    wals[0].offset(),
                    Some(&rings[0].encode_ring()),
                )
                .unwrap();
            }
        }
        wals[0].flush().unwrap();
        wals[1].flush().unwrap();

        // Reference: the global ring an uninterrupted run would hold.
        let mut expected_ring = WindowedAggregator::new(tiles.clone(), WINDOW);
        for r in &reports {
            expected_ring.ingest(r);
        }

        let rec = recover(&dir, &tiles, Some(WINDOW)).unwrap();
        let ring = rec.ring.expect("window config requested a ring");
        assert_eq!(ring.merged(), expected_ring.merged(), "bit-identical ring");
        assert_eq!(ring.newest_window(), expected_ring.newest_window());
        for (id, counts) in expected_ring.windows() {
            assert_eq!(ring.window_counts(id), Some(counts), "window {id}");
        }
        // The compacted generation persists the ring; a second recovery
        // reads it back identically with nothing to replay.
        assert!(ring_path(&dir, 1).exists());
        let rec2 = recover(&dir, &tiles, Some(WINDOW)).unwrap();
        assert_eq!(rec2.replayed_reports, 0);
        assert_eq!(
            rec2.ring.unwrap().merged(),
            expected_ring.merged(),
            "ring survives compaction"
        );
        // A mismatched window shape is refused, not re-bucketed.
        assert!(recover(
            &dir,
            &tiles,
            Some(WindowConfig {
                window_len: 30,
                num_windows: 4
            })
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_online_compaction_recovers_from_the_old_generation() {
        // Simulates a crash *between* writing the next generation's files
        // and flipping the manifest — the window online compaction opens.
        // Until the flip, generation g stays authoritative and the
        // half-built g+1 files must be swept, never merged.
        let dir = tmp_dir("compaction-crash");
        let tiles = vec![0u16; 5];
        let reports: Vec<Report> = (0..120).map(toy_report).collect();

        let mut agg = Aggregator::from_region_tiles(tiles.clone());
        let mut wal = WalWriter::create(&wal_path(&dir, 0, 0), 4).unwrap();
        for r in &reports {
            wal.append(&r.encode()).unwrap();
            agg.ingest(r);
        }
        wal.flush().unwrap();
        write_manifest(&dir, 0).unwrap();

        // "Crashed compaction": base-1 written with *partial* state (as
        // if counters were still being merged), a fresh empty gen-1 WAL
        // created — but no manifest flip.
        let mut partial = Aggregator::from_region_tiles(tiles.clone());
        for r in &reports[..30] {
            partial.ingest(r);
        }
        write_snapshot_file(&base_path(&dir, 1), partial.counts()).unwrap();
        WalWriter::create(&wal_path(&dir, 1, 0), 4).unwrap();

        let rec = recover(&dir, &tiles, None).unwrap();
        assert_eq!(
            &rec.counts,
            agg.counts(),
            "gen 0 stays authoritative; half-built gen 1 ignored"
        );
        assert_eq!(rec.replayed_reports, 120);
        assert_eq!(read_manifest(&dir).unwrap(), Some(1));
        // Recovery overwrote the half-built base with the full state (a
        // crashed compaction's new logs are always still *empty* — acks
        // only land in them after the manifest flip — so the leftover
        // gen-1 WAL replays nothing).
        assert_eq!(
            read_snapshot_file(&base_path(&dir, 1)).unwrap(),
            rec.counts,
            "base-1 now holds the full recovered state"
        );
        let rec2 = recover(&dir, &tiles, None).unwrap();
        assert_eq!(&rec2.counts, agg.counts(), "idempotent after the sweep");
        assert_eq!(rec2.replayed_reports, 0);
        // Same crash shape with a stale *ring* leftover: a non-streaming
        // recovery must not let it leak into the committed generation.
        std::fs::write(ring_path(&dir, 3), b"stale").unwrap();
        let rec3 = recover(&dir, &tiles, None).unwrap();
        assert_eq!(rec3.gen, 3);
        assert!(
            !ring_path(&dir, 3).exists(),
            "stale ring file must not survive into the committed generation"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

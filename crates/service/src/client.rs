//! Client-side streaming: connect, frame, send, await the ack.
//!
//! Used by the `loadgen` binary, the `service_ingest` bench, and the
//! end-to-end tests. The ack protocol makes completion *durable*: the
//! returned count only covers reports the server has validated, counted,
//! and flushed to its write-ahead log, so a caller that sees all acks may
//! kill the server and still expect exact recovery.

use std::io::{IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use trajshare_aggregate::{
    BatchEncoder, ControlDecoder, ControlFrame, GrantFrame, HelloFrame, Report,
};
use trajshare_core::vio;

/// Streams one report slice over a single connection and returns the
/// server's ack (reports accepted and made durable).
pub fn stream_once(addr: SocketAddr, reports: &[Report]) -> std::io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // Batch frames into large writes; syscall count, not framing, is the
    // client-side bottleneck.
    let mut buf = Vec::with_capacity(256 * 1024);
    for report in reports {
        report.encode_frame_into(&mut buf);
        if buf.len() >= 192 * 1024 {
            stream.write_all(&buf)?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        stream.write_all(&buf)?;
    }
    // Half-close tells the server "stream complete"; it replies with the
    // accepted count once everything is logged.
    stream.shutdown(Shutdown::Write)?;
    let mut ack = [0u8; 8];
    stream.read_exact(&mut ack)?;
    Ok(u64::from_le_bytes(ack))
}

/// Streams `reports` across `connections` parallel connections
/// (contiguous slices, one thread each) and returns the summed acks.
/// With a healthy server the sum equals `reports.len()`; a shortfall
/// means connections were refused (backpressure) or dropped.
pub fn stream_reports(
    addr: SocketAddr,
    reports: &[Report],
    connections: usize,
) -> std::io::Result<u64> {
    stream_reports_multi(&[addr], reports, connections)
}

/// Streams `reports` across `connections` parallel connections spread
/// round-robin over `addrs` (connection `i` targets `addrs[i % N]`) and
/// returns the summed acks. With one address this is exactly
/// [`stream_reports`]; with several it drives N workers directly — the
/// no-router baseline a cluster soak compares `routerd` against. At
/// least one connection per address is opened so every target sees
/// traffic even when `connections < addrs.len()`.
pub fn stream_reports_multi(
    addrs: &[SocketAddr],
    reports: &[Report],
    connections: usize,
) -> std::io::Result<u64> {
    assert!(!addrs.is_empty(), "need at least one target address");
    let connections = connections
        .max(addrs.len())
        .clamp(1, reports.len().max(1))
        .max(1);
    let per = reports.len().div_ceil(connections);
    std::thread::scope(|scope| {
        let handles: Vec<_> = reports
            .chunks(per.max(1))
            .enumerate()
            .map(|(i, slice)| {
                let addr = addrs[i % addrs.len()];
                scope.spawn(move || stream_once(addr, slice))
            })
            .collect();
        let mut total = 0u64;
        for h in handles {
            total += h.join().expect("client thread panicked")?;
        }
        Ok(total)
    })
}

/// Pre-encodes `reports` as wire bytes: `TSR4` batch frames of up to
/// `batch` reports when `batch > 1` (a frame flushes early whenever the
/// next report's ε′/|τ| key differs — see
/// `trajshare_aggregate::BatchEncoder`), plain single-report frames when
/// `batch <= 1`. Encoding once up front keeps serialization out of the
/// timed send path entirely.
pub fn encode_wire(reports: &[Report], batch: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(reports.len() * 64);
    if batch <= 1 {
        for r in reports {
            r.encode_frame_into(&mut out);
        }
    } else {
        let mut enc = BatchEncoder::new(batch);
        for r in reports {
            enc.push(r, &mut out);
        }
        enc.flush(&mut out);
    }
    out
}

/// Streams pre-encoded wire bytes over one connection, half-closes, and
/// returns the server's *last* cumulative ack (the total accepted and
/// durable). Batch-frame acks arriving mid-stream are drained
/// opportunistically between writes — they are cumulative, so the last
/// one wins — which also keeps a long upload from deadlocking against
/// the server's per-batch ack writes on a full socket buffer.
pub fn stream_bytes_once(addr: SocketAddr, wire: &[u8]) -> std::io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut acks = AckReader::default();
    for chunk in wire.chunks(256 * 1024) {
        stream.write_all(chunk)?;
        acks.drain_nonblocking(&mut stream)?;
    }
    stream.shutdown(Shutdown::Write)?;
    acks.read_to_eof(&mut stream)
}

/// [`stream_once`] with `TSR4` batch frames: one connection, batches of
/// up to `batch` reports, returns the server's final cumulative ack.
pub fn stream_once_batched(
    addr: SocketAddr,
    reports: &[Report],
    batch: usize,
) -> std::io::Result<u64> {
    stream_bytes_once(addr, &encode_wire(reports, batch))
}

/// [`stream_reports`] with `TSR4` batch frames.
pub fn stream_reports_batched(
    addr: SocketAddr,
    reports: &[Report],
    connections: usize,
    batch: usize,
) -> std::io::Result<u64> {
    stream_reports_multi_batched(&[addr], reports, connections, batch)
}

/// [`stream_reports_multi`] with `TSR4` batch frames: each connection's
/// slice is pre-encoded once (off the socket), then streamed, taking
/// the last cumulative ack. `batch <= 1` sends classic single-report
/// frames (still pre-encoded). Callers that want serialization out of
/// their timing entirely use [`encode_wire_multi`] + [`stream_wires`]
/// directly — this is just the two glued together.
pub fn stream_reports_multi_batched(
    addrs: &[SocketAddr],
    reports: &[Report],
    connections: usize,
    batch: usize,
) -> std::io::Result<u64> {
    stream_wires(&encode_wire_multi(addrs, reports, connections, batch))
}

/// One pre-encoded wire frame with its 4-byte length prefix kept
/// separate from the payload — the scatter-gather unit of
/// [`stream_frames_once`], which hands (prefix, payload) pairs straight
/// to `write_vectored` without ever concatenating them.
pub struct EncodedFrame {
    prefix: [u8; 4],
    payload: Vec<u8>,
}

/// Pre-encodes `reports` exactly like [`encode_wire`] but keeps each
/// frame as its own [`EncodedFrame`] instead of one contiguous byte
/// run, so the send path can scatter-gather them. The split reuses
/// [`encode_wire`]'s bytes, so both paths are byte-identical on the
/// wire by construction.
pub fn encode_frames(reports: &[Report], batch: usize) -> Vec<EncodedFrame> {
    let wire = encode_wire(reports, batch);
    let mut frames = Vec::new();
    let mut i = 0;
    while i < wire.len() {
        let prefix: [u8; 4] = wire[i..i + 4].try_into().unwrap();
        let len = u32::from_le_bytes(prefix) as usize;
        frames.push(EncodedFrame {
            prefix,
            payload: wire[i + 4..i + 4 + len].to_vec(),
        });
        i += 4 + len;
    }
    frames
}

/// Streams pre-encoded frames over one connection with vectored writes
/// — each syscall gathers whole (prefix, payload) pairs up to an iovec
/// and byte budget — half-closes, and returns the server's last
/// cumulative ack. Wire bytes and ack handling are identical to
/// [`stream_bytes_once`]; only the syscall shape differs (no
/// concatenated send buffer is ever built).
pub fn stream_frames_once(addr: SocketAddr, frames: &[EncodedFrame]) -> std::io::Result<u64> {
    // writev caps: stay well under IOV_MAX (1024 on Linux) and keep
    // rounds around the same ~256 KiB granularity as the contiguous
    // path so ack drains stay as frequent.
    const MAX_IOVECS: usize = 1024;
    const GROUP_BYTES: usize = 256 * 1024;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut acks = AckReader::default();
    let mut i = 0;
    while i < frames.len() {
        let mut io: Vec<IoSlice> = Vec::with_capacity(64);
        let mut bytes = 0usize;
        while i < frames.len() && io.len() + 2 <= MAX_IOVECS && bytes < GROUP_BYTES {
            let f = &frames[i];
            io.push(IoSlice::new(&f.prefix));
            io.push(IoSlice::new(&f.payload));
            bytes += 4 + f.payload.len();
            i += 1;
        }
        vio::write_all_vectored(&mut stream, &mut io)?;
        acks.drain_nonblocking(&mut stream)?;
    }
    stream.shutdown(Shutdown::Write)?;
    acks.read_to_eof(&mut stream)
}

/// Splits `reports` into one contiguous slice per connection (round-
/// robin over `addrs`, at least one connection per address) and
/// pre-encodes each slice into [`EncodedFrame`]s. The returned
/// `(target, frames)` pairs are everything [`stream_wires`] needs, so
/// the one-time serialization cost is fully separated from the send
/// path — `loadgen` and the ingest bench encode first, start the
/// clock, then stream.
pub fn encode_wire_multi(
    addrs: &[SocketAddr],
    reports: &[Report],
    connections: usize,
    batch: usize,
) -> Vec<(SocketAddr, Vec<EncodedFrame>)> {
    assert!(!addrs.is_empty(), "need at least one target address");
    let connections = connections
        .max(addrs.len())
        .clamp(1, reports.len().max(1))
        .max(1);
    let per = reports.len().div_ceil(connections);
    reports
        .chunks(per.max(1))
        .enumerate()
        .map(|(i, slice)| (addrs[i % addrs.len()], encode_frames(slice, batch)))
        .collect()
}

/// Streams pre-encoded wires ([`encode_wire_multi`]) in parallel, one
/// connection per entry (scatter-gather writes —
/// [`stream_frames_once`]), and returns the summed final cumulative
/// acks.
pub fn stream_wires(wires: &[(SocketAddr, Vec<EncodedFrame>)]) -> std::io::Result<u64> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = wires
            .iter()
            .map(|(addr, frames)| scope.spawn(move || stream_frames_once(*addr, frames)))
            .collect();
        let mut total = 0u64;
        for h in handles {
            total += h.join().expect("client thread panicked")?;
        }
        Ok(total)
    })
}

/// A grant-session connection: the closed-loop client side of the
/// adaptive ε-budget protocol.
///
/// On connect it sends the `TSGH` subscribe hello, which switches the
/// server→client direction to length-prefixed control frames: framed
/// `TSAK` cumulative acks interleaved with pushed `TSGB` grants. The
/// client then alternates [`GrantClient::wait_grant`] (block until the
/// allocator announces ε′ for the window it wants to fill) with
/// [`GrantClient::send`] (stream reports randomized at exactly that
/// ε′), and [`GrantClient::finish`] half-closes and returns the durable
/// total — the same completion contract as [`stream_bytes_once`].
///
/// Works identically against a single grant-running `ingestd` and
/// against `routerd` (which relays the cluster coordinator's grants),
/// because the wire protocol is the same at both front doors.
pub struct GrantClient {
    stream: TcpStream,
    decoder: ControlDecoder,
    last_ack: u64,
    seen_ack: bool,
    eof: bool,
    latest: Option<GrantFrame>,
    grants_seen: Vec<GrantFrame>,
}

impl GrantClient {
    /// Connects, subscribes to the grant session, and returns the live
    /// client. The server's current grant (if any) arrives immediately
    /// — the late-joiner catch-up — and is visible through
    /// [`GrantClient::latest_grant`] after the first `wait_grant`/pump.
    pub fn connect(addr: SocketAddr) -> std::io::Result<GrantClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.write_all(&HelloFrame::subscribe().encode_frame())?;
        Ok(GrantClient {
            stream,
            decoder: ControlDecoder::new(),
            last_ack: 0,
            seen_ack: false,
            eof: false,
            latest: None,
            grants_seen: Vec::new(),
        })
    }

    /// The newest grant received so far.
    pub fn latest_grant(&self) -> Option<GrantFrame> {
        self.latest
    }

    /// Every distinct grant received, in arrival order.
    pub fn grants_seen(&self) -> &[GrantFrame] {
        &self.grants_seen
    }

    /// The last cumulative durable ack received so far.
    pub fn acked(&self) -> u64 {
        self.last_ack
    }

    fn absorb(&mut self, frame: ControlFrame) {
        match frame {
            // Cumulative, so the newest wins.
            ControlFrame::Ack(acked) => {
                self.last_ack = acked;
                self.seen_ack = true;
            }
            ControlFrame::Grant(g) => {
                // The board dedupes, but a reconnecting relay may
                // replay — keep `grants_seen` distinct by epoch.
                if self.grants_seen.last().map(|p| p.epoch) != Some(g.epoch) {
                    self.grants_seen.push(g);
                }
                self.latest = Some(g);
            }
        }
    }

    /// Decodes every complete buffered control frame.
    fn drain_decoder(&mut self) -> std::io::Result<()> {
        loop {
            match self.decoder.next_control() {
                Ok(Some(frame)) => self.absorb(frame),
                Ok(None) => return Ok(()),
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("corrupt control frame from server: {e:?}"),
                    ))
                }
            }
        }
    }

    /// Reads whatever the server has already pushed, without blocking.
    fn pump_nonblocking(&mut self) -> std::io::Result<()> {
        self.stream.set_nonblocking(true)?;
        let mut buf = [0u8; 4096];
        let res = loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    break Ok(());
                }
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        self.stream.set_nonblocking(false)?;
        res?;
        self.drain_decoder()
    }

    /// Blocks until a grant for window ≥ `min_window` arrives (the
    /// announced grant covers exactly one window, so "at least" is the
    /// right wait — the allocator never re-grants an older window with
    /// a newer epoch). Returns `None` on timeout with the loop still
    /// healthy; the caller decides whether to fall back to
    /// [`GrantClient::latest_grant`] or give up.
    pub fn wait_grant(
        &mut self,
        min_window: u64,
        timeout: Duration,
    ) -> std::io::Result<Option<GrantFrame>> {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump_nonblocking()?;
            match self.latest {
                Some(g) if g.window >= min_window => return Ok(Some(g)),
                _ => {}
            }
            if self.eof {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the grant session",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // Short blocking reads so a pushed grant wakes us promptly
            // without spinning.
            self.stream
                .set_read_timeout(Some((deadline - now).min(Duration::from_millis(50))))?;
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.stream
                        .set_read_timeout(Some(Duration::from_secs(30)))?;
                    return Err(e);
                }
            }
            self.stream
                .set_read_timeout(Some(Duration::from_secs(30)))?;
            self.drain_decoder()?;
        }
    }

    /// Streams pre-encoded report/batch wire bytes ([`encode_wire`]),
    /// draining pushed control frames between chunks so a long upload
    /// cannot deadlock against the server's ack/grant writes.
    pub fn send(&mut self, wire: &[u8]) -> std::io::Result<()> {
        for chunk in wire.chunks(256 * 1024) {
            self.stream.write_all(chunk)?;
            self.pump_nonblocking()?;
        }
        Ok(())
    }

    /// Half-closes and reads the session to EOF, returning the final
    /// cumulative durable ack. Same contract as [`stream_bytes_once`]:
    /// a server that closes without ever acking is an error.
    pub fn finish(mut self) -> std::io::Result<(u64, Vec<GrantFrame>)> {
        self.stream.shutdown(Shutdown::Write)?;
        let mut buf = [0u8; 4096];
        while !self.eof {
            match self.stream.read(&mut buf) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.decoder.extend(&buf[..n]);
                    self.drain_decoder()?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.drain_decoder()?;
        if !self.seen_ack {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before any ack",
            ));
        }
        Ok((self.last_ack, self.grants_seen))
    }
}

/// Reassembles the server's 8-byte cumulative acks from however the
/// socket fragments them, remembering the last complete one.
#[derive(Default)]
struct AckReader {
    partial: [u8; 8],
    have: usize,
    last: u64,
    seen: bool,
}

impl AckReader {
    fn feed(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.partial[self.have] = b;
            self.have += 1;
            if self.have == 8 {
                self.have = 0;
                self.last = u64::from_le_bytes(self.partial);
                self.seen = true;
            }
        }
    }

    /// Reads whatever acks are already buffered, without blocking.
    fn drain_nonblocking(&mut self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(true)?;
        let mut buf = [0u8; 1024];
        let res = loop {
            match stream.read(&mut buf) {
                // Early close surfaces on the next write or final read.
                Ok(0) => break Ok(()),
                Ok(n) => self.feed(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        stream.set_nonblocking(false)?;
        res
    }

    /// Blocks to EOF and returns the last cumulative ack; a connection
    /// the server closed without ever acking is an error (the client
    /// must not mistake a refused upload for zero durable reports).
    fn read_to_eof(mut self, stream: &mut TcpStream) -> std::io::Result<u64> {
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => self.feed(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if !self.seen {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before any ack",
            ));
        }
        Ok(self.last)
    }
}

//! Client-side streaming: connect, frame, send, await the ack.
//!
//! Used by the `loadgen` binary, the `service_ingest` bench, and the
//! end-to-end tests. The ack protocol makes completion *durable*: the
//! returned count only covers reports the server has validated, counted,
//! and flushed to its write-ahead log, so a caller that sees all acks may
//! kill the server and still expect exact recovery.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use trajshare_aggregate::Report;

/// Streams one report slice over a single connection and returns the
/// server's ack (reports accepted and made durable).
pub fn stream_once(addr: SocketAddr, reports: &[Report]) -> std::io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // Batch frames into large writes; syscall count, not framing, is the
    // client-side bottleneck.
    let mut buf = Vec::with_capacity(256 * 1024);
    for report in reports {
        report.encode_frame_into(&mut buf);
        if buf.len() >= 192 * 1024 {
            stream.write_all(&buf)?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        stream.write_all(&buf)?;
    }
    // Half-close tells the server "stream complete"; it replies with the
    // accepted count once everything is logged.
    stream.shutdown(Shutdown::Write)?;
    let mut ack = [0u8; 8];
    stream.read_exact(&mut ack)?;
    Ok(u64::from_le_bytes(ack))
}

/// Streams `reports` across `connections` parallel connections
/// (contiguous slices, one thread each) and returns the summed acks.
/// With a healthy server the sum equals `reports.len()`; a shortfall
/// means connections were refused (backpressure) or dropped.
pub fn stream_reports(
    addr: SocketAddr,
    reports: &[Report],
    connections: usize,
) -> std::io::Result<u64> {
    stream_reports_multi(&[addr], reports, connections)
}

/// Streams `reports` across `connections` parallel connections spread
/// round-robin over `addrs` (connection `i` targets `addrs[i % N]`) and
/// returns the summed acks. With one address this is exactly
/// [`stream_reports`]; with several it drives N workers directly — the
/// no-router baseline a cluster soak compares `routerd` against. At
/// least one connection per address is opened so every target sees
/// traffic even when `connections < addrs.len()`.
pub fn stream_reports_multi(
    addrs: &[SocketAddr],
    reports: &[Report],
    connections: usize,
) -> std::io::Result<u64> {
    assert!(!addrs.is_empty(), "need at least one target address");
    let connections = connections
        .max(addrs.len())
        .clamp(1, reports.len().max(1))
        .max(1);
    let per = reports.len().div_ceil(connections);
    std::thread::scope(|scope| {
        let handles: Vec<_> = reports
            .chunks(per.max(1))
            .enumerate()
            .map(|(i, slice)| {
                let addr = addrs[i % addrs.len()];
                scope.spawn(move || stream_once(addr, slice))
            })
            .collect();
        let mut total = 0u64;
        for h in handles {
            total += h.join().expect("client thread panicked")?;
        }
        Ok(total)
    })
}

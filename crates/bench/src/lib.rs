//! Evaluation harness shared by the table/figure binaries (§6–7).
//!
//! Provides the three §6.1 dataset scenarios, the five §5.9/§5.4 methods,
//! parallel per-trajectory perturbation, and table formatting / JSON result
//! persistence. Every binary in `src/bin/` regenerates one table or figure
//! of the paper; `run_all` chains them.

pub mod args;
pub mod report;
pub mod runner;
pub mod scenario;

pub use args::Args;
pub use report::{markdown_table, write_json, Reported};
pub use runner::{build_methods, run_method, MethodRun};
pub use scenario::{build_scenario, Scenario, ScenarioConfig};

pub mod experiments;

//! Table rendering and JSON result persistence.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A generic reported experiment: id, settings, and rows.
#[derive(Debug, Clone, Serialize)]
pub struct Reported {
    /// Experiment id, e.g. "table2" or "fig8b".
    pub id: String,
    /// Human-readable settings summary.
    pub settings: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

/// Renders a GitHub-flavored markdown table.
pub fn markdown_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str("| ");
    s.push_str(&headers.join(" | "));
    s.push_str(" |\n|");
    for _ in headers {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        s.push_str("| ");
        s.push_str(&row.join(" | "));
        s.push_str(" |\n");
    }
    s
}

impl Reported {
    /// Markdown rendering with a heading.
    pub fn to_markdown(&self) -> String {
        format!(
            "## {} ({})\n\n{}\n",
            self.id,
            self.settings,
            markdown_table(&self.headers, &self.rows)
        )
    }

    /// Prints to stdout.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = writeln!(lock, "{}", self.to_markdown());
    }
}

/// The workspace-level `results/` directory, resolved from this crate's
/// manifest rather than the process CWD — `cargo bench` runs bench
/// binaries from the package directory while `cargo run` uses the
/// invocation directory, and result artifacts must land in one place
/// either way (they are checked in).
pub fn results_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Writes the report as JSON under `results/<id>.json` (creating the
/// directory), so `run_all` can assemble EXPERIMENTS.md.
pub fn write_json(report: &Reported, results_dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(results_dir)?;
    let path = results_dir.join(format!("{}.json", report.id));
    let f = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(f), report).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Reported {
        Reported {
            id: "table_test".into(),
            settings: "eps=5".into(),
            headers: vec!["Method".into(), "NE".into()],
            rows: vec![
                vec!["NGram".into(), "1.18".into()],
                vec!["PhysDist".into(), "8.74".into()],
            ],
        }
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("| Method | NE |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| NGram | 1.18 |"));
    }

    #[test]
    fn json_roundtrip_via_file() {
        let dir = std::env::temp_dir().join(format!("trajshare-test-{}", std::process::id()));
        let r = sample();
        write_json(&r, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("table_test.json")).unwrap();
        assert!(content.contains("PhysDist"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

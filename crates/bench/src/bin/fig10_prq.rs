//! Regenerates Figure 10 (preservation range queries in all dimensions).

use trajshare_bench::experiments::{emit, fig10, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&fig10::run(&params));
}

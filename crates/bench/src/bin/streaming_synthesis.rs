//! Runs the sliding-window streaming synthesis scenario and prints the
//! per-tick latency / utility table.
//!
//! ```text
//! cargo run --release --bin streaming_synthesis -- --trajectories 6000 --epsilon 5
//! ```

use trajshare_bench::experiments::{emit, streaming, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&[streaming::run(&params)]);
}

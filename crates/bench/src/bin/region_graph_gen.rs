//! Generates a region-graph file (`TSRG` blob — see
//! `trajshare_core::graphcodec`) from a synthetic scenario, for
//! configuring a **dataset-less** `ingestd --region-graph` deployment:
//! the daemon gets the public universe (distance matrix, hour tiles,
//! `W₂`) in one file and can then run live model estimation without the
//! dataset ever leaving the trusted side.
//!
//! ```text
//! region_graph_gen --out FILE [--scenario taxi|safegraph|campus]
//!                  [--pois N] [--seed S] [--epsilon E]
//! ```
//!
//! Prints one `region graph written … regions=N bigrams=M` line; the CI
//! smoke parses `regions=` to drive `loadgen` against the same universe.

use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_bench::Args;
use trajshare_core::{decompose, write_region_graph_file, MechanismConfig, RegionGraph};

fn main() {
    let args = Args::from_env();
    let Some(out) = args.get("out") else {
        eprintln!(
            "usage: region_graph_gen --out FILE [--scenario taxi|safegraph|campus] \
             [--pois N] [--seed S]"
        );
        std::process::exit(2)
    };
    let scenario = match args.get("scenario").unwrap_or("taxi") {
        "taxi" => Scenario::TaxiFoursquare,
        "safegraph" => Scenario::Safegraph,
        "campus" => Scenario::Campus,
        other => {
            eprintln!("region_graph_gen: unknown scenario {other}");
            std::process::exit(2)
        }
    };
    let cfg = ScenarioConfig {
        num_pois: args.get_or("pois", 150),
        num_trajectories: 1, // the universe needs POIs, not trajectories
        seed: args.get_or("seed", 7),
        ..Default::default()
    };
    let (dataset, _) = build_scenario(scenario, &cfg);
    let regions = decompose(&dataset, &MechanismConfig::default());
    let graph = RegionGraph::build(&dataset, &regions);
    let tiles = trajshare_aggregate::region_tiles(&regions);
    let path = std::path::Path::new(out);
    write_region_graph_file(path, &graph, &tiles).unwrap_or_else(|e| {
        eprintln!("region_graph_gen: cannot write {out}: {e}");
        std::process::exit(1)
    });
    println!(
        "region graph written file={out} scenario={} regions={} bigrams={} bytes={}",
        scenario.name(),
        graph.num_regions(),
        graph.num_bigrams(),
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
    );
}

//! Regenerates Figure 8 (normalized error under parameter sweeps).
//!
//! `--param traj-len|epsilon|pois|speed|ngram` selects one panel family;
//! omit it to run all five.

use trajshare_bench::experiments::fig89::SweepParam;
use trajshare_bench::experiments::{emit, fig89, ExpParams};

fn main() {
    let args = trajshare_bench::Args::from_env();
    let params = ExpParams::from_args(&args);
    let sweeps: Vec<SweepParam> = match args.get("param") {
        Some(p) => vec![SweepParam::parse(p).expect("unknown --param")],
        None => SweepParam::all().to_vec(),
    };
    for sweep in sweeps {
        let (ne, _runtime) = fig89::run_sweep(sweep, &params);
        emit(&[ne]);
    }
}

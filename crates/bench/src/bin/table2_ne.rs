//! Regenerates Table 2 (mean normalized error). See DESIGN.md §3.
//!
//! Usage: `cargo run --release -p trajshare-bench --bin table2_ne -- \
//!   [--pois N] [--trajectories N] [--epsilon E] [--workers W] [--seed S]`

use trajshare_bench::experiments::{emit, table2, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&[table2::run(&params)]);
}

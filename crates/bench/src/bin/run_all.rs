//! Runs every table/figure experiment and writes `results/*.json` plus a
//! combined `results/EXPERIMENTS_GENERATED.md` — the measured side of
//! EXPERIMENTS.md.
//!
//! `--quick` shrinks sizes for a smoke run.

use trajshare_bench::experiments::fig89::SweepParam;
use trajshare_bench::experiments::{
    ablation, aggregation, emit, fig10, fig7, fig89, streaming, table2, table3, table4, ExpParams,
};
use trajshare_bench::Reported;

fn main() {
    let args = trajshare_bench::Args::from_env();
    let mut params = ExpParams::from_args(&args);
    if args.flag("quick") {
        params.num_pois = 150;
        params.num_trajectories = 20;
    }
    let mut all: Vec<Reported> = Vec::new();

    eprintln!("=== Table 2 ===");
    all.push(table2::run(&params));
    eprintln!("=== Table 3 ===");
    all.push(table3::run(&params));
    eprintln!("=== Table 4 ===");
    all.push(table4::run(&params));
    eprintln!("=== Figure 7 ===");
    all.extend(fig7::run(&params));
    eprintln!("=== Figures 8 & 9 ===");
    for sweep in SweepParam::all() {
        let (ne, rt) = fig89::run_sweep(sweep, &params);
        all.push(ne);
        all.push(rt);
    }
    eprintln!("=== Figure 10 ===");
    all.extend(fig10::run(&params));
    eprintln!("=== Ablations ===");
    all.push(ablation::run_merging(&params));
    all.push(ablation::run_solver(&params));
    eprintln!("=== Aggregation synthesis ===");
    all.push(aggregation::run(&params));
    eprintln!("=== Streaming synthesis ===");
    all.push(streaming::run(&params));

    emit(&all);
    // Combined markdown for EXPERIMENTS.md consumption.
    let mut md = String::from("# Generated experiment results\n\n");
    for r in &all {
        md.push_str(&r.to_markdown());
        md.push('\n');
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/EXPERIMENTS_GENERATED.md", md).expect("write combined markdown");
    eprintln!("wrote results/EXPERIMENTS_GENERATED.md");
}

//! Runs the red-team attack suite against the published streams and
//! prints the per-ε reconstruction / empirical-ε / utility table.
//!
//! ```text
//! cargo run --release --bin attack_suite -- --seed 7
//! QUICK_BENCH=1 cargo run --release --bin attack_suite   # CI smoke
//! ```

use trajshare_bench::experiments::{attack, emit, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&[attack::run(&params)]);
}

//! Regenerates Figure 9 (average runtime under parameter sweeps).
//!
//! Same sweeps as Figure 8; this binary reports the runtime tables.

use trajshare_bench::experiments::fig89::SweepParam;
use trajshare_bench::experiments::{emit, fig89, ExpParams};

fn main() {
    let args = trajshare_bench::Args::from_env();
    let params = ExpParams::from_args(&args);
    let sweeps: Vec<SweepParam> = match args.get("param") {
        Some(p) => vec![SweepParam::parse(p).expect("unknown --param")],
        None => SweepParam::all().to_vec(),
    };
    for sweep in sweeps {
        let (_ne, runtime) = fig89::run_sweep(sweep, &params);
        emit(&[runtime]);
    }
}

//! Runs the population-scale aggregation → synthesis scenario and prints
//! the utility comparison against the per-user baselines.
//!
//! ```text
//! cargo run --release --bin aggregate_synthesis -- --trajectories 10000 --epsilon 5
//! ```

use trajshare_bench::experiments::{aggregation, emit, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&[aggregation::run(&params)]);
}

//! Regenerates Table 4 (hotspot AHD/ACD).

use trajshare_bench::experiments::{emit, table4, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&[table4::run(&params)]);
}

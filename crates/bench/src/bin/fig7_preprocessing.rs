//! Regenerates Figure 7 (pre-processing runtime vs |P| and travel speed).

use trajshare_bench::experiments::{emit, fig7, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&fig7::run(&params));
}

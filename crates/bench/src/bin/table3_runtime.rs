//! Regenerates Table 3 (runtime breakdown by mechanism stage).

use trajshare_bench::experiments::{emit, table3, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&[table3::run(&params)]);
}

//! Ablation of the §5.3 merging policy (κ, dimension order) and the §5.5
//! reconstruction solver — the analyses the paper mentions but omits for
//! space.

use trajshare_bench::experiments::{ablation, emit, ExpParams};

fn main() {
    let params = ExpParams::from_args(&trajshare_bench::Args::from_env());
    emit(&[
        ablation::run_merging(&params),
        ablation::run_solver(&params),
    ]);
}

//! The three §6.1 evaluation scenarios.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_datagen::{
    generate_campus, generate_safegraph, generate_taxi_foursquare, CampusConfig, CityConfig,
    SafegraphConfig, SyntheticCity, TaxiFoursquareConfig,
};
use trajshare_hierarchy::builders::{foursquare, naics};
use trajshare_model::{Dataset, TrajectorySet};

/// Which dataset family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Foursquare-hierarchy city with check-in walks ("Taxi-Foursquare").
    TaxiFoursquare,
    /// NAICS-hierarchy city with the §6.1.2 dwell-time process.
    Safegraph,
    /// UBC-like campus with the three induced events.
    Campus,
}

impl Scenario {
    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::TaxiFoursquare => "Taxi-Foursquare",
            Scenario::Safegraph => "Safegraph",
            Scenario::Campus => "Campus",
        }
    }

    /// All three scenarios.
    pub fn all() -> [Scenario; 3] {
        [
            Scenario::TaxiFoursquare,
            Scenario::Safegraph,
            Scenario::Campus,
        ]
    }
}

/// Size knobs shared by the binaries.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// `|P|` for the city scenarios (campus is fixed at 262 buildings).
    pub num_pois: usize,
    /// Trajectories to generate (pre-filtering).
    pub num_trajectories: usize,
    /// Travel speed override, km/h; `None` = paper defaults (8 city / 4
    /// campus); `Some(f64::INFINITY)` disables reachability.
    pub speed_kmh: Option<f64>,
    /// Fix every trajectory's length to exactly this value (Figure 8a/9a
    /// sweeps); `None` uses the scenario's natural 3–8 range.
    pub traj_len: Option<u32>,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            num_pois: 600,
            num_trajectories: 120,
            speed_kmh: None,
            traj_len: None,
            seed: 7,
        }
    }
}

fn len_bounds(cfg: &ScenarioConfig, default: (u32, u32)) -> (u32, u32) {
    match cfg.traj_len {
        Some(l) => (l, l),
        None => default,
    }
}

/// Builds the dataset and trajectory set of a scenario. When
/// `cfg.traj_len` is set, only trajectories of exactly that length are
/// kept.
pub fn build_scenario(scenario: Scenario, cfg: &ScenarioConfig) -> (Dataset, TrajectorySet) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let speed = |default: f64| -> Option<f64> {
        match cfg.speed_kmh {
            Some(s) if s.is_infinite() => None,
            Some(s) => Some(s),
            None => Some(default),
        }
    };
    match scenario {
        Scenario::TaxiFoursquare => {
            let city = SyntheticCity::generate(
                &CityConfig {
                    num_pois: cfg.num_pois,
                    speed_kmh: speed(8.0),
                    ..Default::default()
                },
                foursquare(),
                &mut rng,
            );
            let set = generate_taxi_foursquare(
                &city.dataset,
                &TaxiFoursquareConfig {
                    num_trajectories: cfg.num_trajectories,
                    len_bounds: len_bounds(cfg, (3, 8)),
                    ..Default::default()
                },
                &mut rng,
            );
            (city.dataset, exact_len(set, cfg))
        }
        Scenario::Safegraph => {
            let city = SyntheticCity::generate(
                &CityConfig {
                    num_pois: cfg.num_pois,
                    speed_kmh: speed(8.0),
                    ..Default::default()
                },
                naics(),
                &mut rng,
            );
            let set = generate_safegraph(
                &city.dataset,
                &SafegraphConfig {
                    num_trajectories: cfg.num_trajectories,
                    len_bounds: len_bounds(cfg, (3, 8)),
                    ..Default::default()
                },
                &mut rng,
            );
            (city.dataset, exact_len(set, cfg))
        }
        Scenario::Campus => {
            let data = generate_campus(
                &CampusConfig {
                    num_trajectories: cfg.num_trajectories,
                    speed_kmh: speed(4.0),
                    len_bounds: len_bounds(cfg, (3, 8)),
                    ..Default::default()
                },
                &mut rng,
            );
            let set = exact_len(data.trajectories, cfg);
            (data.dataset, set)
        }
    }
}

/// Keeps only exact-length trajectories when `traj_len` is pinned.
fn exact_len(set: TrajectorySet, cfg: &ScenarioConfig) -> TrajectorySet {
    match cfg.traj_len {
        Some(l) => set
            .all()
            .iter()
            .filter(|t| t.len() == l as usize)
            .cloned()
            .collect(),
        None => set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_nonempty_sets() {
        let cfg = ScenarioConfig {
            num_pois: 200,
            num_trajectories: 40,
            ..Default::default()
        };
        for s in Scenario::all() {
            let (ds, set) = build_scenario(s, &cfg);
            assert!(!set.is_empty(), "{} produced no trajectories", s.name());
            for t in set.all() {
                assert!(t.validate(&ds).is_ok());
            }
        }
    }

    #[test]
    fn seed_determinism() {
        let cfg = ScenarioConfig {
            num_pois: 150,
            num_trajectories: 25,
            ..Default::default()
        };
        let (_, a) = build_scenario(Scenario::TaxiFoursquare, &cfg);
        let (_, b) = build_scenario(Scenario::TaxiFoursquare, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.all().iter().zip(b.all()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn infinite_speed_disables_reachability() {
        let cfg = ScenarioConfig {
            num_pois: 150,
            num_trajectories: 20,
            speed_kmh: Some(f64::INFINITY),
            ..Default::default()
        };
        let (ds, _) = build_scenario(Scenario::Safegraph, &cfg);
        assert_eq!(ds.speed_kmh, None);
    }
}

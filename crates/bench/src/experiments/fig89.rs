//! Figures 8 and 9: normalized error and average runtime as experimental
//! settings vary. One sweep produces both figures' data: every cell runs
//! all five methods and records the combined NE (Figure 8) and the mean
//! per-trajectory runtime (Figure 9).
//!
//! Panels:
//! * (a/e) trajectory length ∈ {4, 6, 8} — Taxi-Foursquare, Safegraph,
//! * (b/f) privacy budget ∈ {0.01, 0.1, 1, 10},
//! * (c/g) |P| ∈ {1×, 2×, 3×, 4×} the base size,
//! * (d/h) travel speed ∈ {4, 8, 12, 16, ∞} km/h,
//! * (i)   n-gram length ∈ {1, 2, 3} — Campus.

use super::ExpParams;
use crate::report::Reported;
use crate::runner::{build_methods, run_method};
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::distances::point_distance;
use trajshare_core::MechanismConfig;
use trajshare_model::{Dataset, Trajectory};

/// Which parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    TrajLen,
    Epsilon,
    Pois,
    Speed,
    NgramLen,
}

impl SweepParam {
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "traj-len" => Some(Self::TrajLen),
            "epsilon" => Some(Self::Epsilon),
            "pois" => Some(Self::Pois),
            "speed" => Some(Self::Speed),
            "ngram" => Some(Self::NgramLen),
            _ => None,
        }
    }

    pub fn all() -> [SweepParam; 5] {
        [
            Self::TrajLen,
            Self::Epsilon,
            Self::Pois,
            Self::Speed,
            Self::NgramLen,
        ]
    }

    fn id(&self) -> &'static str {
        match self {
            Self::TrajLen => "traj_len",
            Self::Epsilon => "epsilon",
            Self::Pois => "pois",
            Self::Speed => "speed",
            Self::NgramLen => "ngram",
        }
    }

    fn scenarios(&self) -> Vec<Scenario> {
        match self {
            // Figure 8i/9i use the campus data; the rest use the two cities.
            Self::NgramLen => vec![Scenario::Campus],
            _ => vec![Scenario::TaxiFoursquare, Scenario::Safegraph],
        }
    }
}

/// Combined (Eq. 15) point distance averaged per point — the single NE
/// number plotted in Figure 8.
fn combined_ne(dataset: &Dataset, real: &[Trajectory], perturbed: &[Trajectory]) -> f64 {
    let mut total = 0.0;
    for (r, p) in real.iter().zip(perturbed) {
        let per: f64 = r
            .points()
            .iter()
            .zip(p.points())
            .map(|(a, b)| point_distance(dataset, (a.poi, a.t), (b.poi, b.t)))
            .sum();
        total += per / r.len() as f64;
    }
    total / real.len() as f64
}

/// One sweep; returns (fig8 NE table, fig9 runtime table).
pub fn run_sweep(param: SweepParam, params: &ExpParams) -> (Reported, Reported) {
    let settings: Vec<(String, ScenarioConfig, MechanismConfig)> = match param {
        SweepParam::TrajLen => [4u32, 6, 8]
            .iter()
            .map(|&l| {
                (
                    format!("|τ|={l}"),
                    ScenarioConfig {
                        num_pois: params.num_pois,
                        num_trajectories: params.num_trajectories * 3, // exact-length filter attrition
                        traj_len: Some(l),
                        speed_kmh: None,
                        seed: params.seed,
                    },
                    MechanismConfig::default().with_epsilon(params.epsilon),
                )
            })
            .collect(),
        SweepParam::Epsilon => [0.01, 0.1, 1.0, 10.0]
            .iter()
            .map(|&e| {
                (
                    format!("ε={e}"),
                    ScenarioConfig {
                        num_pois: params.num_pois,
                        num_trajectories: params.num_trajectories,
                        traj_len: None,
                        speed_kmh: None,
                        seed: params.seed,
                    },
                    MechanismConfig::default().with_epsilon(e),
                )
            })
            .collect(),
        SweepParam::Pois => [1usize, 2, 3, 4]
            .iter()
            .map(|&k| {
                (
                    format!("|P|={}", params.num_pois * k),
                    ScenarioConfig {
                        num_pois: params.num_pois * k,
                        num_trajectories: params.num_trajectories,
                        traj_len: None,
                        speed_kmh: None,
                        seed: params.seed,
                    },
                    MechanismConfig::default().with_epsilon(params.epsilon),
                )
            })
            .collect(),
        SweepParam::Speed => [4.0, 8.0, 12.0, 16.0, f64::INFINITY]
            .iter()
            .map(|&s| {
                let label = if s.is_infinite() {
                    "speed=Inf".to_string()
                } else {
                    format!("speed={s}")
                };
                (
                    label,
                    ScenarioConfig {
                        num_pois: params.num_pois,
                        num_trajectories: params.num_trajectories,
                        traj_len: None,
                        speed_kmh: Some(s),
                        seed: params.seed,
                    },
                    MechanismConfig::default().with_epsilon(params.epsilon),
                )
            })
            .collect(),
        SweepParam::NgramLen => [1usize, 2, 3]
            .iter()
            .map(|&n| {
                (
                    format!("n={n}"),
                    ScenarioConfig {
                        num_pois: params.num_pois,
                        num_trajectories: params.num_trajectories,
                        traj_len: None,
                        speed_kmh: None,
                        seed: params.seed,
                    },
                    MechanismConfig::default()
                        .with_epsilon(params.epsilon)
                        .with_n(n),
                )
            })
            .collect(),
    };

    let mut headers = vec!["Method".to_string()];
    let mut ne_rows: Vec<Vec<String>> = Vec::new();
    let mut rt_rows: Vec<Vec<String>> = Vec::new();
    for scenario in param.scenarios() {
        for (label, scen_cfg, mech_cfg) in &settings {
            headers.push(format!("{} {label}", scenario.name()));
            let (dataset, set) = build_scenario(scenario, scen_cfg);
            if set.is_empty() {
                for rows in [&mut ne_rows, &mut rt_rows] {
                    for row in rows.iter_mut() {
                        row.push("—".into());
                    }
                }
                continue;
            }
            let methods = build_methods(&dataset, mech_cfg);
            for (mi, mech) in methods.iter().enumerate() {
                if ne_rows.len() <= mi {
                    ne_rows.push(vec![mech.name().to_string()]);
                    rt_rows.push(vec![mech.name().to_string()]);
                }
                let run = run_method(mech.as_ref(), &set, params.seed, params.workers);
                let ne = combined_ne(&dataset, set.all(), &run.perturbed);
                ne_rows[mi].push(format!("{ne:.2}"));
                rt_rows[mi].push(format!("{:.3}", run.mean_timings.total().as_secs_f64()));
                eprintln!(
                    "fig8/9 [{}]: {} {} {} -> NE {ne:.2}, {:.3}s",
                    param.id(),
                    scenario.name(),
                    label,
                    mech.name(),
                    run.mean_timings.total().as_secs_f64()
                );
            }
        }
    }
    let common = format!(
        "|P|base={} |T|={} eps-base={}",
        params.num_pois, params.num_trajectories, params.epsilon
    );
    (
        Reported {
            id: format!("fig8_{}", param.id()),
            settings: format!("combined NE; {common}"),
            headers: headers.clone(),
            rows: ne_rows,
        },
        Reported {
            id: format!("fig9_{}", param.id()),
            settings: format!("mean seconds/trajectory; {common}"),
            headers,
            rows: rt_rows,
        },
    )
}

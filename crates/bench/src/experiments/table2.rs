//! Table 2: mean normalized error between real and perturbed trajectory
//! sets, per dimension, for all five methods on all three datasets.

use super::ExpParams;
use crate::report::Reported;
use crate::runner::{build_methods, run_method};
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::MechanismConfig;
use trajshare_query::normalized_error;

/// Runs the Table 2 experiment.
pub fn run(params: &ExpParams) -> Reported {
    let config = MechanismConfig::default().with_epsilon(params.epsilon);
    let mut headers = vec!["Method".to_string()];
    for s in Scenario::all() {
        for dim in ["d_t (h)", "d_c", "d_s (km)"] {
            headers.push(format!("{} {dim}", s.name()));
        }
    }
    // rows[method][scenario * 3 + dim]
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (si, scenario) in Scenario::all().into_iter().enumerate() {
        let cfg = ScenarioConfig {
            num_pois: params.num_pois,
            num_trajectories: params.num_trajectories,
            speed_kmh: None,
            traj_len: None,
            seed: params.seed,
        };
        let (dataset, set) = build_scenario(scenario, &cfg);
        let methods = build_methods(&dataset, &config);
        for (mi, mech) in methods.iter().enumerate() {
            if rows.len() <= mi {
                rows.push(vec![mech.name().to_string()]);
            }
            let run = run_method(mech.as_ref(), &set, params.seed, params.workers);
            let ne = normalized_error(&dataset, set.all(), &run.perturbed);
            rows[mi].push(format!("{:.2}", ne.dt));
            rows[mi].push(format!("{:.2}", ne.dc));
            rows[mi].push(format!("{:.2}", ne.ds));
            eprintln!(
                "table2: {} / {} done (dt={:.2} dc={:.2} ds={:.2})",
                scenario.name(),
                mech.name(),
                ne.dt,
                ne.dc,
                ne.ds
            );
        }
        let _ = si;
    }
    Reported {
        id: "table2".into(),
        settings: format!(
            "|P|={} |T|={} eps={} (paper: |P|=2000, |T|=5-10k, eps=5)",
            params.num_pois, params.num_trajectories, params.epsilon
        ),
        headers,
        rows,
    }
}

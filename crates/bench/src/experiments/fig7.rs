//! Figure 7: pre-processing runtime (POI processing, hierarchical
//! decomposition, region specification, W_n formation) as |P| and the
//! assumed travel speed vary.

use super::ExpParams;
use crate::report::Reported;
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use std::time::Instant;
use trajshare_core::{MechanismConfig, NGramMechanism};

/// Runs the Figure 7 experiment (both panels).
pub fn run(params: &ExpParams) -> Vec<Reported> {
    let config = MechanismConfig::default().with_epsilon(params.epsilon);

    // Panel 1: runtime vs |P| for the two city scenarios.
    let poi_sizes: Vec<usize> = [1usize, 2, 3, 4]
        .iter()
        .map(|&k| params.num_pois * k)
        .collect();
    let mut rows = Vec::new();
    for &n in &poi_sizes {
        let mut row = vec![format!("{n}")];
        for scenario in [Scenario::TaxiFoursquare, Scenario::Safegraph] {
            let cfg = ScenarioConfig {
                num_pois: n,
                num_trajectories: 1, // trajectories are irrelevant here
                speed_kmh: None,
                traj_len: None,
                seed: params.seed,
            };
            let (dataset, _) = build_scenario(scenario, &cfg);
            let t0 = Instant::now();
            let mech = NGramMechanism::build(&dataset, &config);
            let dt = t0.elapsed();
            row.push(format!("{:.2}", dt.as_secs_f64()));
            eprintln!(
                "fig7: {} |P|={n}: {:.2}s ({} regions, {} bigrams)",
                scenario.name(),
                dt.as_secs_f64(),
                mech.regions().len(),
                mech.graph().num_bigrams()
            );
        }
        rows.push(row);
    }
    let by_pois = Reported {
        id: "fig7_pois".into(),
        settings: format!("pre-processing wall time; base |P|={}", params.num_pois),
        headers: vec![
            "|P|".into(),
            "Taxi-Foursquare (s)".into(),
            "Safegraph (s)".into(),
        ],
        rows,
    };

    // Panel 2: runtime vs travel speed (fixed |P|).
    let speeds = [4.0, 8.0, 12.0, 16.0, f64::INFINITY];
    let mut rows = Vec::new();
    for &s in &speeds {
        let mut row = vec![if s.is_infinite() {
            "Inf".into()
        } else {
            format!("{s}")
        }];
        for scenario in [Scenario::TaxiFoursquare, Scenario::Safegraph] {
            let cfg = ScenarioConfig {
                num_pois: params.num_pois,
                num_trajectories: 1,
                speed_kmh: Some(s),
                traj_len: None,
                seed: params.seed,
            };
            let (dataset, _) = build_scenario(scenario, &cfg);
            let t0 = Instant::now();
            let _mech = NGramMechanism::build(&dataset, &config);
            row.push(format!("{:.2}", t0.elapsed().as_secs_f64()));
        }
        rows.push(row);
        eprintln!("fig7: speed {} done", row_label(s));
    }
    let by_speed = Reported {
        id: "fig7_speed".into(),
        settings: format!("pre-processing wall time at |P|={}", params.num_pois),
        headers: vec![
            "Speed (km/h)".into(),
            "Taxi-Foursquare (s)".into(),
            "Safegraph (s)".into(),
        ],
        rows,
    };
    vec![by_pois, by_speed]
}

fn row_label(s: f64) -> String {
    if s.is_infinite() {
        "Inf".into()
    } else {
        format!("{s}")
    }
}

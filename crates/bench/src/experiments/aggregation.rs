//! The population-scale aggregation scenario: simulate N users uploading
//! stage-1 NGram reports, aggregate + estimate + synthesize with
//! `trajshare_aggregate`, and score the published synthetic set against
//! ground truth next to the per-user baselines — the server-side
//! counterpart of the per-user tables.

use super::ExpParams;
use crate::report::Reported;
use crate::runner::run_method;
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_aggregate::{
    aggregate_and_synthesize_matching, collect_reports, score_paired, EvalConfig, UtilityScores,
};
use trajshare_core::baselines::IndependentMechanism;
use trajshare_core::{MechanismConfig, NGramMechanism};

fn fmt_scores(s: &UtilityScores) -> Vec<String> {
    vec![
        format!("{:.1}", s.prq_space),
        format!("{:.1}", s.prq_time),
        format!("{:.1}", s.prq_category),
        s.hotspot_ahd.map_or("—".into(), |v| format!("{v:.2}")),
        format!("{:.3}", s.od_l1),
    ]
}

/// Runs the aggregation-synthesis experiment on the Taxi-Foursquare
/// scenario: one row for the synthetic set, one per per-user baseline.
pub fn run(params: &ExpParams) -> Reported {
    let cfg = ScenarioConfig {
        num_pois: params.num_pois,
        num_trajectories: params.num_trajectories,
        traj_len: Some(3),
        seed: params.seed,
        ..Default::default()
    };
    let (dataset, real) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    let mech_cfg = MechanismConfig::default().with_epsilon(params.epsilon);
    let eval = EvalConfig::default();

    let mech = NGramMechanism::build(&dataset, &mech_cfg);
    let reports = collect_reports(&mech, &real, params.seed ^ 0xA66);
    let outcome = aggregate_and_synthesize_matching(&dataset, &mech, &reports, params.seed ^ 0x517);
    let bytes: usize = reports.iter().map(|r| r.encoded_len()).sum();

    let mut rows = Vec::new();
    rows.push({
        let mut row = vec!["Synthetic (aggregate)".to_string()];
        row.extend(fmt_scores(&score_paired(
            &dataset,
            &real,
            outcome.synthetic.all(),
            &eval,
        )));
        row
    });
    for (name, baseline) in [
        (
            "IndNoReach",
            IndependentMechanism::build(&dataset, params.epsilon, false),
        ),
        (
            "IndReach",
            IndependentMechanism::build(&dataset, params.epsilon, true),
        ),
    ] {
        let run = run_method(&baseline, &real, params.seed ^ 0xB0, params.workers);
        let mut row = vec![name.to_string()];
        row.extend(fmt_scores(&score_paired(
            &dataset,
            &real,
            &run.perturbed,
            &eval,
        )));
        rows.push(row);
    }

    Reported {
        id: "aggregation_synthesis".into(),
        settings: format!(
            "Taxi-Foursquare, {} users, ε = {}, |R| = {}, {} report bytes total, estimator = IBU",
            real.len(),
            params.epsilon,
            mech.regions().len(),
            bytes,
        ),
        headers: vec![
            "Method".into(),
            "PRQ space %".into(),
            "PRQ time %".into(),
            "PRQ category %".into(),
            "Hotspot AHD (h)".into(),
            "OD L1".into(),
        ],
        rows,
    }
}

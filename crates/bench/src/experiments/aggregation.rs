//! The population-scale aggregation scenario: simulate N users uploading
//! stage-1 NGram reports, aggregate + estimate + synthesize with
//! `trajshare_aggregate`, and score the published synthetic set against
//! ground truth next to the per-user baselines — the server-side
//! counterpart of the per-user tables.
//!
//! Runs on **all three** dataset families (Taxi-Foursquare, Safegraph,
//! and the fixed-size Campus — closing the cross-dataset roadmap item)
//! and publishes one synthetic row per estimator backend (`dense`
//! product-channel IBU vs the `sparse-w2` feasibility-normalized IBU),
//! so the backend comparison is not tied to a single hierarchy.

use super::ExpParams;
use crate::report::Reported;
use crate::runner::run_method;
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use std::time::Instant;
use trajshare_aggregate::{
    aggregate_and_synthesize_matching_with, collect_reports, score_paired, EstimatorBackend,
    EvalConfig, FrequencyEstimator, UtilityScores,
};
use trajshare_core::baselines::IndependentMechanism;
use trajshare_core::{MechanismConfig, NGramMechanism};

fn fmt_scores(s: &UtilityScores) -> Vec<String> {
    vec![
        format!("{:.1}", s.prq_space),
        format!("{:.1}", s.prq_time),
        format!("{:.1}", s.prq_category),
        s.hotspot_ahd.map_or("—".into(), |v| format!("{v:.2}")),
        format!("{:.3}", s.od_l1),
    ]
}

/// Runs the aggregation-synthesis experiment on every §6.1 scenario
/// (Taxi-Foursquare, Safegraph, Campus): one synthetic row per estimator
/// backend, one row per per-user baseline, per dataset.
pub fn run(params: &ExpParams) -> Reported {
    let eval = EvalConfig::default();
    let mech_cfg = MechanismConfig::default().with_epsilon(params.epsilon);
    let mut rows = Vec::new();
    let mut settings_bits = Vec::new();

    for scenario in Scenario::all() {
        let cfg = ScenarioConfig {
            num_pois: params.num_pois,
            num_trajectories: params.num_trajectories,
            traj_len: Some(3),
            seed: params.seed,
            ..Default::default()
        };
        let (dataset, real) = build_scenario(scenario, &cfg);
        let mech = NGramMechanism::build(&dataset, &mech_cfg);
        let reports = collect_reports(&mech, &real, params.seed ^ 0xA66);
        let bytes: usize = reports.iter().map(|r| r.encoded_len()).sum();
        settings_bits.push(format!(
            "{}: {} users, |R| = {}, |W₂| = {}, {} report bytes",
            scenario.name(),
            real.len(),
            mech.regions().len(),
            mech.graph().num_bigrams(),
            bytes,
        ));

        // Always compare the dense reference against the W₂-aware model,
        // plus whatever `--backend` asked for (e.g. `blocked`).
        let mut backends = vec![EstimatorBackend::Dense, EstimatorBackend::SparseW2];
        if !backends.contains(&params.backend) {
            backends.insert(1, params.backend);
        }
        for backend in backends {
            let t0 = Instant::now();
            let outcome = aggregate_and_synthesize_matching_with(
                &dataset,
                &mech,
                &reports,
                params.seed ^ 0x517,
                FrequencyEstimator::ibu(backend),
            );
            let fit_s = t0.elapsed().as_secs_f64();
            let mut row = vec![
                scenario.name().to_string(),
                format!("Synthetic (IBU {backend})"),
            ];
            row.extend(fmt_scores(&score_paired(
                &dataset,
                &real,
                outcome.synthetic.all(),
                &eval,
            )));
            row.push(format!("{fit_s:.2}"));
            rows.push(row);
        }
        for (name, baseline) in [
            (
                "IndNoReach",
                IndependentMechanism::build(&dataset, params.epsilon, false),
            ),
            (
                "IndReach",
                IndependentMechanism::build(&dataset, params.epsilon, true),
            ),
        ] {
            let run = run_method(&baseline, &real, params.seed ^ 0xB0, params.workers);
            let mut row = vec![scenario.name().to_string(), name.to_string()];
            row.extend(fmt_scores(&score_paired(
                &dataset,
                &real,
                &run.perturbed,
                &eval,
            )));
            row.push("—".into());
            rows.push(row);
        }
    }

    Reported {
        id: "aggregation_synthesis".into(),
        settings: format!("ε = {}; {}", params.epsilon, settings_bits.join("; ")),
        headers: vec![
            "Dataset".into(),
            "Method".into(),
            "PRQ space %".into(),
            "PRQ time %".into(),
            "PRQ category %".into(),
            "Hotspot AHD (h)".into(),
            "OD L1".into(),
            "fit+synthesis s".into(),
        ],
        rows,
    }
}

//! Figure 10: preservation range queries — PR_χ as δ varies in each
//! dimension, for all five methods (Taxi-Foursquare data, as in §7.3).

use super::ExpParams;
use crate::report::Reported;
use crate::runner::{build_methods, run_method};
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::MechanismConfig;
use trajshare_query::{prq_curve, PrqDimension};

/// Runs the Figure 10 experiment (three panels).
pub fn run(params: &ExpParams) -> Vec<Reported> {
    let config = MechanismConfig::default().with_epsilon(params.epsilon);
    let cfg = ScenarioConfig {
        num_pois: params.num_pois,
        num_trajectories: params.num_trajectories,
        speed_kmh: None,
        traj_len: None,
        seed: params.seed,
    };
    let (dataset, set) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    let methods = build_methods(&dataset, &config);

    // Perturb once per method, evaluate all three panels on the result.
    let runs: Vec<_> = methods
        .iter()
        .map(|m| {
            eprintln!("fig10: perturbing with {}", m.name());
            run_method(m.as_ref(), &set, params.seed, params.workers)
        })
        .collect();

    let space_deltas: Vec<f64> = (0..=10).map(|k| k as f64 * 100.0).collect(); // 0..1 km
    let time_deltas: Vec<f64> = (0..=10).map(|k| k as f64 * 10.0).collect(); // 0..100 min
    let cat_deltas: Vec<f64> = vec![0.0, 2.0, 3.5, 5.0, 6.5, 8.0, 10.0];

    let panel =
        |id: &str, deltas: &[f64], unit: &str, make: &dyn Fn(f64) -> PrqDimension| -> Reported {
            let mut headers = vec!["Method".to_string()];
            headers.extend(deltas.iter().map(|d| format!("δ={d}{unit}")));
            let rows = runs
                .iter()
                .map(|r| {
                    let mut row = vec![r.name.to_string()];
                    let curve = prq_curve(&dataset, set.all(), &r.perturbed, deltas, make);
                    row.extend(curve.iter().map(|(_, pr)| format!("{pr:.1}")));
                    row
                })
                .collect();
            Reported {
                id: id.into(),
                settings: format!(
                    "PR_χ (%) on Taxi-Foursquare; |P|={} |T|={} eps={}",
                    params.num_pois,
                    set.len(),
                    params.epsilon
                ),
                headers,
                rows,
            }
        };

    vec![
        panel("fig10_space", &space_deltas, "m", &PrqDimension::Space),
        panel("fig10_time", &time_deltas, "min", &PrqDimension::Time),
        panel("fig10_category", &cat_deltas, "", &PrqDimension::Category),
    ]
}

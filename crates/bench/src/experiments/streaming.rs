//! The streaming-synthesis scenario (RetraSyn's workload shape): cohorts
//! of users report in consecutive time windows; the server keeps a
//! sliding ring of per-window counters, and every tick re-estimates the
//! mobility model (warm-started IBU) and publishes a fresh synthetic
//! batch for the *current* window span. Reported per tick: live report
//! volume, tick latency (advance + estimate + synthesis), and utility of
//! the published batch against the live windows' ground truth.

use super::ExpParams;
use crate::report::Reported;
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajshare_aggregate::{
    collect_reports, score_paired, EvalConfig, StreamingEstimator, Synthesizer, WindowConfig,
    WindowedAggregator,
};
use trajshare_core::{MechanismConfig, NGramMechanism};
use trajshare_model::TrajectorySet;

/// Abstract timestamp units per window.
const WINDOW_LEN: u64 = 60;
/// Live windows in the ring.
const NUM_WINDOWS: usize = 3;
/// Total windows simulated (so eviction happens mid-run).
const TOTAL_WINDOWS: usize = 6;

/// Runs the sliding-window publication loop on the Taxi-Foursquare
/// scenario: one row per tick.
pub fn run(params: &ExpParams) -> Reported {
    let cfg = ScenarioConfig {
        num_pois: params.num_pois,
        num_trajectories: params.num_trajectories,
        traj_len: Some(3),
        seed: params.seed,
        ..Default::default()
    };
    let (dataset, real) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    let mech_cfg = MechanismConfig::default().with_epsilon(params.epsilon);
    let mech = NGramMechanism::build(&dataset, &mech_cfg);
    let eval = EvalConfig::default();

    // Every user reports once; cohort w = users in the w-th contiguous
    // block, reporting with timestamps inside window w.
    let mut reports = collect_reports(&mech, &real, params.seed ^ 0x57AE);
    let per_window = reports.len().div_ceil(TOTAL_WINDOWS);
    for (i, r) in reports.iter_mut().enumerate() {
        r.t = (i / per_window) as u64 * WINDOW_LEN;
    }

    let window = WindowConfig {
        window_len: WINDOW_LEN,
        num_windows: NUM_WINDOWS,
    };
    let mut ring =
        WindowedAggregator::new(trajshare_aggregate::region_tiles(mech.regions()), window);
    let mut estimator = StreamingEstimator::with_backend(400, 12, params.backend);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x117);

    let mut rows = Vec::new();
    for w in 0..TOTAL_WINDOWS {
        // The window's cohort streams in...
        let t0 = Instant::now();
        let lo = w * per_window;
        let hi = ((w + 1) * per_window).min(reports.len());
        for r in &reports[lo..hi] {
            ring.ingest(r);
        }
        let ingest_s = t0.elapsed().as_secs_f64();
        // ...then the publication tick runs: model + synthetic batch for
        // the merged live span.
        let t1 = Instant::now();
        let warm = estimator.is_warm();
        let model = estimator.tick(ring.merged(), mech.graph());
        let live_lo = (ring.oldest_window() as usize) * per_window;
        let live_hi = hi;
        let lens: Vec<usize> = real.all()[live_lo..live_hi]
            .iter()
            .map(|t| t.len())
            .collect();
        let synthesizer = Synthesizer::new(&dataset, mech.regions(), mech.graph(), &model);
        let synthetic = synthesizer.synthesize_matching(&lens, &mut rng);
        let tick_s = t1.elapsed().as_secs_f64();

        let live_real = TrajectorySet::new(real.all()[live_lo..live_hi].to_vec());
        let scores = score_paired(&dataset, &live_real, synthetic.all(), &eval);
        rows.push(vec![
            w.to_string(),
            ring.merged().num_reports.to_string(),
            if warm { "warm" } else { "cold" }.to_string(),
            format!("{:.1}", ingest_s * 1e3),
            format!("{:.1}", tick_s * 1e3),
            format!("{:.1}", scores.prq_space),
            format!("{:.1}", scores.prq_time),
            format!("{:.3}", scores.od_l1),
        ]);
    }
    assert!(ring.evicted_windows() > 0, "run must exercise eviction");

    Reported {
        id: "streaming_synthesis".into(),
        settings: format!(
            "Taxi-Foursquare, {} users over {TOTAL_WINDOWS} windows (ring {NUM_WINDOWS}), \
             ε = {}, |R| = {}, warm IBU 12 iters, backend = {}",
            real.len(),
            params.epsilon,
            mech.regions().len(),
            params.backend,
        ),
        headers: vec![
            "window".into(),
            "live reports".into(),
            "estimator".into(),
            "ingest ms".into(),
            "tick ms".into(),
            "PRQ space %".into(),
            "PRQ time %".into(),
            "OD L1".into(),
        ],
        rows,
    }
}

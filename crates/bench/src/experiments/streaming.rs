//! The streaming-synthesis scenario (RetraSyn's workload shape): cohorts
//! of users report in consecutive time windows; the server keeps a
//! sliding ring of per-window counters, and every tick re-estimates the
//! mobility model (warm-started IBU) and publishes a fresh synthetic
//! batch for the *current* window span. Reported per tick: live report
//! volume, tick latency (advance + estimate + synthesis), and utility of
//! the published batch against the live windows' ground truth.

use super::ExpParams;
use crate::report::Reported;
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Instant;
use trajshare_aggregate::{
    collect_reports, eps_to_nano, l1_divergence, nano_to_eps, score_paired, EvalConfig,
    StreamingEstimator, Synthesizer, WindowBudgetAccountant, WindowBudgetConfig, WindowConfig,
    WindowedAggregator,
};
use trajshare_core::{MechanismConfig, NGramMechanism};
use trajshare_model::TrajectorySet;

/// Abstract timestamp units per window.
const WINDOW_LEN: u64 = 60;
/// Live windows in the ring.
const NUM_WINDOWS: usize = 3;
/// Total windows simulated (so eviction happens mid-run).
const TOTAL_WINDOWS: usize = 6;

/// Runs the sliding-window publication loop on the Taxi-Foursquare
/// scenario: one row per tick, with the `w`-window privacy budget
/// accounted per tick under `--policy` (the total is the experiment's ε
/// over the ring span; refused windows are excluded from estimation).
pub fn run(params: &ExpParams) -> Reported {
    let cfg = ScenarioConfig {
        num_pois: params.num_pois,
        num_trajectories: params.num_trajectories,
        traj_len: Some(3),
        seed: params.seed,
        ..Default::default()
    };
    let (dataset, real) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    let mech_cfg = MechanismConfig::default().with_epsilon(params.epsilon);
    let mech = NGramMechanism::build(&dataset, &mech_cfg);
    let eval = EvalConfig::default();

    // Every user reports once; cohort w = users in the w-th contiguous
    // block, reporting with timestamps inside window w.
    let mut reports = collect_reports(&mech, &real, params.seed ^ 0x57AE);
    let per_window = reports.len().div_ceil(TOTAL_WINDOWS);
    for (i, r) in reports.iter_mut().enumerate() {
        r.t = (i / per_window) as u64 * WINDOW_LEN;
    }

    let window = WindowConfig {
        window_len: WINDOW_LEN,
        num_windows: NUM_WINDOWS,
    };
    let mut ring =
        WindowedAggregator::new(trajshare_aggregate::region_tiles(mech.regions()), window);
    let mut estimator = StreamingEstimator::with_backend(400, 12, params.backend);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x117);

    // The continuous-publication budget: the experiment's ε over any
    // `NUM_WINDOWS` consecutive windows, allocated per tick by
    // `--policy`. Divergence is measured between consecutive published
    // occupancy estimates (lagged one tick, like a real collector).
    let budget_cfg =
        WindowBudgetConfig::new(eps_to_nano(params.epsilon), NUM_WINDOWS, params.policy);
    let mut accountant = WindowBudgetAccountant::new(budget_cfg);
    let mut refused: BTreeSet<u64> = BTreeSet::new();
    let mut occ_history: Vec<Vec<f64>> = Vec::new();

    let mut rows = Vec::new();
    for w in 0..TOTAL_WINDOWS {
        // The window's cohort streams in...
        let t0 = Instant::now();
        let lo = w * per_window;
        let hi = ((w + 1) * per_window).min(reports.len());
        for r in &reports[lo..hi] {
            ring.ingest(r);
        }
        let ingest_s = t0.elapsed().as_secs_f64();
        // Budget decision for the newly completed window before anything
        // is published from it.
        let divergence = match &occ_history[..] {
            [.., a, b] => l1_divergence(a, b),
            _ => 1.0,
        };
        let grant = accountant.allocate(w as u64, divergence);
        // A tiny run can leave a window with no cohort at all — that is
        // a legal (empty) window: it settles zero spend. Settlement is
        // against the cohort's worst (max) per-report ε′ — the contract
        // is per user, so the worst reporter is what must fit the grant.
        let observed = ring.window_counts(w as u64).map_or(0, |c| c.max_eps_nano());
        let decision = accountant.settle(w as u64, observed).expect("just decided");
        if decision.refused {
            refused.insert(w as u64);
        }
        refused.retain(|&id| id >= ring.oldest_window());
        // ...then the publication tick runs: model + synthetic batch for
        // the merged live span, excluding windows the accountant refused.
        let t1 = Instant::now();
        let warm = estimator.is_warm();
        let within_budget;
        let tick_counts = if refused.is_empty() {
            ring.merged()
        } else {
            within_budget = ring.merged_where(|id| !refused.contains(&id));
            &within_budget
        };
        let has_data = tick_counts.num_reports > 0;
        let live_lo = (ring.oldest_window() as usize) * per_window;
        let live_hi = hi;
        let lens: Vec<usize> = real.all()[live_lo..live_hi]
            .iter()
            .map(|t| t.len())
            .collect();
        // A tick whose every live window was refused publishes nothing —
        // enforcement, not failure; scores are blank for that tick, the
        // estimator is *not* ticked (a zero-count tick would poison the
        // warm-start posterior, exactly what the service avoids), and
        // the previous published occupancy stands for the divergence
        // signal.
        let scores = has_data.then(|| {
            let model = estimator.tick(tick_counts, mech.graph());
            occ_history.push(model.occupancy.clone());
            let synthesizer = Synthesizer::new(&dataset, mech.regions(), mech.graph(), &model);
            let synthetic = synthesizer.synthesize_matching(&lens, &mut rng);
            let live_real = TrajectorySet::new(real.all()[live_lo..live_hi].to_vec());
            score_paired(&dataset, &live_real, synthetic.all(), &eval)
        });
        let tick_s = t1.elapsed().as_secs_f64();

        let fmt1 = |v: Option<f64>| v.map_or("—".to_string(), |v| format!("{v:.1}"));
        rows.push(vec![
            w.to_string(),
            ring.merged().num_reports.to_string(),
            if warm { "warm" } else { "cold" }.to_string(),
            format!("{:.1}", ingest_s * 1e3),
            format!("{:.1}", tick_s * 1e3),
            fmt1(scores.as_ref().map(|s| s.prq_space)),
            fmt1(scores.as_ref().map(|s| s.prq_time)),
            scores
                .as_ref()
                .map_or("—".to_string(), |s| format!("{:.3}", s.od_l1)),
            params.policy.name().into(),
            format!("{:.2}", nano_to_eps(grant.granted_nano)),
            if decision.refused {
                "refused".to_string()
            } else {
                format!("{:.2}", nano_to_eps(decision.spent_nano))
            },
        ]);
    }
    assert!(ring.evicted_windows() > 0, "run must exercise eviction");
    assert!(
        accountant.sliding_spend_nano() <= budget_cfg.total_nano,
        "the w-window contract must hold at the end of the run"
    );

    Reported {
        id: "streaming_synthesis".into(),
        settings: format!(
            "Taxi-Foursquare, {} users over {TOTAL_WINDOWS} windows (ring {NUM_WINDOWS}), \
             ε = {}, |R| = {}, warm IBU 12 iters, backend = {}, budget {}ε/{}w {}",
            real.len(),
            params.epsilon,
            mech.regions().len(),
            params.backend,
            params.epsilon,
            NUM_WINDOWS,
            params.policy,
        ),
        headers: vec![
            "window".into(),
            "live reports".into(),
            "estimator".into(),
            "ingest ms".into(),
            "tick ms".into(),
            "PRQ space %".into(),
            "PRQ time %".into(),
            "OD L1".into(),
            "policy".into(),
            "ε grant".into(),
            "ε spent".into(),
        ],
        rows,
    }
}

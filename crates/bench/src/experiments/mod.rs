//! One function per paper table/figure, shared by the thin binaries in
//! `src/bin/` and by `run_all`.

pub mod ablation;
pub mod aggregation;
pub mod attack;
pub mod fig10;
pub mod fig7;
pub mod fig89;
pub mod streaming;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::report::Reported;
use trajshare_aggregate::{AllocationPolicy, EstimatorBackend};

/// Common experiment knobs (scaled-down defaults; see DESIGN.md §3).
#[derive(Debug, Clone)]
pub struct ExpParams {
    /// `|P|` for city scenarios.
    pub num_pois: usize,
    /// Trajectories per scenario.
    pub num_trajectories: usize,
    /// Privacy budget ε (paper default 5).
    pub epsilon: f64,
    /// Worker threads.
    pub workers: usize,
    /// Seed.
    pub seed: u64,
    /// Estimation kernel backend for the aggregation/streaming
    /// experiments (`--backend dense|blocked|sparse-w2`).
    pub backend: EstimatorBackend,
    /// Per-window budget allocation policy for the streaming experiment
    /// (`--policy uniform|adaptive`).
    pub policy: AllocationPolicy,
}

impl Default for ExpParams {
    fn default() -> Self {
        Self {
            num_pois: 400,
            num_trajectories: 60,
            epsilon: 5.0,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 7,
            backend: EstimatorBackend::default(),
            policy: AllocationPolicy::Uniform,
        }
    }
}

impl ExpParams {
    /// Builds params from CLI args (`--pois`, `--trajectories`,
    /// `--epsilon`, `--workers`, `--seed`, `--backend`).
    pub fn from_args(args: &crate::Args) -> Self {
        let d = Self::default();
        Self {
            num_pois: args.get_or("pois", d.num_pois),
            num_trajectories: args.get_or("trajectories", d.num_trajectories),
            epsilon: args.get_or("epsilon", d.epsilon),
            workers: args.get_or("workers", d.workers),
            seed: args.get_or("seed", d.seed),
            backend: args
                .get("backend")
                .and_then(EstimatorBackend::parse)
                .unwrap_or(d.backend),
            policy: args
                .get("policy")
                .and_then(AllocationPolicy::parse)
                .unwrap_or(d.policy),
        }
    }
}

/// Prints and persists a batch of reports.
pub fn emit(reports: &[Reported]) {
    let dir = crate::report::results_dir();
    for r in reports {
        r.print();
        if let Err(e) = crate::report::write_json(r, &dir) {
            eprintln!("warning: could not write results JSON: {e}");
        }
    }
}

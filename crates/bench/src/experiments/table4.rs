//! Table 4: hotspot preservation — average hotspot distance (AHD, hours)
//! and average count difference (ACD) for all methods on all datasets.
//!
//! §6.3.2: POI-level plus 4×4 and 2×2 grids with η = {20, 20, 50}; three
//! category levels with η = {50, 30, 20}. Thresholds scale with the set
//! size (the paper uses 5–10 k trajectories; we default to fewer).

use super::ExpParams;
use crate::report::Reported;
use crate::runner::{build_methods, run_method};
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::MechanismConfig;
use trajshare_model::{Dataset, TrajectorySet};
use trajshare_query::{acd, ahd, extract_hotspots, HotspotScope};

/// η thresholds scaled from the paper's 5000-trajectory baseline.
fn scopes_and_etas(num_trajectories: usize) -> Vec<(HotspotScope, usize)> {
    let scale = (num_trajectories as f64 / 5000.0).max(0.002);
    let eta = |base: usize| ((base as f64 * scale).round() as usize).max(2);
    vec![
        (HotspotScope::Poi, eta(20)),
        (HotspotScope::Grid(4), eta(20)),
        (HotspotScope::Grid(2), eta(50)),
        (HotspotScope::Category(1), eta(50)),
        (HotspotScope::Category(2), eta(30)),
        (HotspotScope::Category(3), eta(20)),
    ]
}

/// Mean AHD/ACD over all scopes that yield comparable hotspot sets.
fn hotspot_scores(
    dataset: &Dataset,
    real: &TrajectorySet,
    perturbed: &TrajectorySet,
    num_trajectories: usize,
) -> (Option<f64>, Option<f64>) {
    let mut ahds = Vec::new();
    let mut acds = Vec::new();
    for (scope, eta) in scopes_and_etas(num_trajectories) {
        let h_real = extract_hotspots(dataset, real, scope, eta);
        let h_pert = extract_hotspots(dataset, perturbed, scope, eta);
        if let Some(a) = ahd(&h_real, &h_pert) {
            ahds.push(a);
        }
        if let Some(c) = acd(&h_real, &h_pert) {
            acds.push(c);
        }
    }
    let mean = |v: &[f64]| (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64);
    (mean(&ahds), mean(&acds))
}

/// Runs the Table 4 experiment.
pub fn run(params: &ExpParams) -> Reported {
    let config = MechanismConfig::default().with_epsilon(params.epsilon);
    let mut headers = vec!["Method".to_string()];
    for s in Scenario::all() {
        headers.push(format!("{} AHD (h)", s.name()));
        headers.push(format!("{} ACD", s.name()));
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for scenario in Scenario::all() {
        let cfg = ScenarioConfig {
            num_pois: params.num_pois,
            num_trajectories: params.num_trajectories,
            speed_kmh: None,
            traj_len: None,
            seed: params.seed,
        };
        let (dataset, set) = build_scenario(scenario, &cfg);
        let methods = build_methods(&dataset, &config);
        for (mi, mech) in methods.iter().enumerate() {
            if rows.len() <= mi {
                rows.push(vec![mech.name().to_string()]);
            }
            let run = run_method(mech.as_ref(), &set, params.seed, params.workers);
            let pert_set = TrajectorySet::new(run.perturbed);
            let (a, c) = hotspot_scores(&dataset, &set, &pert_set, set.len());
            let fmt = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.2}"));
            rows[mi].push(fmt(a));
            rows[mi].push(fmt(c));
            eprintln!("table4: {} / {} done", scenario.name(), mech.name());
        }
    }
    Reported {
        id: "table4".into(),
        settings: format!(
            "|P|={} |T|={} eps={}; η scaled by |T|/5000; '—' = no comparable hotspots",
            params.num_pois, params.num_trajectories, params.epsilon
        ),
        headers,
        rows,
    }
}

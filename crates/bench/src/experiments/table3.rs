//! Table 3: average per-trajectory runtime, broken down by mechanism stage,
//! for the Taxi-Foursquare and Safegraph datasets.

use super::ExpParams;
use crate::report::Reported;
use crate::runner::{build_methods, run_method};
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::MechanismConfig;

fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Runs the Table 3 experiment.
pub fn run(params: &ExpParams) -> Reported {
    let config = MechanismConfig::default().with_epsilon(params.epsilon);
    let scenarios = [Scenario::TaxiFoursquare, Scenario::Safegraph];
    let mut headers = vec!["Method".to_string()];
    for s in scenarios {
        for col in [
            "Perturb",
            "Reconst. Prep",
            "Optimal Reconst.",
            "Other",
            "Total",
        ] {
            headers.push(format!("{} {col} (s)", s.name()));
        }
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for scenario in scenarios {
        let cfg = ScenarioConfig {
            num_pois: params.num_pois,
            num_trajectories: params.num_trajectories,
            speed_kmh: None,
            traj_len: None,
            seed: params.seed,
        };
        let (dataset, set) = build_scenario(scenario, &cfg);
        let methods = build_methods(&dataset, &config);
        for (mi, mech) in methods.iter().enumerate() {
            if rows.len() <= mi {
                rows.push(vec![mech.name().to_string()]);
            }
            let run = run_method(mech.as_ref(), &set, params.seed, params.workers);
            let t = run.mean_timings;
            rows[mi].push(secs(t.perturb));
            rows[mi].push(secs(t.reconstruct_prep));
            rows[mi].push(secs(t.optimal_reconstruct));
            rows[mi].push(secs(t.other));
            rows[mi].push(secs(t.total()));
            eprintln!(
                "table3: {} / {}: total {:.3}s/trajectory",
                scenario.name(),
                mech.name(),
                t.total().as_secs_f64()
            );
        }
    }
    Reported {
        id: "table3".into(),
        settings: format!(
            "|P|={} |T|={} eps={}; mean seconds per trajectory (paper used a commercial \
             ILP solver; our Viterbi solve is the Optimal Reconst. column)",
            params.num_pois, params.num_trajectories, params.epsilon
        ),
        headers,
        rows,
    }
}

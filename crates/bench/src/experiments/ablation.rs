//! Ablations beyond the paper's headline experiments (DESIGN.md §3):
//!
//! * **Merging**: κ ∈ {1, 5, 10, 20} and merge-order variants — region
//!   count, |W₂|, pre-processing time, and NGram NE (the §5.3 discussion
//!   the paper says space limitations prohibited).
//! * **Solver**: Viterbi vs the paper-faithful ILP — identical objective
//!   values, very different runtimes (§5.5 / §5.8).

use super::ExpParams;
use crate::report::Reported;
use crate::runner::run_method;
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use std::time::Instant;
use trajshare_core::distances::point_distance;
use trajshare_core::{MechanismConfig, MergeDimension, NGramMechanism};

/// κ and merge-order ablation.
pub fn run_merging(params: &ExpParams) -> Reported {
    let cfg = ScenarioConfig {
        num_pois: params.num_pois,
        num_trajectories: params.num_trajectories,
        speed_kmh: None,
        traj_len: None,
        seed: params.seed,
    };
    let (dataset, set) = build_scenario(Scenario::TaxiFoursquare, &cfg);

    let orders: Vec<(&str, Vec<MergeDimension>)> = vec![
        (
            "S→T→C (paper default)",
            vec![
                MergeDimension::Space,
                MergeDimension::Space,
                MergeDimension::Time,
                MergeDimension::Time,
                MergeDimension::Category,
                MergeDimension::Category,
            ],
        ),
        (
            "C→T→S (category first)",
            vec![
                MergeDimension::Category,
                MergeDimension::Category,
                MergeDimension::Time,
                MergeDimension::Time,
                MergeDimension::Space,
                MergeDimension::Space,
            ],
        ),
        ("no merging", vec![]),
    ];

    let mut rows = Vec::new();
    for (order_name, order) in &orders {
        for &kappa in &[1usize, 5, 10, 20] {
            if order.is_empty() && kappa != 1 {
                continue; // κ is irrelevant without merge passes
            }
            let mut mc = MechanismConfig::default().with_epsilon(params.epsilon);
            mc.kappa = kappa;
            mc.merge_order = order.clone();
            let t0 = Instant::now();
            let mech = NGramMechanism::build(&dataset, &mc);
            let prep = t0.elapsed();
            let run = run_method(&mech, &set, params.seed, params.workers);
            let ne = {
                let mut total = 0.0;
                for (r, p) in set.all().iter().zip(&run.perturbed) {
                    let per: f64 = r
                        .points()
                        .iter()
                        .zip(p.points())
                        .map(|(a, b)| point_distance(&dataset, (a.poi, a.t), (b.poi, b.t)))
                        .sum();
                    total += per / r.len() as f64;
                }
                total / set.len() as f64
            };
            rows.push(vec![
                order_name.to_string(),
                kappa.to_string(),
                mech.regions().len().to_string(),
                mech.graph().num_bigrams().to_string(),
                format!("{:.2}", prep.as_secs_f64()),
                format!("{:.3}", run.mean_timings.total().as_secs_f64()),
                format!("{ne:.2}"),
            ]);
            eprintln!(
                "ablation merging: {order_name} κ={kappa}: |R|={} NE={ne:.2}",
                mech.regions().len()
            );
        }
    }
    Reported {
        id: "ablation_merging".into(),
        settings: format!(
            "Taxi-Foursquare |P|={} |T|={} eps={}",
            params.num_pois, params.num_trajectories, params.epsilon
        ),
        headers: vec![
            "Merge order".into(),
            "κ".into(),
            "|R|".into(),
            "|W₂|".into(),
            "Pre-proc (s)".into(),
            "Perturb (s/traj)".into(),
            "Combined NE".into(),
        ],
        rows,
    }
}

/// Viterbi vs ILP reconstruction: equal objective, very different runtime.
///
/// The paper solves Eq. 10-14 with a commercial LP solver and reports
/// 30-67 s per trajectory; our dense educational simplex scales worse, so
/// the ILP leg runs on controlled lattice sizes (nodes = |R_mbr|). At full
/// mechanism scale the ILP tableau is infeasibly large -- which is itself
/// the SS5.8 point that reconstruction dominates runtime and solver choice
/// matters.
pub fn run_solver(params: &ExpParams) -> Reported {
    use rand::{Rng, SeedableRng};
    use trajshare_lp::LatticeProblem;
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let mut rows = Vec::new();
    for &(nodes, positions) in &[(4usize, 4usize), (6, 5), (8, 6), (10, 6)] {
        let mut arcs = Vec::new();
        for u in 0..nodes {
            for v in 0..nodes {
                arcs.push((u, v));
            }
        }
        let costs: Vec<Vec<f64>> = (0..positions)
            .map(|_| arcs.iter().map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        let p = LatticeProblem {
            num_nodes: nodes,
            arcs,
            costs,
        };

        let t0 = Instant::now();
        let v = p.solve_viterbi().expect("feasible");
        let t_vit = t0.elapsed();
        let t1 = Instant::now();
        let i = p.solve_ilp(500_000).expect("feasible");
        let t_ilp = t1.elapsed();
        assert!((v.cost - i.cost).abs() < 1e-6, "solver disagreement");
        rows.push(vec![
            format!("{nodes} regions x {positions} positions"),
            format!("{:.6}", t_vit.as_secs_f64()),
            format!("{:.4}", t_ilp.as_secs_f64()),
            format!(
                "{:.0}x",
                t_ilp.as_secs_f64() / t_vit.as_secs_f64().max(1e-9)
            ),
            format!("{:.3} = {:.3}", v.cost, i.cost),
        ]);
        eprintln!("ablation solver: {nodes}x{positions} done");
    }
    Reported {
        id: "ablation_solver".into(),
        settings: "identical random lattices; ILP = Eq. 10-14 via our simplex + B&B".into(),
        headers: vec![
            "Lattice".into(),
            "Viterbi (s)".into(),
            "ILP (s)".into(),
            "Slowdown".into(),
            "Objective (equal)".into(),
        ],
        rows,
    }
}

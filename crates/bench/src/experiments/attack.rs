//! The red-team attack suite: reconstruction + membership inference
//! against the *published* streams, per ε row, with an LDPTrace-style
//! baseline and a k-RR calibration anchor.
//!
//! Threat-model discipline (enforced by the `trajshare_redteam` API): the
//! reconstruction attacker consumes wire uploads + public knowledge + the
//! published model as a prior; the membership attacker consumes
//! [`PublishedStream`]s only. Every number in the table is derived from
//! what a collector-side adversary can actually observe — ground truth
//! appears only in the grading.
//!
//! Row semantics:
//! * **NGram** — the paper's mechanism end-to-end: Viterbi MAP
//!   reconstruction of whole trajectories from uploads (published model
//!   as prior), membership-inference empirical ε against the published
//!   model, PRQ-space utility of the published synthetic set.
//! * **LDPTrace** — the summary-report baseline. Its uploads carry no
//!   per-position windows, so the reconstruction attack degrades to
//!   recovering the *start region* from the k-RR report (MAP = identity
//!   for a uniform prior): `recon exact %` for this row is start-region
//!   recovery and `dist m` the start-centroid error. Same membership
//!   attacker, same utility measure.
//! * **kRR anchor** — plain k-ary randomized response at the row's ε with
//!   the *optimal* (likelihood-ratio) attacker: a calibration point whose
//!   true ε is exactly the theoretical column, pinning the estimator
//!   sound (see the `attack_calibration` proptest).
//!
//! The `empirical ε` column is a DKW-corrected lower bound (δ = 0.05): it
//! must sit at or below `theoretical ε` on every row — asserted here and
//! re-checked from the JSON by the CI smoke. No timing columns: the JSON
//! is byte-identical for a fixed `--seed` (regression-tested), so CI can
//! diff attack results across PRs.

use super::ExpParams;
use crate::report::Reported;
use crate::scenario::{build_scenario, Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_aggregate::{
    aggregate_and_synthesize_matching_with, collect_reports, ldptrace_publish_matching,
    score_paired, user_seed, EstimatorBackend, EvalConfig, FrequencyEstimator, PublishedStream,
};
use trajshare_core::baselines::LdpTraceClient;
use trajshare_core::{MechanismConfig, NGramMechanism};
use trajshare_model::{Dataset, TrajectorySet};
use trajshare_redteam::{
    krr_empirical_eps, membership_eps_lower_bound, reconstruction_attack, MiEstimate, ReconSummary,
};

/// Failure probability of every reported empirical-ε bound.
const MI_DELTA: f64 = 0.05;
/// Maximum length bucket the LDPTrace clients report.
const LDPTRACE_MAX_LEN: usize = 8;

fn quick() -> bool {
    std::env::var("QUICK_BENCH")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Start-region recovery against LDPTrace uploads: the baseline exposes
/// no window structure, so this is the strongest trajectory-shaped attack
/// its wire format admits (documented caveat in the module docs).
fn ldptrace_start_attack(
    dataset: &Dataset,
    mech: &NGramMechanism,
    victims: &TrajectorySet,
    epsilon: f64,
    seed: u64,
) -> ReconSummary {
    let client = LdpTraceClient::new(mech.graph(), epsilon, LDPTRACE_MAX_LEN);
    let mut trials = 0usize;
    let mut exact = 0usize;
    let mut dist_sum = 0.0;
    for (i, traj) in victims.all().iter().enumerate() {
        let Some(truth) = mech.regions().encode(dataset, traj) else {
            continue;
        };
        let mut rng = StdRng::seed_from_u64(user_seed(seed, i as u64));
        let obs = client.observe(&truth, &mut rng);
        trials += 1;
        if obs.start == truth[0].index() {
            exact += 1;
        }
        let guessed = mech
            .regions()
            .get(trajshare_core::RegionId(obs.start as u32))
            .centroid;
        let real = mech.regions().get(truth[0]).centroid;
        dist_sum += guessed.haversine_m(&real);
    }
    ReconSummary {
        trials,
        exact_rate: if trials == 0 {
            0.0
        } else {
            exact as f64 / trials as f64
        },
        mean_distance_m: if trials == 0 {
            0.0
        } else {
            dist_sum / trials as f64
        },
    }
}

fn row(
    method: &str,
    eps: f64,
    eps_report: f64,
    recon: Option<&ReconSummary>,
    mi: &MiEstimate,
    prq_space: Option<f64>,
) -> Vec<String> {
    vec![
        method.to_string(),
        format!("{eps}"),
        format!("{eps_report:.3}"),
        recon.map_or("—".into(), |r| format!("{:.1}", r.exact_rate * 100.0)),
        recon.map_or("—".into(), |r| format!("{:.0}", r.mean_distance_m)),
        format!("{:.3}", mi.advantage),
        format!("{:.3}", mi.eps_lower),
        format!("{eps}"),
        prq_space.map_or("—".into(), |v| format!("{v:.1}")),
    ]
}

/// Runs the attack suite: per ε row, NGram vs LDPTrace vs the k-RR
/// anchor, each scored on reconstruction, empirical ε, and utility.
pub fn run(params: &ExpParams) -> Reported {
    let quick = quick();
    let eps_rows: &[f64] = if quick { &[2.0, 5.0] } else { &[1.0, 2.0, 5.0] };
    let mi_trials = if quick { 16 } else { 48 };
    let num_pois = if quick {
        params.num_pois.min(150)
    } else {
        params.num_pois
    };
    let num_traj = if quick {
        params.num_trajectories.min(40)
    } else {
        params.num_trajectories
    };
    let eval = EvalConfig::default();
    // Warm-started sparse estimation keeps the 2·trials pipeline runs per
    // row affordable; 30 iterations is enough to move the published model
    // when one user's data moves, which is what the attacker scores.
    let estimator = FrequencyEstimator::Ibu {
        iters: 30,
        backend: EstimatorBackend::SparseW2,
    };

    let cfg = ScenarioConfig {
        num_pois,
        num_trajectories: num_traj,
        traj_len: Some(3),
        seed: params.seed,
        ..Default::default()
    };
    let (dataset, real) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    assert!(real.len() >= 4, "attack suite needs a few victims");
    let all = real.all();
    let base = TrajectorySet::new(all[..all.len() - 2].to_vec());
    let target = all[all.len() - 2].clone();
    let decoy = all[all.len() - 1].clone();

    let mut rows = Vec::new();
    let mut settings_bits = Vec::new();
    for &eps in eps_rows {
        let mech_cfg = MechanismConfig::default().with_epsilon(eps);
        let mech = NGramMechanism::build(&dataset, &mech_cfg);
        if settings_bits.is_empty() {
            settings_bits.push(format!(
                "Taxi-Foursquare |τ|=3: {} victims, |R| = {}, |W₂| = {}, {} MI trials, δ = {}",
                real.len(),
                mech.regions().len(),
                mech.graph().num_bigrams(),
                mi_trials,
                MI_DELTA,
            ));
        }

        // --- NGram: publish once, then attack the publication. ---
        let reports = collect_reports(&mech, &real, params.seed ^ 0xA77);
        let outcome = aggregate_and_synthesize_matching_with(
            &dataset,
            &mech,
            &reports,
            params.seed ^ 0x51E,
            estimator,
        );
        let published = PublishedStream::from_outcome(eps, &outcome);
        let recon = reconstruction_attack(&dataset, &mech, &real, Some(&published), params.seed);
        let mi = membership_eps_lower_bound(
            &dataset,
            mech.regions(),
            &base,
            &target,
            &decoy,
            mi_trials,
            MI_DELTA,
            params.seed ^ 0x3117,
            |input, s| {
                let r = collect_reports(&mech, input, s);
                let o = aggregate_and_synthesize_matching_with(&dataset, &mech, &r, s, estimator);
                PublishedStream::from_outcome(eps, &o)
            },
        );
        let prq = score_paired(&dataset, &real, published.synthetic.all(), &eval).prq_space;
        let eps_prime = mech.eps_prime(3);
        rows.push(row("NGram", eps, eps_prime, Some(&recon), &mi, Some(prq)));

        // --- LDPTrace baseline: same attacker, same measures. ---
        let lt_published = ldptrace_publish_matching(
            &dataset,
            mech.regions(),
            mech.graph(),
            &real,
            eps,
            LDPTRACE_MAX_LEN,
            params.seed ^ 0x1d7,
        );
        let lt_recon = ldptrace_start_attack(&dataset, &mech, &real, eps, params.seed);
        let lt_mi = membership_eps_lower_bound(
            &dataset,
            mech.regions(),
            &base,
            &target,
            &decoy,
            mi_trials,
            MI_DELTA,
            params.seed ^ 0x3118,
            |input, s| {
                ldptrace_publish_matching(
                    &dataset,
                    mech.regions(),
                    mech.graph(),
                    input,
                    eps,
                    LDPTRACE_MAX_LEN,
                    s,
                )
            },
        );
        let lt_prq = score_paired(&dataset, &real, lt_published.synthetic.all(), &eval).prq_space;
        rows.push(row(
            "LDPTrace",
            eps,
            eps / 4.0,
            Some(&lt_recon),
            &lt_mi,
            Some(lt_prq),
        ));

        // --- Calibration anchor: k-RR with the optimal attacker. ---
        let k = mech.regions().len().max(2);
        let anchor = krr_empirical_eps(eps, k, mi_trials.max(200), MI_DELTA, params.seed ^ 0xACE);
        rows.push(row("kRR anchor", eps, eps, None, &anchor, None));

        // The soundness gate the CI smoke re-checks from the JSON.
        for (label, est) in [("NGram", &mi), ("LDPTrace", &lt_mi), ("kRR", &anchor)] {
            assert!(
                est.eps_lower <= eps + 1e-9,
                "{label} ε={eps}: empirical {} exceeds theoretical",
                est.eps_lower
            );
        }
    }

    Reported {
        id: "bench_attack".into(),
        settings: format!("seed = {}; {}", params.seed, settings_bits.join("; ")),
        headers: vec![
            "Method".into(),
            "ε".into(),
            "ε′/report".into(),
            "recon exact %".into(),
            "recon dist m".into(),
            "MI advantage".into(),
            "empirical ε ≥".into(),
            "theoretical ε".into(),
            "PRQ space %".into(),
        ],
        rows,
    }
}

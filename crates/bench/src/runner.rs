//! Method construction and parallel per-trajectory execution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use trajshare_aggregate::user_seed;
use trajshare_core::baselines::{IndependentMechanism, PoiNgramMechanism};
use trajshare_core::{Mechanism, MechanismConfig, NGramMechanism, StageTimings};
use trajshare_model::{Dataset, Trajectory, TrajectorySet};

/// Builds the five paper methods (Tables 2–4 rows) for one dataset.
///
/// Order matches the paper's tables: IndNoReach, IndReach, PhysDist,
/// NGramNoH, NGram.
pub fn build_methods(dataset: &Dataset, config: &MechanismConfig) -> Vec<Box<dyn Mechanism>> {
    vec![
        Box::new(IndependentMechanism::build(dataset, config.epsilon, false)),
        Box::new(IndependentMechanism::build(dataset, config.epsilon, true)),
        Box::new(PoiNgramMechanism::phys_dist(
            dataset,
            config.epsilon,
            config.n,
        )),
        Box::new(PoiNgramMechanism::ngram_noh(
            dataset,
            config.epsilon,
            config.n,
        )),
        Box::new(NGramMechanism::build(dataset, config)),
    ]
}

/// Result of running one method over a trajectory set.
#[derive(Debug, Clone)]
pub struct MethodRun {
    pub name: &'static str,
    /// Perturbed trajectories, paired index-wise with the input set.
    pub perturbed: Vec<Trajectory>,
    /// Mean per-trajectory stage timings.
    pub mean_timings: StageTimings,
    /// Wall-clock for the whole set (all workers).
    pub wall: std::time::Duration,
}

/// Perturbs every trajectory in `set`, fanning out across `workers`
/// threads with crossbeam. Deterministic: trajectory `i` uses seed
/// `seed ⊕ i` regardless of scheduling.
pub fn run_method(
    mech: &dyn Mechanism,
    set: &TrajectorySet,
    seed: u64,
    workers: usize,
) -> MethodRun {
    assert!(!set.is_empty(), "empty trajectory set");
    let n = set.len();
    let workers = workers.clamp(1, n);
    let t0 = Instant::now();

    let mut results: Vec<Option<(Trajectory, StageTimings)>> = vec![None; n];
    crossbeam::thread::scope(|scope| {
        for (w, chunk) in results.chunks_mut(n.div_ceil(workers)).enumerate() {
            let base = w * n.div_ceil(workers);
            scope.spawn(move |_| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = base + off;
                    let mut rng = StdRng::seed_from_u64(user_seed(seed, i as u64));
                    let out = mech.perturb(&set.all()[i], &mut rng);
                    *slot = Some((out.trajectory, out.timings));
                }
            });
        }
    })
    .expect("worker thread panicked");
    let wall = t0.elapsed();

    let mut perturbed = Vec::with_capacity(n);
    let mut total = StageTimings::default();
    for r in results {
        let (t, timings) = r.expect("all slots filled");
        perturbed.push(t);
        total.add(&timings);
    }
    MethodRun {
        name: mech.name(),
        perturbed,
        mean_timings: total.div(n as u32),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_scenario, Scenario, ScenarioConfig};

    #[test]
    fn five_methods_in_paper_order() {
        let cfg = ScenarioConfig {
            num_pois: 120,
            num_trajectories: 10,
            ..Default::default()
        };
        let (ds, _) = build_scenario(Scenario::Campus, &cfg);
        let methods = build_methods(&ds, &MechanismConfig::default());
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            ["IndNoReach", "IndReach", "PhysDist", "NGramNoH", "NGram"]
        );
    }

    #[test]
    fn run_method_pairs_outputs_with_inputs() {
        let cfg = ScenarioConfig {
            num_pois: 120,
            num_trajectories: 12,
            ..Default::default()
        };
        let (ds, set) = build_scenario(Scenario::Campus, &cfg);
        let mech = trajshare_core::baselines::IndependentMechanism::build(&ds, 2.0, true);
        let run = run_method(&mech, &set, 3, 4);
        assert_eq!(run.perturbed.len(), set.len());
        for (real, pert) in set.all().iter().zip(&run.perturbed) {
            assert_eq!(real.len(), pert.len());
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let cfg = ScenarioConfig {
            num_pois: 120,
            num_trajectories: 8,
            ..Default::default()
        };
        let (ds, set) = build_scenario(Scenario::Campus, &cfg);
        let mech = trajshare_core::baselines::IndependentMechanism::build(&ds, 2.0, true);
        let serial = run_method(&mech, &set, 11, 1);
        let parallel = run_method(&mech, &set, 11, 4);
        assert_eq!(
            serial.perturbed, parallel.perturbed,
            "scheduling must not change results"
        );
    }
}

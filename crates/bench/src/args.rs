//! Minimal `--key value` argument parsing for the harness binaries (no
//! external CLI crate; DESIGN.md §5 keeps the dependency set tight).

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs plus bare flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                values.insert(key.to_string(), val);
            }
        }
        Self { values }
    }

    /// String value for a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Typed value with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Bare-flag check (`--quick`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args(&["--pois", "500", "--epsilon", "2.5"]);
        assert_eq!(a.get_or("pois", 0usize), 500);
        assert_eq!(a.get_or("epsilon", 0.0f64), 2.5);
    }

    #[test]
    fn missing_keys_fall_back_to_defaults() {
        let a = args(&[]);
        assert_eq!(a.get_or("pois", 42usize), 42);
        assert!(!a.flag("quick"));
    }

    #[test]
    fn bare_flags_are_true() {
        let a = args(&["--quick", "--pois", "100"]);
        assert!(a.flag("quick"));
        assert_eq!(a.get_or("pois", 0usize), 100);
    }

    #[test]
    fn malformed_values_use_default() {
        let a = args(&["--pois", "banana"]);
        assert_eq!(a.get_or("pois", 7usize), 7);
    }
}

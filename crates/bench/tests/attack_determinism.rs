//! Same `--seed` → byte-identical attack-suite output. The JSON carries
//! no timing columns, so this holds exactly and CI can diff
//! `results/bench_attack.json` across runs.

use trajshare_bench::experiments::{attack, ExpParams};

#[test]
fn same_seed_yields_byte_identical_report() {
    // Quick mode: the full table is a release-binary workload.
    std::env::set_var("QUICK_BENCH", "1");
    let params = ExpParams {
        num_pois: 90,
        num_trajectories: 20,
        seed: 13,
        ..Default::default()
    };
    let a = attack::run(&params);
    let b = attack::run(&params);
    let ja = serde_json::to_string(&a).unwrap();
    let jb = serde_json::to_string(&b).unwrap();
    assert_eq!(ja, jb);
    // And a different seed actually changes the measurement — the
    // determinism above is not the table being constant.
    let c = attack::run(&ExpParams { seed: 14, ..params });
    let jc = serde_json::to_string(&c).unwrap();
    assert_ne!(ja, jc);
}

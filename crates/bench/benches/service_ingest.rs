//! End-to-end ingestion-service throughput over loopback: genuine
//! mechanism reports framed, streamed over N parallel TCP connections,
//! validated, write-ahead-logged, and counted by the server — the full
//! durable path, not just the in-memory `Aggregator` fold (which
//! `benches/aggregation.rs` tracks). Emits a JSON record through the
//! report machinery (`results/bench_service_ingest.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;
use trajshare_aggregate::{collect_reports, region_tiles, Report};
use trajshare_bench::report::{write_json, Reported};
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::{MechanismConfig, NGramMechanism};
use trajshare_service::{stream_reports, IngestServer, ServerConfig, ServerHandle};

const STREAM_REPORTS: usize = 20_000;

fn report_population(base: &[Report], users: usize) -> Vec<Report> {
    (0..users).map(|i| base[i % base.len()].clone()).collect()
}

fn fresh_server(tiles: Vec<u16>, tag: &str) -> (ServerHandle, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("trajshare-bench-svc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServerConfig::new(&dir, tiles);
    cfg.workers = 4;
    // Measure the streaming path, not periodic snapshot writes.
    cfg.snapshot_every = u64::MAX;
    cfg.wal_flush_every = 1024;
    let handle = IngestServer::start(cfg).expect("server start");
    (handle, dir)
}

fn bench_service_ingest(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        num_pois: 150,
        num_trajectories: 2_000,
        traj_len: Some(3),
        ..Default::default()
    };
    let (dataset, set) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    let _ = &dataset;
    let mech = NGramMechanism::build(&dataset, &MechanismConfig::default());
    let base = collect_reports(&mech, &set, 7);
    let reports = report_population(&base, STREAM_REPORTS);
    let tiles = region_tiles(mech.regions());

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);
    for &conns in &[1usize, 4, 8] {
        let (handle, dir) = fresh_server(tiles.clone(), &format!("c{conns}"));
        let addr = handle.addr();
        group.throughput(Throughput::Elements(reports.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(conns),
            &reports,
            |b, reports| {
                b.iter(|| {
                    let acked = stream_reports(addr, reports, conns).expect("stream");
                    assert_eq!(acked, reports.len() as u64);
                    std::hint::black_box(acked)
                });
            },
        );
        // One timed pass for the JSON record.
        let t0 = Instant::now();
        let acked = stream_reports(addr, &reports, conns).expect("stream");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(acked, reports.len() as u64);
        rows.push(vec![
            conns.to_string(),
            reports.len().to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", reports.len() as f64 / secs.max(1e-9)),
        ]);
        handle.crash();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    let report = Reported {
        id: "bench_service_ingest".into(),
        settings: format!(
            "|R|={}, workers=4, wal_flush_every=1024, loopback TCP",
            tiles.len()
        ),
        headers: vec![
            "connections".into(),
            "reports".into(),
            "stream_s".into(),
            "reports_per_s".into(),
        ],
        rows,
    };
    let _ = write_json(&report, std::path::Path::new("results"));
}

criterion_group!(benches, bench_service_ingest);
criterion_main!(benches);

//! End-to-end ingestion-service throughput over loopback: genuine
//! mechanism reports framed, streamed over N parallel TCP connections,
//! validated, write-ahead-logged, and counted by the server — the full
//! durable path, not just the in-memory `Aggregator` fold (which
//! `benches/aggregation.rs` tracks). Emits a JSON record
//! (`results/bench_service_ingest.json`) with a before/after breakdown:
//! `single` rows are the classic one-report-per-frame protocol,
//! `batched` rows the columnar `TSR4` batch-frame path, and every row
//! carries its speedup over the single-frame 1-connection baseline.
//!
//! The batched configs run **twice in the same process**: once with the
//! hardware CRC and SIMD counter kernels forced to their scalar
//! fallbacks (`batched-scalar` rows) and once with runtime dispatch
//! (`batched` rows) — the same-run A/B that isolates the kernel win
//! from machine-to-machine noise. Each batched pass also snapshots the
//! server's per-stage ingest profile, so the JSON carries a second
//! table: per-report nanoseconds in decode / validate / WAL /
//! accumulate / ack for each kernel mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::Serialize;
use std::time::Instant;
use trajshare_aggregate::{collect_reports, region_tiles, Report};
use trajshare_bench::report::markdown_table;
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::{crc, kernels, MechanismConfig, NGramMechanism};
use trajshare_service::{
    encode_wire_multi, stream_reports, stream_wires, IngestProfileSnapshot, IngestServer,
    ServerConfig, ServerHandle,
};

const STREAM_REPORTS: usize = 20_000;
/// Batched frames move ~10× the reports per wall-second; the JSON pass
/// streams a larger population so its timing isn't dominated by
/// connection setup.
const STREAM_REPORTS_BATCHED: usize = 200_000;

/// [`trajshare_bench::report::Reported`] plus the per-stage cost table
/// — written directly (same `id`/`settings`/`headers`/`rows` keys, so
/// existing consumers of the JSON keep working).
#[derive(Serialize)]
struct ServiceIngestReport {
    id: String,
    settings: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    stage_settings: String,
    stage_headers: Vec<String>,
    stages: Vec<Vec<String>>,
}

fn report_population(base: &[Report], users: usize) -> Vec<Report> {
    (0..users).map(|i| base[i % base.len()].clone()).collect()
}

fn fresh_server(tiles: Vec<u16>, tag: &str, profile: bool) -> (ServerHandle, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("trajshare-bench-svc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServerConfig::new(&dir, tiles);
    cfg.workers = 4;
    // Measure the streaming path, not periodic snapshot writes.
    cfg.snapshot_every = u64::MAX;
    cfg.wal_flush_every = 1024;
    cfg.profile = profile;
    let handle = IngestServer::start(cfg).expect("server start");
    (handle, dir)
}

/// Forces (or releases) the scalar fallbacks of every dispatched
/// kernel: CRC folding and the SIMD counter/validation kernels.
fn force_scalar_kernels(force: bool) {
    crc::set_force_scalar(force);
    kernels::set_force_scalar(force);
}

/// Best-of-three timed passes (reports/s and seconds of the best pass),
/// verifying every report acked each time.
fn timed_rate(mut pass: impl FnMut() -> u64, expect: u64) -> (f64, f64) {
    let mut best = (0.0f64, f64::MAX);
    for _ in 0..3 {
        let t0 = Instant::now();
        let acked = pass();
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(acked, expect);
        let rate = expect as f64 / secs.max(1e-9);
        if rate > best.0 {
            best = (rate, secs);
        }
    }
    best
}

/// Per-stage ingest-time accumulator for one kernel mode: sums the
/// profile deltas of every timed pass run under that mode (passes of
/// the two modes interleave, so both sample the same machine state).
#[derive(Default)]
struct StageAccum {
    decode_ns: u64,
    validate_ns: u64,
    wal_ns: u64,
    accumulate_ns: u64,
    ack_ns: u64,
    reports: u64,
}

impl StageAccum {
    fn add(&mut self, prev: &IngestProfileSnapshot, cur: &IngestProfileSnapshot) {
        self.decode_ns += cur.decode_ns - prev.decode_ns;
        self.validate_ns += cur.validate_ns - prev.validate_ns;
        self.wal_ns += cur.wal_ns - prev.wal_ns;
        self.accumulate_ns += cur.accumulate_ns - prev.accumulate_ns;
        self.ack_ns += cur.ack_ns - prev.ack_ns;
        self.reports += cur.reports - prev.reports;
    }

    fn row(&self, mode: &str, conns: usize, batch: usize) -> Vec<String> {
        let n = self.reports.max(1) as f64;
        let per = |v: u64| format!("{:.0}", v as f64 / n);
        let total =
            self.decode_ns + self.validate_ns + self.wal_ns + self.accumulate_ns + self.ack_ns;
        vec![
            mode.into(),
            conns.to_string(),
            batch.to_string(),
            self.reports.to_string(),
            per(self.decode_ns),
            per(self.validate_ns),
            per(self.wal_ns),
            per(self.accumulate_ns),
            per(self.ack_ns),
            per(total),
        ]
    }
}

fn bench_service_ingest(c: &mut Criterion) {
    let quick = std::env::var("QUICK_BENCH").is_ok();
    let cfg = ScenarioConfig {
        num_pois: 150,
        num_trajectories: 2_000,
        traj_len: Some(3),
        ..Default::default()
    };
    let (dataset, set) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    let _ = &dataset;
    let mech = NGramMechanism::build(&dataset, &MechanismConfig::default());
    let base = collect_reports(&mech, &set, 7);
    let reports = report_population(&base, STREAM_REPORTS);
    let batched_n = if quick {
        STREAM_REPORTS_BATCHED / 4
    } else {
        STREAM_REPORTS_BATCHED
    };
    let reports_batched = report_population(&base, batched_n);
    let tiles = region_tiles(mech.regions());

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut stages: Vec<Vec<String>> = Vec::new();
    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);

    // Before: one report per frame (the seed protocol).
    let mut single_1conn_rate = 0.0f64;
    for &conns in &[1usize, 4, 8] {
        let (handle, dir) = fresh_server(tiles.clone(), &format!("c{conns}"), false);
        let addr = handle.addr();
        group.throughput(Throughput::Elements(reports.len() as u64));
        group.bench_with_input(BenchmarkId::new("single", conns), &reports, |b, reports| {
            b.iter(|| {
                let acked = stream_reports(addr, reports, conns).expect("stream");
                assert_eq!(acked, reports.len() as u64);
                std::hint::black_box(acked)
            });
        });
        let (rate, secs) = timed_rate(
            || stream_reports(addr, &reports, conns).expect("stream"),
            reports.len() as u64,
        );
        if conns == 1 {
            single_1conn_rate = rate;
        }
        rows.push(vec![
            "single".into(),
            conns.to_string(),
            "1".into(),
            reports.len().to_string(),
            "-".into(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}", rate / single_1conn_rate.max(1e-9)),
        ]);
        handle.crash();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // After: columnar TSR4 batch frames end to end, each config run
    // scalar-forced then dispatched in the same process. Each
    // connection's wire is pre-encoded once outside the clock — the
    // deployment shape (`loadgen` does exactly this) — so the timed
    // pass is the socket + server path the kernel work actually
    // targets.
    for &(conns, batch) in &[(1usize, 256usize), (8, 256), (1, 4096)] {
        let (handle, dir) = fresh_server(tiles.clone(), &format!("c{conns}b{batch}"), true);
        let addr = handle.addr();
        let t_enc = Instant::now();
        let wires = encode_wire_multi(&[addr], &reports_batched, conns, batch);
        let encode_s = t_enc.elapsed().as_secs_f64();
        if conns == 8 && batch == 256 {
            group.throughput(Throughput::Elements(reports.len() as u64));
            let small_wires = encode_wire_multi(&[addr], &reports, conns, batch);
            group.bench_with_input(
                BenchmarkId::new("batched", format!("{conns}x{batch}")),
                &small_wires,
                |b, wires| {
                    b.iter(|| {
                        let acked = stream_wires(wires).expect("stream");
                        assert_eq!(acked, reports.len() as u64);
                        std::hint::black_box(acked)
                    });
                },
            );
        }
        // Scalar-forced and dispatched passes interleave round by
        // round — both kernel modes sample the same machine state
        // (cache warmth, WAL file growth, scheduler load), so the A/B
        // delta isolates the kernels rather than monotonic drift.
        // Best-of-rounds per mode; stage profiles aggregate per mode
        // across every round.
        let mut best = [(0.0f64, f64::MAX); 2]; // [scalar, dispatched]
        let mut stage_acc = [StageAccum::default(), StageAccum::default()];
        for _round in 0..3 {
            for (slot, force) in [(0usize, true), (1, false)] {
                force_scalar_kernels(force);
                let prof0 = handle.ingest_profile().expect("profiled server");
                let t0 = Instant::now();
                let acked = stream_wires(&wires).expect("stream");
                let secs = t0.elapsed().as_secs_f64();
                assert_eq!(acked, reports_batched.len() as u64);
                stage_acc[slot].add(&prof0, &handle.ingest_profile().expect("profiled server"));
                let rate = reports_batched.len() as f64 / secs.max(1e-9);
                if rate > best[slot].0 {
                    best[slot] = (rate, secs);
                }
            }
        }
        force_scalar_kernels(false);
        for (slot, mode) in [(0usize, "batched-scalar"), (1, "batched")] {
            let (rate, secs) = best[slot];
            rows.push(vec![
                mode.into(),
                conns.to_string(),
                batch.to_string(),
                reports_batched.len().to_string(),
                format!("{encode_s:.3}"),
                format!("{secs:.3}"),
                format!("{rate:.0}"),
                format!("{:.2}", rate / single_1conn_rate.max(1e-9)),
            ]);
            stages.push(stage_acc[slot].row(mode, conns, batch));
        }
        handle.crash();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    let report = ServiceIngestReport {
        id: "bench_service_ingest".into(),
        settings: format!(
            "|R|={}, workers=4, wal_flush_every=1024, loopback TCP; \
             single = one report/frame, inline encode (the seed protocol, \
             measured as the seed measured it), batched = TSR4 columnar \
             batch frames with the wire pre-encoded once per connection \
             outside the clock (encode_s; the loadgen deployment shape); \
             batched-scalar = same wires with every dispatched kernel \
             forced scalar (TRAJSHARE_FORCE_SCALAR_* equivalent), same \
             process, same run; dispatched kernels this run: crc={}, \
             simd={}; speedup is vs single@1conn",
            tiles.len(),
            crc::kernel_name(),
            kernels::kernel_name(),
        ),
        headers: vec![
            "mode".into(),
            "connections".into(),
            "batch".into(),
            "reports".into(),
            "encode_s".into(),
            "stream_s".into(),
            "reports_per_s".into(),
            "speedup_vs_single_1conn".into(),
        ],
        rows,
        stage_settings: "per-report wall nanoseconds by ingest stage, from the server's \
             IngestProfile over each timed pass (best-of-3 aggregate); decode = column \
             scratch fill, validate = frame CRC + structure checks, wal = append + flush, \
             accumulate = counters + window ring, ack = cumulative ack writes"
            .into(),
        stage_headers: vec![
            "mode".into(),
            "connections".into(),
            "batch".into(),
            "reports".into(),
            "decode_ns".into(),
            "validate_ns".into(),
            "wal_ns".into(),
            "accumulate_ns".into(),
            "ack_ns".into(),
            "total_ns".into(),
        ],
        stages,
    };
    println!(
        "## {} ({})\n\n{}",
        report.id,
        report.settings,
        markdown_table(&report.headers, &report.rows)
    );
    println!(
        "### ingest stage profile ({})\n\n{}",
        report.stage_settings,
        markdown_table(&report.stage_headers, &report.stages)
    );
    let dir = trajshare_bench::report::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    if let Ok(f) = std::fs::File::create(dir.join("bench_service_ingest.json")) {
        let _ = serde_json::to_writer_pretty(std::io::BufWriter::new(f), &report);
    }
}

criterion_group!(benches, bench_service_ingest);
criterion_main!(benches);

//! End-to-end ingestion-service throughput over loopback: genuine
//! mechanism reports framed, streamed over N parallel TCP connections,
//! validated, write-ahead-logged, and counted by the server — the full
//! durable path, not just the in-memory `Aggregator` fold (which
//! `benches/aggregation.rs` tracks). Emits a JSON record through the
//! report machinery (`results/bench_service_ingest.json`) with a
//! before/after breakdown: `batch = 1` rows are the classic
//! one-report-per-frame protocol, `batch > 1` rows the columnar `TSR4`
//! batch-frame path, and every row carries its speedup over the
//! single-frame 1-connection baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;
use trajshare_aggregate::{collect_reports, region_tiles, Report};
use trajshare_bench::report::{write_json, Reported};
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::{MechanismConfig, NGramMechanism};
use trajshare_service::{
    encode_wire_multi, stream_reports, stream_wires, IngestServer, ServerConfig, ServerHandle,
};

const STREAM_REPORTS: usize = 20_000;
/// Batched frames move ~10× the reports per wall-second; the JSON pass
/// streams a larger population so its timing isn't dominated by
/// connection setup.
const STREAM_REPORTS_BATCHED: usize = 200_000;

fn report_population(base: &[Report], users: usize) -> Vec<Report> {
    (0..users).map(|i| base[i % base.len()].clone()).collect()
}

fn fresh_server(tiles: Vec<u16>, tag: &str) -> (ServerHandle, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("trajshare-bench-svc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServerConfig::new(&dir, tiles);
    cfg.workers = 4;
    // Measure the streaming path, not periodic snapshot writes.
    cfg.snapshot_every = u64::MAX;
    cfg.wal_flush_every = 1024;
    let handle = IngestServer::start(cfg).expect("server start");
    (handle, dir)
}

/// Best-of-three timed passes (reports/s and seconds of the best pass),
/// verifying every report acked each time.
fn timed_rate(mut pass: impl FnMut() -> u64, expect: u64) -> (f64, f64) {
    let mut best = (0.0f64, f64::MAX);
    for _ in 0..3 {
        let t0 = Instant::now();
        let acked = pass();
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(acked, expect);
        let rate = expect as f64 / secs.max(1e-9);
        if rate > best.0 {
            best = (rate, secs);
        }
    }
    best
}

fn bench_service_ingest(c: &mut Criterion) {
    let quick = std::env::var("QUICK_BENCH").is_ok();
    let cfg = ScenarioConfig {
        num_pois: 150,
        num_trajectories: 2_000,
        traj_len: Some(3),
        ..Default::default()
    };
    let (dataset, set) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    let _ = &dataset;
    let mech = NGramMechanism::build(&dataset, &MechanismConfig::default());
    let base = collect_reports(&mech, &set, 7);
    let reports = report_population(&base, STREAM_REPORTS);
    let batched_n = if quick {
        STREAM_REPORTS_BATCHED / 4
    } else {
        STREAM_REPORTS_BATCHED
    };
    let reports_batched = report_population(&base, batched_n);
    let tiles = region_tiles(mech.regions());

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);

    // Before: one report per frame (the seed protocol).
    let mut single_1conn_rate = 0.0f64;
    for &conns in &[1usize, 4, 8] {
        let (handle, dir) = fresh_server(tiles.clone(), &format!("c{conns}"));
        let addr = handle.addr();
        group.throughput(Throughput::Elements(reports.len() as u64));
        group.bench_with_input(BenchmarkId::new("single", conns), &reports, |b, reports| {
            b.iter(|| {
                let acked = stream_reports(addr, reports, conns).expect("stream");
                assert_eq!(acked, reports.len() as u64);
                std::hint::black_box(acked)
            });
        });
        let (rate, secs) = timed_rate(
            || stream_reports(addr, &reports, conns).expect("stream"),
            reports.len() as u64,
        );
        if conns == 1 {
            single_1conn_rate = rate;
        }
        rows.push(vec![
            "single".into(),
            conns.to_string(),
            "1".into(),
            reports.len().to_string(),
            "-".into(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}", rate / single_1conn_rate.max(1e-9)),
        ]);
        handle.crash();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // After: columnar TSR4 batch frames end to end. Each connection's
    // wire is pre-encoded once outside the clock — the deployment shape
    // (`loadgen` does exactly this) — so the timed pass is the socket +
    // server path the batching work actually targets.
    for &(conns, batch) in &[(1usize, 256usize), (8, 256), (1, 4096)] {
        let (handle, dir) = fresh_server(tiles.clone(), &format!("c{conns}b{batch}"));
        let addr = handle.addr();
        let t_enc = Instant::now();
        let wires = encode_wire_multi(&[addr], &reports_batched, conns, batch);
        let encode_s = t_enc.elapsed().as_secs_f64();
        if conns == 8 && batch == 256 {
            group.throughput(Throughput::Elements(reports.len() as u64));
            let small_wires = encode_wire_multi(&[addr], &reports, conns, batch);
            group.bench_with_input(
                BenchmarkId::new("batched", format!("{conns}x{batch}")),
                &small_wires,
                |b, wires| {
                    b.iter(|| {
                        let acked = stream_wires(wires).expect("stream");
                        assert_eq!(acked, reports.len() as u64);
                        std::hint::black_box(acked)
                    });
                },
            );
        }
        let (rate, secs) = timed_rate(
            || stream_wires(&wires).expect("stream"),
            reports_batched.len() as u64,
        );
        rows.push(vec![
            "batched".into(),
            conns.to_string(),
            batch.to_string(),
            reports_batched.len().to_string(),
            format!("{encode_s:.3}"),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
            format!("{:.2}", rate / single_1conn_rate.max(1e-9)),
        ]);
        handle.crash();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    let report = Reported {
        id: "bench_service_ingest".into(),
        settings: format!(
            "|R|={}, workers=4, wal_flush_every=1024, loopback TCP; \
             single = one report/frame, inline encode (the seed protocol, \
             measured as the seed measured it), batched = TSR4 columnar \
             batch frames with the wire pre-encoded once per connection \
             outside the clock (encode_s; the loadgen deployment shape); \
             speedup is vs single@1conn",
            tiles.len()
        ),
        headers: vec![
            "mode".into(),
            "connections".into(),
            "batch".into(),
            "reports".into(),
            "encode_s".into(),
            "stream_s".into(),
            "reports_per_s".into(),
            "speedup_vs_single_1conn".into(),
        ],
        rows,
    };
    let _ = write_json(&report, &trajshare_bench::report::results_dir());
}

criterion_group!(benches, bench_service_ingest);
criterion_main!(benches);

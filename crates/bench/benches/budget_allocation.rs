//! Uniform vs Adaptive per-window ε allocation at equal total budget —
//! the utility half of the streaming-budget tentpole.
//!
//! Simulates RetraSyn's continuous setting: `T` windows of `N` users
//! each report their region through a k-RR-style channel, the true
//! occupancy distribution is piecewise-constant with occasional shifts,
//! and the collector must honor a `w`-window budget
//! (`WindowBudgetAccountant`, Σ spend over any `w` consecutive windows ≤
//! ε). Per window, each policy decides the cohort's ε, the cohort
//! reports at that ε, the estimate is debiased with IBU, and utility is
//! the total-variation error of the *published* estimate against the
//! window's true distribution.
//!
//! * **Uniform** spends `ε/w` every window — fresh but equally noisy
//!   estimates forever.
//! * **Adaptive** spends a probe floor while the stream is stable
//!   (republishing its last release, whose quality was bought with a big
//!   grant) and spends the whole recycled pool the moment the
//!   distribution shifts. The divergence signal in the oracle runs is
//!   the true inter-window TV distance (oracle change detection), so
//!   they isolate *allocation* quality at equal total ε; the ingestion
//!   service measures the signal from the realized windows instead
//!   (`window_divergence`: significance-tested TV over debiased
//!   posteriors).
//!
//! A second, **closed-loop** pass drops the oracle: the allocator
//! announces each window's ε′ *before* any of its reports exist (the
//! grant-session protocol in miniature), its divergence signal is
//! significance-tested TV between the two previous windows' *realized*
//! estimates, the cohort randomizes at exactly the announced rate, and
//! settlement observes spend == grant — so the refusal count is
//! asserted to be exactly zero while the `w`-window contract still
//! holds on every window.
//!
//! The low-budget regime is where allocation matters: at ε/w per window
//! the per-window estimate is noise-dominated, while one recycled-pool
//! grant buys a usable release. The bench asserts the acceptance
//! criterion — Adaptive mean TV error ≤ Uniform's at equal total ε —
//! and emits `results/bench_budget_allocation.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajshare_aggregate::{
    ibu_frequencies, l1_divergence, AllocationPolicy, EmChannel, WindowBudgetAccountant,
    WindowBudgetConfig,
};
use trajshare_bench::report::{write_json, Reported};

/// Regions in the toy universe.
const REGIONS: usize = 12;
/// Simulated windows.
const WINDOWS: usize = 16;
/// Users reporting per window.
const USERS: usize = 4_000;
/// The `w` of the `w`-window contract.
const HORIZON: usize = 4;
/// Total ε over any `HORIZON` consecutive windows (the low-budget
/// regime: ε/w per window is noise-dominated at this population size).
const TOTAL_EPS: f64 = 1.0;
/// Windows at which the true distribution shifts.
const SHIFTS: [usize; 2] = [6, 11];
/// IBU iterations per estimate.
const IBU_ITERS: usize = 200;

/// k-RR channel over `REGIONS` at budget `eps`.
fn krr_channel(eps: f64) -> EmChannel {
    let n = REGIONS as f64;
    let e = eps.exp();
    let keep = e / (e + n - 1.0);
    let flip = 1.0 / (e + n - 1.0);
    let cols: Vec<Vec<f64>> = (0..REGIONS)
        .map(|x| {
            (0..REGIONS)
                .map(|y| if y == x { keep } else { flip })
                .collect()
        })
        .collect();
    EmChannel::from_columns(&cols)
}

/// The true occupancy distribution of phase `k` — distinct, peaked
/// shapes so a shift is a real distribution change (TV ≈ 0.4).
fn phase_dist(k: usize) -> Vec<f64> {
    let mut p: Vec<f64> = (0..REGIONS)
        .map(|r| 1.0 + 4.0 * (((r + 3 * k) % REGIONS) < 3) as u8 as f64)
        .collect();
    let s: f64 = p.iter().sum();
    p.iter_mut().for_each(|v| *v /= s);
    p
}

fn true_dist(window: usize) -> Vec<f64> {
    let phase = SHIFTS.iter().filter(|&&s| window >= s).count();
    phase_dist(phase)
}

/// One cohort's perturbed counts: each user draws a region from `p` and
/// pushes it through the k-RR channel at `eps`.
fn sample_counts(p: &[f64], eps: f64, users: usize, rng: &mut StdRng) -> Vec<u64> {
    let e = eps.exp();
    let keep = e / (e + REGIONS as f64 - 1.0);
    let mut counts = vec![0u64; REGIONS];
    for _ in 0..users {
        let mut u: f64 = rng.random();
        let mut truth = REGIONS - 1;
        for (r, &pr) in p.iter().enumerate() {
            if u < pr {
                truth = r;
                break;
            }
            u -= pr;
        }
        let out = if rng.random_bool(keep) {
            truth
        } else {
            // Uniform over the other REGIONS − 1 outputs.
            let mut o = rng.random_range(0..REGIONS - 1);
            if o >= truth {
                o += 1;
            }
            o
        };
        counts[out] += 1;
    }
    counts
}

/// Debiased, consistent estimate from one cohort's counts.
fn estimate(counts: &[u64], eps: f64) -> Vec<f64> {
    let mut est = ibu_frequencies(&krr_channel(eps), counts, IBU_ITERS);
    trajshare_aggregate::norm_sub(&mut est);
    est
}

struct PolicyRun {
    rows: Vec<Vec<String>>,
    mean_tv: f64,
    sliding_max_nano: u64,
}

/// Runs one policy over the full window stream, enforcing the ledger.
fn run_policy(policy: AllocationPolicy, seed: u64) -> PolicyRun {
    let cfg = WindowBudgetConfig::new(trajshare_aggregate::eps_to_nano(TOTAL_EPS), HORIZON, policy);
    let mut acct = WindowBudgetAccountant::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut published: Option<Vec<f64>> = None;
    let mut rows = Vec::new();
    let mut tv_sum = 0.0;
    let mut sliding_max = 0u64;
    // Publish fresh when the grant is at least half the uniform share —
    // below that the policy is probing, and the previous release (bought
    // with a real grant) beats a floor-budget estimate.
    let publish_floor = cfg.uniform_share() / 2;
    for w in 0..WINDOWS {
        let p = true_dist(w);
        // Oracle divergence signal (see module docs): the true TV
        // distance to the previous window's distribution.
        let divergence = if w == 0 {
            1.0
        } else {
            l1_divergence(&true_dist(w - 1), &p)
        };
        let grant = acct.allocate(w as u64, divergence);
        let eps = trajshare_aggregate::nano_to_eps(grant.granted_nano);
        let fresh = grant.granted_nano >= publish_floor.max(1) && eps > 0.0;
        if fresh {
            let counts = sample_counts(&p, eps, USERS, &mut rng);
            published = Some(estimate(&counts, eps));
        } else if published.is_some() {
            // Probe only: the floor grant buys change detection, the
            // release stays. (The floor is still spent — monitoring is
            // not free — which `settle` leaves recorded.)
            let _ = sample_counts(&p, eps.max(1e-6), USERS / 4, &mut rng);
        }
        let err = match &published {
            Some(est) => l1_divergence(est, &p),
            None => 1.0,
        };
        tv_sum += err;
        sliding_max = sliding_max.max(acct.sliding_spend_nano());
        rows.push(vec![
            w.to_string(),
            policy.name().to_string(),
            format!("{divergence:.2}"),
            format!("{eps:.3}"),
            if fresh { "fresh" } else { "hold" }.to_string(),
            format!("{err:.3}"),
        ]);
    }
    PolicyRun {
        rows,
        mean_tv: tv_sum / WINDOWS as f64,
        sliding_max_nano: sliding_max,
    }
}

struct ClosedLoopRun {
    rows: Vec<Vec<String>>,
    mean_tv: f64,
    sliding_max_nano: u64,
    refusals: u64,
}

/// The grant session in miniature: ε′ is announced before the window's
/// first report, the divergence signal is measured from realized
/// estimates (no oracle), the cohort follows the announced rate, and
/// settlement sees spend == grant.
fn run_closed_loop(policy: AllocationPolicy, seed: u64) -> ClosedLoopRun {
    let cfg = WindowBudgetConfig::new(trajshare_aggregate::eps_to_nano(TOTAL_EPS), HORIZON, policy);
    let mut acct = WindowBudgetAccountant::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut published: Option<Vec<f64>> = None;
    // The last two windows' realized (estimate, cohort size) — the
    // allocator's only view of the stream when it decides window w.
    let mut realized: [Option<(Vec<f64>, u64)>; 2] = [None, None];
    let mut rows = Vec::new();
    let mut tv_sum = 0.0;
    let mut sliding_max = 0u64;
    let mut refusals = 0u64;
    let publish_floor = cfg.uniform_share() / 2;
    for w in 0..WINDOWS {
        let divergence = match (&realized[0], &realized[1]) {
            (Some((a, na)), Some((b, nb))) => {
                trajshare_aggregate::significance_divergence(a, b, *na, *nb)
            }
            // Blind allocator (bootstrap, or a dark window): spend.
            _ => 1.0,
        };
        let grant = acct.allocate(w as u64, divergence);
        let eps = trajshare_aggregate::nano_to_eps(grant.granted_nano);
        let fresh = grant.granted_nano >= publish_floor.max(1);
        let cur = if eps > 0.0 {
            let users = if fresh { USERS } else { USERS / 4 };
            let counts = sample_counts(&true_dist(w), eps, users, &mut rng);
            Some((estimate(&counts, eps), users as u64))
        } else {
            None
        };
        if fresh {
            published = cur.as_ref().map(|(est, _)| est.clone());
        }
        let err = match &published {
            Some(est) => l1_divergence(est, &true_dist(w)),
            None => 1.0,
        };
        tv_sum += err;
        // Honest cohort: observed worst-case spend == the grant.
        if let Some(decision) = acct.settle(w as u64, grant.granted_nano) {
            refusals += u64::from(decision.refused);
        }
        sliding_max = sliding_max.max(acct.sliding_spend_nano());
        realized = [realized[1].take(), cur];
        rows.push(vec![
            w.to_string(),
            format!("{}-closed", policy.name()),
            format!("{divergence:.2}"),
            format!("{eps:.3}"),
            if fresh { "fresh" } else { "hold" }.to_string(),
            format!("{err:.3}"),
        ]);
    }
    ClosedLoopRun {
        rows,
        mean_tv: tv_sum / WINDOWS as f64,
        sliding_max_nano: sliding_max,
        refusals,
    }
}

fn bench_budget_allocation(c: &mut Criterion) {
    // Criterion half: ledger-operation cost (allocate + settle per
    // window) — the accountant must be negligible next to a publication
    // tick.
    let mut group = c.benchmark_group("budget_allocation");
    group.sample_size(10);
    for policy in [AllocationPolicy::Uniform, AllocationPolicy::adaptive()] {
        group.bench_function(BenchmarkId::new("ledger_ops", policy.name()), |b| {
            let cfg = WindowBudgetConfig::new(1_000_000_000, HORIZON, policy);
            b.iter(|| {
                let mut acct = WindowBudgetAccountant::new(cfg);
                for w in 0..256u64 {
                    let g = acct.allocate(w, (w % 7) as f64 / 7.0);
                    acct.settle(w, g.granted_nano / 2);
                }
                std::hint::black_box(acct.sliding_spend_nano())
            });
        });
    }
    group.finish();

    // Utility half: the acceptance criterion at equal total ε.
    let uniform = run_policy(AllocationPolicy::Uniform, 0x5EED);
    let adaptive = run_policy(AllocationPolicy::adaptive(), 0x5EED);
    let total_nano = trajshare_aggregate::eps_to_nano(TOTAL_EPS);
    assert!(
        uniform.sliding_max_nano <= total_nano && adaptive.sliding_max_nano <= total_nano,
        "both policies must honor the w-window contract"
    );
    assert!(
        adaptive.mean_tv <= uniform.mean_tv,
        "adaptive ({:.3}) must match or beat uniform ({:.3}) at equal total ε",
        adaptive.mean_tv,
        uniform.mean_tv,
    );

    // Closed-loop pass: no oracle, announced-before-data grants, honest
    // cohorts. Refusal is the exception path and must never fire.
    let closed_uniform = run_closed_loop(AllocationPolicy::Uniform, 0xC105ED);
    let closed_adaptive = run_closed_loop(AllocationPolicy::adaptive(), 0xC105ED);
    for run in [&closed_uniform, &closed_adaptive] {
        assert_eq!(
            run.refusals, 0,
            "honest grant-following cohorts are never refused"
        );
        assert!(
            run.sliding_max_nano <= total_nano,
            "the w-window contract holds in the closed loop"
        );
    }
    assert!(
        closed_adaptive.mean_tv <= closed_uniform.mean_tv,
        "the measured signal must preserve the allocation win: adaptive ({:.3}) vs uniform ({:.3})",
        closed_adaptive.mean_tv,
        closed_uniform.mean_tv,
    );

    let mut rows = uniform.rows;
    rows.extend(adaptive.rows);
    rows.extend(closed_uniform.rows.clone());
    rows.extend(closed_adaptive.rows.clone());
    rows.push(vec![
        "mean".into(),
        "uniform".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        format!("{:.3}", uniform.mean_tv),
    ]);
    rows.push(vec![
        "mean".into(),
        "adaptive".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        format!("{:.3}", adaptive.mean_tv),
    ]);
    for (name, run) in [
        ("uniform-closed", &closed_uniform),
        ("adaptive-closed", &closed_adaptive),
    ] {
        rows.push(vec![
            "mean".into(),
            name.into(),
            "measured".into(),
            "—".into(),
            format!("refusals={}", run.refusals),
            format!("{:.3}", run.mean_tv),
        ]);
    }
    let report = Reported {
        id: "bench_budget_allocation".into(),
        settings: format!(
            "|R|={REGIONS}, {WINDOWS} windows × {USERS} users, k-RR + IBU({IBU_ITERS}), \
             ε = {TOTAL_EPS} over any {HORIZON} windows, shifts at {SHIFTS:?}; \
             oracle divergence signal + closed-loop (measured-signal, \
             announced-before-data) pass"
        ),
        headers: vec![
            "window".into(),
            "policy".into(),
            "divergence".into(),
            "ε granted".into(),
            "publish".into(),
            "TV error".into(),
        ],
        rows,
    };
    let _ = write_json(&report, &trajshare_bench::report::results_dir());
}

criterion_group!(benches, bench_budget_allocation);
criterion_main!(benches);

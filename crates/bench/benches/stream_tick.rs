//! Streaming-tick latency at scale: with a sliding window holding one
//! million reports *per window*, one publication tick must cost
//! (a) one window advance — an `O(|R|²)` counter subtraction that never
//! touches the reports themselves — plus (b) a warm-started IBU model
//! estimate over the merged view. Neither may grow with how many reports
//! (or windows) were ever ingested; the bench measures both and, as a
//! control, re-measures the advance after 3× more history to show the
//! independence. Emits a JSON record (`results/bench_stream_tick.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;
use trajshare_aggregate::{Report, StreamingEstimator, WindowConfig, WindowedAggregator};
use trajshare_bench::report::{write_json, Reported};
use trajshare_core::{decompose, MechanismConfig, RegionGraph};
use trajshare_geo::{DistanceMetric, GeoPoint};
use trajshare_hierarchy::builders::campus;
use trajshare_model::{Dataset, Poi, PoiId, TimeDomain};

/// Reports per window. The QUICK_BENCH smoke keeps this too (setup is a
/// few seconds; the measured tick is what must stay small).
const REPORTS_PER_WINDOW: u64 = 1_000_000;
const WINDOW_LEN: u64 = 60;
const NUM_WINDOWS: usize = 4;

fn world() -> (Vec<u16>, RegionGraph) {
    let h = campus();
    let leaves = h.leaves();
    let origin = GeoPoint::new(40.7, -74.0);
    let pois: Vec<Poi> = (0..60)
        .map(|i| {
            Poi::new(
                PoiId(i),
                format!("p{i}"),
                origin.offset_m((i % 6) as f64 * 400.0, (i / 6) as f64 * 400.0),
                leaves[i as usize % leaves.len()],
            )
        })
        .collect();
    let ds = Dataset::new(
        pois,
        h,
        TimeDomain::new(10),
        Some(8.0),
        DistanceMetric::Haversine,
    );
    let regions = decompose(&ds, &MechanismConfig::default());
    let graph = RegionGraph::build(&ds, &regions);
    (trajshare_aggregate::region_tiles(&regions), graph)
}

/// Deterministic toy report `i` of window `w` over `nr` regions.
fn toy_report(i: u64, w: u64, nr: u32) -> Report {
    let a = ((i.wrapping_mul(0x9E37_79B9).wrapping_add(w * 31)) % nr as u64) as u32;
    let b = (a + 1) % nr;
    Report {
        t: w * WINDOW_LEN,
        eps_prime: 1.0,
        len: 2,
        unigrams: vec![(0, a), (1, b)],
        exact: vec![(0, a)],
        transitions: vec![(a, b)],
    }
}

fn fill_windows(ring: &mut WindowedAggregator, from: u64, to: u64, nr: u32) {
    for w in from..to {
        for i in 0..REPORTS_PER_WINDOW {
            ring.ingest(&toy_report(i, w, nr));
        }
    }
}

fn bench_stream_tick(c: &mut Criterion) {
    let (tiles, graph) = world();
    let nr = tiles.len() as u32;
    let config = WindowConfig {
        window_len: WINDOW_LEN,
        num_windows: NUM_WINDOWS,
    };

    // A ring whose every live window holds 1M reports.
    let mut ring = WindowedAggregator::new(tiles.clone(), config);
    fill_windows(&mut ring, 0, NUM_WINDOWS as u64, nr);
    assert_eq!(
        ring.merged().num_reports,
        REPORTS_PER_WINDOW * NUM_WINDOWS as u64
    );

    // A second ring with 3× the ingestion history (8 more windows have
    // already slid through): the control for "tick cost is independent
    // of how much was ever ingested".
    let mut ring_deep = WindowedAggregator::new(tiles.clone(), config);
    fill_windows(&mut ring_deep, 0, 3 * NUM_WINDOWS as u64, nr);

    // Warm the estimator once (cold solve) outside the measured tick.
    let mut estimator = StreamingEstimator::with_iters(300, 8);
    let _ = estimator.tick(ring.merged(), &graph);

    let mut group = c.benchmark_group("stream_tick");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REPORTS_PER_WINDOW));
    // (a) The advance alone: evict the oldest 1M-report window by
    // subtraction. Cloning the ring (plain counter copies) is part of
    // the iteration but orders of magnitude below re-ingestion.
    group.bench_with_input(BenchmarkId::new("advance", "4w"), &ring, |b, ring| {
        b.iter(|| {
            let mut r = ring.clone();
            r.advance_to(r.newest_window() + 1);
            std::hint::black_box(r.merged().num_reports)
        });
    });
    group.bench_with_input(
        BenchmarkId::new("advance", "12w-history"),
        &ring_deep,
        |b, ring| {
            b.iter(|| {
                let mut r = ring.clone();
                r.advance_to(r.newest_window() + 1);
                std::hint::black_box(r.merged().num_reports)
            });
        },
    );
    // (b) The warm model estimate over the merged 4M-report view.
    group.bench_function("estimate_warm", |b| {
        b.iter(|| {
            let mut est = estimator.clone();
            std::hint::black_box(est.tick(ring.merged(), &graph).debiased)
        });
    });
    group.finish();

    // JSON record: one timed full tick (advance + warm estimate), plus
    // the deep-history control.
    let timed = |ring: &WindowedAggregator| -> f64 {
        let mut r = ring.clone();
        let mut est = estimator.clone();
        let t0 = Instant::now();
        r.advance_to(r.newest_window() + 1);
        let model = est.tick(r.merged(), &graph);
        let secs = t0.elapsed().as_secs_f64();
        assert!(model.num_regions == tiles.len());
        secs
    };
    let tick_4w = timed(&ring);
    let tick_deep = timed(&ring_deep);
    let report = Reported {
        id: "bench_stream_tick".into(),
        settings: format!(
            "|R|={}, {} windows x {}M reports, warm IBU 8 iters",
            tiles.len(),
            NUM_WINDOWS,
            REPORTS_PER_WINDOW / 1_000_000
        ),
        headers: vec![
            "history_windows".into(),
            "reports_per_window".into(),
            "tick_ms".into(),
        ],
        rows: vec![
            vec![
                NUM_WINDOWS.to_string(),
                REPORTS_PER_WINDOW.to_string(),
                format!("{:.2}", tick_4w * 1e3),
            ],
            vec![
                (3 * NUM_WINDOWS).to_string(),
                REPORTS_PER_WINDOW.to_string(),
                format!("{:.2}", tick_deep * 1e3),
            ],
        ],
    };
    let _ = write_json(&report, &trajshare_bench::report::results_dir());
}

criterion_group!(benches, bench_stream_tick);
criterion_main!(benches);

//! Figure 7 in micro form: hierarchical decomposition + W₂ formation cost
//! as |P| grows, and the effect of the travel-speed knob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::{MechanismConfig, NGramMechanism};

fn bench_by_pois(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_by_pois");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let cfg = ScenarioConfig {
            num_pois: n,
            num_trajectories: 1,
            speed_kmh: None,
            traj_len: None,
            seed: 7,
        };
        let (dataset, _) = build_scenario(Scenario::TaxiFoursquare, &cfg);
        let mc = MechanismConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, ds| {
            b.iter(|| std::hint::black_box(NGramMechanism::build(ds, &mc)))
        });
    }
    group.finish();
}

fn bench_by_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_by_speed");
    group.sample_size(10);
    for &s in &[4.0f64, 16.0, f64::INFINITY] {
        let cfg = ScenarioConfig {
            num_pois: 200,
            num_trajectories: 1,
            speed_kmh: Some(s),
            traj_len: None,
            seed: 7,
        };
        let (dataset, _) = build_scenario(Scenario::Safegraph, &cfg);
        let mc = MechanismConfig::default();
        let label = if s.is_infinite() {
            "Inf".to_string()
        } else {
            format!("{s}")
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &dataset, |b, ds| {
            b.iter(|| std::hint::black_box(NGramMechanism::build(ds, &mc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_pois, bench_by_speed);
criterion_main!(benches);

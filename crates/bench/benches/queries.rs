//! Utility-measure costs: NE, PRQ and hotspot extraction over a trajectory
//! set (the analytics side of §6.3 — cheap compared to perturbation, which
//! this bench verifies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_query::{
    extract_hotspots, normalized_error, preservation_range, HotspotScope, PrqDimension,
};

fn setup() -> (trajshare_model::Dataset, trajshare_model::TrajectorySet) {
    let cfg = ScenarioConfig {
        num_pois: 300,
        num_trajectories: 150,
        speed_kmh: None,
        traj_len: None,
        seed: 7,
    };
    build_scenario(Scenario::TaxiFoursquare, &cfg)
}

fn bench_ne_and_prq(c: &mut Criterion) {
    let (ds, set) = setup();
    let real = set.all();
    c.bench_function("normalized_error", |b| {
        b.iter(|| std::hint::black_box(normalized_error(&ds, real, real)))
    });
    c.bench_function("prq_space_500m", |b| {
        b.iter(|| {
            std::hint::black_box(preservation_range(
                &ds,
                real,
                real,
                PrqDimension::Space(500.0),
            ))
        })
    });
}

fn bench_hotspots(c: &mut Criterion) {
    let (ds, set) = setup();
    let mut group = c.benchmark_group("hotspot_extraction");
    for (label, scope) in [
        ("poi", HotspotScope::Poi),
        ("grid4", HotspotScope::Grid(4)),
        ("category1", HotspotScope::Category(1)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &scope, |b, &scope| {
            b.iter(|| std::hint::black_box(extract_hotspots(&ds, &set, scope, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ne_and_prq, bench_hotspots);
criterion_main!(benches);

//! Criterion micro-benchmarks: per-trajectory perturbation cost of every
//! method (the Table 3 / Figure 9 microscopic view).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajshare_bench::runner::build_methods;
use trajshare_bench::scenario::{build_scenario, Scenario, ScenarioConfig};
use trajshare_core::MechanismConfig;

fn bench_methods(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        num_pois: 200,
        num_trajectories: 10,
        speed_kmh: None,
        traj_len: Some(5),
        seed: 7,
    };
    let (dataset, set) = build_scenario(Scenario::TaxiFoursquare, &cfg);
    assert!(!set.is_empty());
    let traj = set.all()[0].clone();
    let methods = build_methods(&dataset, &MechanismConfig::default());

    let mut group = c.benchmark_group("perturb_one_trajectory");
    group.sample_size(10);
    for mech in &methods {
        group.bench_with_input(
            BenchmarkId::from_parameter(mech.name()),
            &traj,
            |b, traj| {
                let mut rng = StdRng::seed_from_u64(42);
                b.iter(|| std::hint::black_box(mech.perturb(traj, &mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_trajectory_length(c: &mut Criterion) {
    // Figure 9a in micro form: NGram perturbation cost vs |τ|.
    let mut group = c.benchmark_group("ngram_by_traj_len");
    group.sample_size(10);
    for len in [4u32, 6, 8] {
        let cfg = ScenarioConfig {
            num_pois: 200,
            num_trajectories: 30,
            speed_kmh: None,
            traj_len: Some(len),
            seed: 7,
        };
        let (dataset, set) = build_scenario(Scenario::TaxiFoursquare, &cfg);
        if set.is_empty() {
            continue;
        }
        let mech = trajshare_core::NGramMechanism::build(&dataset, &MechanismConfig::default());
        let traj = set.all()[0].clone();
        group.bench_with_input(BenchmarkId::from_parameter(len), &traj, |b, traj| {
            let mut rng = StdRng::seed_from_u64(42);
            b.iter(|| {
                std::hint::black_box(trajshare_core::Mechanism::perturb(&mech, traj, &mut rng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_trajectory_length);
criterion_main!(benches);
